#include "cachert/cache_runtime.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <mutex>
#include <utility>

#include "util/assert.h"
#include "util/logging.h"

namespace dnscup::cachert {

namespace {

/// One-shot survivor snapshot for the re-adoption handshake.  Computed on
/// the start() thread (before any worker thread exists), then *moved out*
/// by the first SurvivorsFn call on the push I/O thread — later reconnects
/// see an empty vector and fall back to the plain v1 handshake, so the
/// I/O thread never reads live cache state.
struct SurvivorBox {
  std::mutex mu;
  std::vector<push::LeaseSurvivor> survivors;
};

}  // namespace

CacheRuntime::Worker::Worker(const Config& config)
    : client_pool(config.inbox_capacity),
      upstream_pool(config.inbox_capacity),
      commands(config.command_capacity, &wake) {}

CacheRuntime::CacheRuntime(Config config) : config_(std::move(config)) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.batch_size < 1) config_.batch_size = 1;
  epoch_ = std::chrono::steady_clock::now();
}

CacheRuntime::~CacheRuntime() { stop(); }

net::SimTime CacheRuntime::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int CacheRuntime::pin_cpu_for(int index) const {
  if (config_.pin_cpus.empty()) return -1;
  return config_.pin_cpus[static_cast<std::size_t>(index) %
                          config_.pin_cpus.size()];
}

util::Status CacheRuntime::bind_sockets() {
  const int n = config_.workers;
  // Resolve once (kDefault consults DNSCUP_IO_BACKEND) so both socket
  // sides of every worker bind the same backend.
  const net::IoBackendKind kind =
      net::resolve_io_backend_kind(config_.io_backend);
  auto options_for = [this](Worker& worker, uint16_t port, bool reuseport) {
    net::IoBackend::Options options;
    options.port = port;
    options.reuseport = reuseport;
    options.rcvbuf_bytes = config_.rcvbuf_bytes;
    options.sndbuf_bytes = config_.sndbuf_bytes;
    options.metrics = &worker.registry;
    options.pin_cpu = pin_cpu_for(worker.index);
    return options;
  };

  // Client-facing side: one REUSEPORT group, or per-worker ports.
  if (config_.reuseport) {
    bool unsupported = false;
    uint16_t group_port = config_.port;
    for (int i = 0; i < n; ++i) {
      auto bound = net::bind_io_backend(
          kind, options_for(*workers_[i], group_port, true));
      if (!bound.ok()) {
        if (bound.error().code == util::ErrorCode::kUnsupported) {
          unsupported = true;
          for (int j = 0; j < i; ++j) workers_[j]->client_io.reset();
          break;
        }
        return bound.error();
      }
      workers_[i]->client_io = std::move(bound).value();
      group_port = workers_[i]->client_io->local_endpoint().port;
    }
    if (!unsupported) {
      reuseport_active_ = true;
      endpoints_ = {workers_[0]->client_io->local_endpoint()};
    }
  }
  if (!reuseport_active_) {
    endpoints_.clear();
    for (int i = 0; i < n; ++i) {
      const uint16_t port =
          config_.port == 0 ? 0 : static_cast<uint16_t>(config_.port + i);
      auto bound =
          net::bind_io_backend(kind, options_for(*workers_[i], port, false));
      if (!bound.ok()) return bound.error();
      workers_[i]->client_io = std::move(bound).value();
      endpoints_.push_back(workers_[i]->client_io->local_endpoint());
    }
  }

  // Upstream side: always one private ephemeral port per worker, so the
  // authority's responses and pushes come back to the owning worker.
  upstream_endpoints_.clear();
  for (int i = 0; i < n; ++i) {
    auto bound =
        net::bind_io_backend(kind, options_for(*workers_[i], 0, false));
    if (!bound.ok()) return bound.error();
    workers_[i]->upstream_io = std::move(bound).value();
    upstream_endpoints_.push_back(workers_[i]->upstream_io->local_endpoint());
  }
  return util::Status::ok_status();
}

util::Result<std::unique_ptr<CacheRuntime>> CacheRuntime::start(
    Config config) {
  if (config.upstreams.empty()) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "cache runtime needs at least one upstream"};
  }
  auto runtime =
      std::unique_ptr<CacheRuntime>(new CacheRuntime(std::move(config)));
  const Config& cfg = runtime->config_;
  const int n = cfg.workers;

  // Create the cache directory (one level) so a fresh --cache-dir just
  // works; shard files themselves are O_CREAT'ed by the store.
  if (!cfg.cache_dir.empty()) {
    if (::mkdir(cfg.cache_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return util::Error{util::ErrorCode::kIo,
                         "cannot create cache dir " + cfg.cache_dir};
    }
  }

  runtime->workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    runtime->workers_.push_back(std::make_unique<Worker>(cfg));
    runtime->workers_.back()->index = i;
  }
  if (auto status = runtime->bind_sockets(); !status.ok()) {
    return status.error();
  }

  // Per-worker protocol stacks (built on this thread, before any worker
  // thread exists — no locking needed).
  for (int i = 0; i < n; ++i) {
    Worker& worker = *runtime->workers_[i];
    worker.router.client.io = worker.client_io.get();
    worker.router.upstream.io = worker.upstream_io.get();
    worker.router.upstreams = &cfg.upstreams;
    worker.inbox_dropped = worker.registry.counter(
        "cachert_inbox_dropped", {{"worker", std::to_string(i)}});
    worker.oversize_dropped = worker.registry.counter(
        "cachert_oversize_dropped", {{"worker", std::to_string(i)}});

    server::CachingResolver::Config rc;
    rc.max_retries = cfg.max_retries;
    rc.query_timeout = cfg.query_timeout;
    rc.cache_capacity = cfg.cache_capacity;
    rc.default_negative_ttl = cfg.default_negative_ttl;
    rc.metrics = &worker.registry;
    if (!cfg.cache_dir.empty()) {
      cachestore::MmapCacheStore::Options so;
      so.path = cfg.cache_dir + "/cache-shard-" + std::to_string(i);
      so.file_bytes = cfg.cache_file_bytes;
      so.now = 0;  // worker SimTime starts at 0; downtime decay is baked in
      // Leases are only worth keeping when a push channel will announce
      // them for re-adoption; otherwise honoring them risks stale serves.
      so.keep_leases =
          cfg.dnscup && cfg.push_plane && cfg.push_authority.port != 0;
      so.metrics = &worker.registry;
      auto opened = cachestore::MmapCacheStore::open(std::move(so));
      if (!opened.ok()) return opened.error();
      worker.cache_store = opened.value().get();
      // The factory is a copyable std::function; route the unique_ptr
      // through a shared holder it can move out of exactly once.
      auto holder =
          std::make_shared<std::unique_ptr<server::CacheStoreBackend>>(
              std::move(opened).value());
      rc.cache_store = [holder] { return std::move(*holder); };
    }
    worker.resolver = std::make_unique<server::CachingResolver>(
        worker.router, worker.loop, cfg.upstreams, rc);
    if (cfg.dnscup) {
      core::LeaseClient::Config lc;
      lc.renegotiate_rate_factor = cfg.renegotiate_rate_factor;
      lc.trusted_authorities = cfg.upstreams;
      lc.metrics = &worker.registry;
      worker.lease_client =
          std::make_unique<core::LeaseClient>(*worker.resolver, lc);
    }
    if (cfg.dnscup && cfg.push_plane && cfg.push_authority.port != 0) {
      // One subscription channel per worker, announcing the worker's
      // upstream socket (its lease identity at the authority).  The
      // client's handlers run on its own I/O thread; the payload hops to
      // the worker over the command queue.  try_push keeps the plane's
      // thread from ever blocking on a busy worker — a dropped push is
      // simply never acked and the authority falls back to UDP.
      push::PushClient::Config pc = cfg.push;
      pc.authority = cfg.push_authority;
      pc.identity = runtime->upstream_endpoints_[static_cast<std::size_t>(i)];
      pc.metrics = &worker.registry;
      const net::Endpoint grantor = cfg.upstreams.front();
      if (worker.cache_store != nullptr &&
          worker.cache_store->load_report().warm_entries > 0) {
        // Announce warm-reloaded leases (granted by a configured upstream
        // and still in term) for re-adoption on the first connect.
        auto box = std::make_shared<SurvivorBox>();
        worker.resolver->cache().for_each(
            [&box, &worker](const server::CacheKey& key,
                            const server::CacheEntry& entry) {
              if (!entry.lease.has_value() || entry.lease->expiry <= 0) return;
              if (!worker.router.is_upstream(entry.lease->authority)) return;
              box->survivors.push_back(push::LeaseSurvivor{
                  key.name, key.type,
                  static_cast<uint64_t>(entry.lease->expiry)});
            });
        if (!box->survivors.empty()) {
          pc.survivors = [box] {
            std::lock_guard<std::mutex> lock(box->mu);
            return std::move(box->survivors);
          };
        }
      }
      worker.push_client = push::PushClient::start(
          pc,
          [&worker, grantor](std::vector<uint8_t> bytes) {
            worker.commands.try_push(
                [&worker, grantor, bytes = std::move(bytes)] {
                  auto decoded = dns::Message::decode(bytes);
                  if (!decoded.ok() || worker.lease_client == nullptr) return;
                  worker.lease_client->on_channel_update(
                      grantor, decoded.value(),
                      [&worker](std::vector<uint8_t> ack) {
                        worker.push_client->send_ack(std::move(ack));
                      });
                });
            worker.wake.wake();
          },
          [&worker](push::SubscribeAck ack,
                    std::vector<push::LeaseSurvivor> announced) {
            worker.commands.try_push([&worker, ack = std::move(ack),
                                      announced = std::move(announced)] {
              if (worker.lease_client == nullptr) return;
              std::vector<std::pair<dns::Name, uint32_t>> inventory;
              inventory.reserve(ack.zones.size());
              for (const auto& z : ack.zones) {
                inventory.emplace_back(z.zone, z.serial);
              }
              if (ack.has_readoption && !announced.empty()) {
                std::vector<std::pair<dns::Name, dns::RRType>> pairs;
                pairs.reserve(announced.size());
                for (const auto& s : announced) {
                  pairs.emplace_back(s.name, s.type);
                }
                worker.lease_client->on_readoption(pairs, ack.resumed_bits,
                                                   inventory);
              } else {
                worker.lease_client->on_channel_resync(inventory);
              }
            });
            worker.wake.wake();
          });
    }
  }

  // Go live: worker threads first, then socket intake on both sides.
  runtime->running_.store(true);
  for (int i = 0; i < n; ++i) {
    Worker& worker = *runtime->workers_[i];
    worker.thread =
        std::thread([rt = runtime.get(), &worker] { rt->worker_loop(worker); });
    auto intake = [&worker](runtime::BufferPool& pool) {
      return [&worker, &pool](std::span<const net::RxPacket> batch) {
        for (const auto& packet : batch) {
          if (packet.data.size() > runtime::BufferPool::kSlotBytes) {
            worker.oversize_dropped.inc();
            continue;
          }
          runtime::BufferPool::Slot* slot = pool.acquire();
          if (slot == nullptr) {
            worker.inbox_dropped.inc();  // worker behind; shed load
            continue;
          }
          slot->from = packet.from;
          slot->len = static_cast<uint32_t>(packet.data.size());
          std::memcpy(slot->bytes.data(), packet.data.data(),
                      packet.data.size());
          pool.commit(slot);
        }
        worker.wake.wake();
      };
    };
    worker.client_io->set_batch_receive_handler(intake(worker.client_pool));
    worker.upstream_io->set_batch_receive_handler(
        intake(worker.upstream_pool));
  }
  return runtime;
}

void CacheRuntime::pump_pool(Worker& worker, runtime::BufferPool& pool) {
  runtime::BufferPool::Slot* slot = nullptr;
  while ((slot = pool.take_filled()) != nullptr) {
    if (worker.router.handler) {
      worker.router.handler(
          slot->from, std::span<const uint8_t>(slot->bytes.data(), slot->len));
    }
    pool.release(slot);
  }
}

void CacheRuntime::worker_loop(Worker& worker) {
  // Same CPU as both receiver threads when pinning is configured.
  net::pin_current_thread_to_cpu(pin_cpu_for(worker.index));
  const std::size_t batch_size = config_.batch_size;
  std::deque<std::function<void()>> commands;
  worker.router.client.batching = true;
  worker.router.upstream.batching = true;
  for (;;) {
    // Upstream datagrams first: a response or CACHE-UPDATE that just
    // arrived can turn pending client queries into cache hits within the
    // same iteration.  Upstream bursts are small (one per in-flight task
    // or push), so they are drained fully; client intake is bounded by
    // the batch size like the authority runtime.
    pump_pool(worker, worker.upstream_pool);
    std::size_t served = 0;
    runtime::BufferPool::Slot* slot = nullptr;
    while (served < batch_size &&
           (slot = worker.client_pool.take_filled()) != nullptr) {
      if (worker.router.handler) {
        worker.router.handler(
            slot->from,
            std::span<const uint8_t>(slot->bytes.data(), slot->len));
      }
      worker.client_pool.release(slot);
      ++served;
    }
    worker.router.flush();
    worker.commands.drain(commands);
    for (auto& command : commands) command();
    // Resolver timers: upstream retransmissions, query timeouts,
    // renegotiation refreshes — all on the owning thread.
    worker.loop.run_until(now_us());
    worker.router.flush();
    if (worker.stop.load(std::memory_order_acquire)) {
      if (!worker.client_pool.has_filled() &&
          !worker.upstream_pool.has_filled() && worker.commands.empty()) {
        break;
      }
      continue;  // drain what arrived before intake stopped
    }
    if (!worker.client_pool.has_filled() &&
        !worker.upstream_pool.has_filled() && worker.commands.empty()) {
      worker.wake.wait_for(std::chrono::milliseconds(2));
    }
  }
  worker.router.client.batching = false;
  worker.router.upstream.batching = false;
}

void CacheRuntime::stop() {
  if (!running_.exchange(false)) return;
  // Push channels first: their I/O threads post into worker command
  // queues, so they must be quiet before the workers drain and exit.
  for (auto& worker : workers_) {
    if (worker->push_client != nullptr) worker->push_client->stop();
  }
  for (auto& worker : workers_) {
    worker->client_io->stop_receiving();
    worker->upstream_io->stop_receiving();
  }
  for (auto& worker : workers_) {
    worker->stop.store(true, std::memory_order_release);
    worker->wake.wake();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void CacheRuntime::run_on_worker(Worker& worker, std::function<void()> fn) {
  if (!running_.load()) {
    fn();  // post-stop inspection: workers are quiescent
    return;
  }
  std::promise<void> done;
  auto finished = done.get_future();
  worker.commands.push([&fn, &done] {
    fn();
    done.set_value();
  });
  finished.wait();
}

metrics::Snapshot CacheRuntime::metrics() {
  metrics::Snapshot merged;
  merged.timestamp_us = now_us();
  bool first = true;
  for (auto& worker : workers_) {
    metrics::Snapshot shard;
    run_on_worker(*worker, [this, &worker, &shard] {
      shard = worker->registry.snapshot(now_us());
    });
    if (first) {
      shard.timestamp_us = merged.timestamp_us;
      merged = std::move(shard);
      first = false;
    } else {
      merged.merge(shard);
    }
  }
  return merged;
}

std::size_t CacheRuntime::live_leases() {
  std::size_t live = 0;
  for (auto& worker : workers_) {
    if (worker->lease_client == nullptr) continue;
    run_on_worker(*worker, [this, &worker, &live] {
      live += worker->lease_client->live_leases(now_us());
    });
  }
  return live;
}

std::vector<cachestore::MmapCacheStore::LoadReport>
CacheRuntime::cache_load_reports() const {
  std::vector<cachestore::MmapCacheStore::LoadReport> reports;
  for (const auto& worker : workers_) {
    if (worker->cache_store != nullptr) {
      reports.push_back(worker->cache_store->load_report());
    }
  }
  return reports;
}

uint64_t CacheRuntime::warm_entries() const {
  uint64_t total = 0;
  for (const auto& worker : workers_) {
    if (worker->cache_store != nullptr) {
      total += worker->cache_store->load_report().warm_entries;
    }
  }
  return total;
}

std::size_t CacheRuntime::push_connected() const {
  std::size_t connected = 0;
  for (const auto& worker : workers_) {
    if (worker->push_client != nullptr && worker->push_client->connected()) {
      ++connected;
    }
  }
  return connected;
}

uint64_t CacheRuntime::push_connects() const {
  uint64_t total = 0;
  for (const auto& worker : workers_) {
    if (worker->push_client != nullptr) {
      total += worker->push_client->connect_count();
    }
  }
  return total;
}

void CacheRuntime::set_push_paused(bool paused) {
  for (auto& worker : workers_) {
    if (worker->push_client != nullptr) {
      worker->push_client->set_paused(paused);
    }
  }
}

std::size_t CacheRuntime::cache_entries() {
  std::size_t total = 0;
  for (auto& worker : workers_) {
    run_on_worker(*worker, [&worker, &total] {
      total += worker->resolver->cache().size();
    });
  }
  return total;
}

}  // namespace dnscup::cachert

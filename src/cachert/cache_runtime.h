// Cache-side serving runtime: the paper's "local DNS nameserver" as a
// multi-worker daemon over real sockets.
//
// CacheRuntime runs N workers.  Each worker owns, privately and
// exclusively on its own thread:
//
//   * an EventLoop (upstream retransmission timers, renegotiation),
//   * a *client-facing* UDP socket — all workers in one SO_REUSEPORT
//     group on the configured port so the kernel spreads client query
//     streams across workers (per-worker ports when REUSEPORT is
//     unavailable),
//   * an *upstream* UDP socket on an ephemeral port.  This one is per
//     worker by construction: the authority's responses — and its
//     unsolicited CACHE-UPDATE pushes, which go to the endpoint that sent
//     the EXT query and registered the lease — must come back to the
//     worker whose resolver state they belong to.  A shared REUSEPORT
//     port cannot guarantee that (the kernel hashes the *flow*, not the
//     sending socket), a private port trivially does,
//   * a CachingResolver with its own TTL cache slice, and
//   * (leases enabled) a LeaseClient: RRC reporting on EXT queries, LLT
//     lease registration, CACHE-UPDATE consumption + ACK, renegotiation.
//
// The query hot path — client query in, cache hit, answer out — takes
// zero locks; cross-thread work flows over the same bounded MPSC queues
// and buffer pools as the authority runtime (src/runtime), and responses
// batch through ShimTransport into one sendmmsg per loop iteration.
//
// When the authority goes silent the worker degrades exactly as the
// paper prescribes: leases run out, entries fall back to TTL freshness,
// and expired entries re-resolve (with retries/timeouts) like a classic
// cache — strong consistency is an overlay, never a liveness dependency.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cachestore/mmap_store.h"
#include "core/lease_client.h"
#include "net/event_loop.h"
#include "net/io_backend.h"
#include "push/push_client.h"
#include "runtime/buffer_pool.h"
#include "runtime/mpsc_queue.h"
#include "runtime/shim_transport.h"
#include "server/resolver.h"
#include "util/metrics.h"
#include "util/result.h"

namespace dnscup::cachert {

struct Config {
  /// Client-facing port; 0 picks an ephemeral port (see endpoints()).
  uint16_t port = 5301;
  int workers = 1;
  /// Try one SO_REUSEPORT group on `port`; per-worker ports (port + i)
  /// when the kernel lacks it.
  bool reuseport = true;
  int rcvbuf_bytes = 1 << 20;
  int sndbuf_bytes = 1 << 20;

  /// Datagram I/O backend for both socket sides of every worker.
  /// kDefault consults DNSCUP_IO_BACKEND; an explicit kUring degrades to
  /// portable (with a warning) when the kernel lacks support.
  net::IoBackendKind io_backend = net::IoBackendKind::kDefault;

  /// Worker CPU affinity: worker i (loop thread + both receiver
  /// threads) is pinned to pin_cpus[i % size].  Empty = no pinning.
  std::vector<int> pin_cpus;

  /// Upstream authorities, tried in order with retries/failover.  These
  /// double as the resolver's root set and as the LeaseClient's trusted
  /// push sources.
  std::vector<net::Endpoint> upstreams;

  /// DNScup cache-side module on/off — off is the plain-TTL baseline for
  /// A/B stale-window runs.
  bool dnscup = true;
  /// Cache entry bound per worker (LRU); 0 = unbounded.
  std::size_t cache_capacity = 0;
  /// Persistent cache store directory: each worker keeps its cache slice
  /// in an mmap-backed file `<cache_dir>/cache-shard-<i>` and restarts
  /// warm from it (cachestore::MmapCacheStore).  Warm-loaded lease state
  /// is kept only when the push plane can re-adopt it (dnscup +
  /// push_plane on); otherwise leases demote to plain TTL entries at
  /// load.  Empty = heap-only cache, cold every start.
  std::string cache_dir;
  /// Per-worker cache file size; slot/slab geometry derives from it.
  std::size_t cache_file_bytes = 64ull << 20;
  net::Duration query_timeout = net::seconds(2);
  int max_retries = 2;
  uint32_t default_negative_ttl = 60;
  /// LeaseClient renegotiation knobs (see core::LeaseClient::Config).
  double renegotiate_rate_factor = 4.0;

  /// Connection-oriented push plane (src/push): when enabled every
  /// worker keeps one TCP subscription channel to `push_authority` (the
  /// authority's --push-listen address), announcing its upstream socket
  /// as lease identity.  CACHE-UPDATEs then arrive and ack over the
  /// channel; UDP remains the fallback whenever the channel is down.
  /// The channel binds to the *first* configured upstream's lease set.
  bool push_plane = false;
  net::Endpoint push_authority{};
  push::PushClient::Config push;  ///< reconnect/keepalive knobs

  /// Datagram slots per worker per socket side, shared with the socket's
  /// receiver thread; overflow drops (counted cachert_inbox_dropped).
  std::size_t inbox_capacity = 4096;
  std::size_t command_capacity = 256;
  /// Datagrams served per loop iteration before one sendmmsg flush.
  std::size_t batch_size = 32;
};

class CacheRuntime {
 public:
  /// Binds both socket sides for every worker and starts the worker
  /// threads.  Fails when `config.upstreams` is empty or a bind fails.
  static util::Result<std::unique_ptr<CacheRuntime>> start(Config config);

  ~CacheRuntime();

  CacheRuntime(const CacheRuntime&) = delete;
  CacheRuntime& operator=(const CacheRuntime&) = delete;

  /// Graceful drain: stops socket intake, answers what is queued (cache
  /// hits only — in-flight upstream tasks are abandoned), joins workers.
  /// Idempotent.
  void stop();

  /// Client-facing endpoints: one entry in REUSEPORT mode, one per
  /// worker in fallback mode.
  const std::vector<net::Endpoint>& endpoints() const { return endpoints_; }
  /// Per-worker upstream-side endpoints (lease identities at the
  /// authority; tests assert CACHE-UPDATE pushes land here).
  const std::vector<net::Endpoint>& upstream_endpoints() const {
    return upstream_endpoints_;
  }
  bool reuseport_active() const { return reuseport_active_; }
  int workers() const { return static_cast<int>(workers_.size()); }
  bool dnscup_enabled() const { return config_.dnscup; }
  /// Name of the I/O backend actually serving ("portable" or "uring" —
  /// after any fallback).
  std::string_view io_backend_name() const {
    return workers_.empty() ? std::string_view{}
                            : workers_.front()->client_io->backend_name();
  }

  /// Microseconds since start() — the wall clock every worker's
  /// EventLoop advances to.
  net::SimTime now_us() const;

  // Cross-worker control plane (each call fans a command to every worker
  // and blocks; callable from any non-worker thread).

  /// Merged snapshot of every worker registry.
  metrics::Snapshot metrics();

  /// Valid leases across all workers at now_us(); 0 with dnscup off.
  std::size_t live_leases();

  /// Total cached entries across all workers.
  std::size_t cache_entries();

  /// True when the cache is backed by persistent per-worker store files.
  bool persistent_cache() const { return !config_.cache_dir.empty(); }
  /// Per-worker persistent-store load reports, in worker order (empty
  /// without cache_dir).  Load reports are write-once at open, so this is
  /// safe from any thread.
  std::vector<cachestore::MmapCacheStore::LoadReport> cache_load_reports()
      const;
  /// Entries adopted warm from the persistent store, across all workers.
  uint64_t warm_entries() const;

  /// Workers whose push channel is currently connected (0 when the push
  /// plane is off).
  std::size_t push_connected() const;
  /// Sum of successful channel (re)connects across workers.
  uint64_t push_connects() const;
  /// Test/ops hook: drops every worker's push channel and holds it down
  /// (true) or lets the clients reconnect (false).
  void set_push_paused(bool paused);

 private:
  struct Worker {
    explicit Worker(const Config& config);

    int index = 0;
    metrics::MetricsRegistry registry;
    net::EventLoop loop{&registry};
    runtime::WakeSignal wake;
    runtime::BufferPool client_pool;
    runtime::BufferPool upstream_pool;
    runtime::BoundedMpscQueue<std::function<void()>> commands;

    /// Routes resolver sends: destinations in the upstream set leave via
    /// the upstream socket (so lease identity == upstream source port),
    /// everything else answers clients via the listening socket.  Both
    /// sides batch independently.
    class RouterTransport final : public net::Transport {
     public:
      const net::Endpoint& local_endpoint() const override {
        return client.local_endpoint();
      }
      void send(const net::Endpoint& to,
                std::span<const uint8_t> data) override {
        (is_upstream(to) ? static_cast<net::Transport&>(upstream)
                         : static_cast<net::Transport&>(client))
            .send(to, data);
      }
      void set_receive_handler(ReceiveHandler h) override {
        handler = std::move(h);
      }
      bool is_upstream(const net::Endpoint& to) const {
        for (const net::Endpoint& up : *upstreams) {
          if (up == to) return true;
        }
        return false;
      }
      void flush() {
        client.flush();
        upstream.flush();
      }

      runtime::ShimTransport client;
      runtime::ShimTransport upstream;
      const std::vector<net::Endpoint>* upstreams = nullptr;
      ReceiveHandler handler;
    };

    RouterTransport router;
    std::unique_ptr<net::IoBackend> client_io;
    std::unique_ptr<net::IoBackend> upstream_io;
    /// Persistent store behind the resolver's cache (owned by the cache
    /// via the storage seam; null without Config::cache_dir).
    cachestore::MmapCacheStore* cache_store = nullptr;
    std::unique_ptr<server::CachingResolver> resolver;
    std::unique_ptr<core::LeaseClient> lease_client;
    std::unique_ptr<push::PushClient> push_client;
    metrics::Counter inbox_dropped;
    metrics::Counter oversize_dropped;
    std::atomic<bool> stop{false};
    std::thread thread;
  };

  explicit CacheRuntime(Config config);

  util::Status bind_sockets();
  /// CPU for worker `index` per Config::pin_cpus (-1 = unpinned).
  int pin_cpu_for(int index) const;
  void worker_loop(Worker& worker);
  void run_on_worker(Worker& worker, std::function<void()> fn);
  static void pump_pool(Worker& worker, runtime::BufferPool& pool);

  Config config_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<net::Endpoint> endpoints_;
  std::vector<net::Endpoint> upstream_endpoints_;
  bool reuseport_active_ = false;
  std::atomic<bool> running_{false};
};

}  // namespace dnscup::cachert

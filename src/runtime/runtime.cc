#include "runtime/runtime.h"

#include <algorithm>
#include <cstring>
#include <future>
#include <utility>

#include "util/assert.h"
#include "util/logging.h"

namespace dnscup::runtime {

ServingRuntime::Worker::Worker(const Config& config)
    : pool(config.inbox_capacity),
      commands(config.command_capacity, &wake) {}

ServingRuntime::ServingRuntime(Config config) : config_(std::move(config)) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.batch_size < 1) config_.batch_size = 1;
  epoch_ = std::chrono::steady_clock::now();
}

ServingRuntime::~ServingRuntime() { stop(); }

net::SimTime ServingRuntime::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int ServingRuntime::pin_cpu_for(int index) const {
  if (config_.pin_cpus.empty()) return -1;
  return config_.pin_cpus[static_cast<std::size_t>(index) %
                          config_.pin_cpus.size()];
}

util::Status ServingRuntime::bind_sockets() {
  const int n = config_.workers;
  // Resolve once (kDefault consults DNSCUP_IO_BACKEND) so every worker
  // binds the same backend and any env warning prints once.
  const net::IoBackendKind kind =
      net::resolve_io_backend_kind(config_.io_backend);
  auto options_for = [this](Worker& worker, uint16_t port, bool reuseport) {
    net::IoBackend::Options options;
    options.port = port;
    options.reuseport = reuseport;
    options.rcvbuf_bytes = config_.rcvbuf_bytes;
    options.sndbuf_bytes = config_.sndbuf_bytes;
    options.metrics = &worker.registry;
    options.pin_cpu = pin_cpu_for(worker.index);
    return options;
  };

  if (config_.reuseport) {
    bool unsupported = false;
    uint16_t group_port = config_.port;
    for (int i = 0; i < n; ++i) {
      auto bound = net::bind_io_backend(
          kind, options_for(*workers_[i], group_port, true));
      if (!bound.ok()) {
        if (bound.error().code == util::ErrorCode::kUnsupported) {
          // Kernel without SO_REUSEPORT: release what we bound and fall
          // back to one port per worker below.
          unsupported = true;
          for (int j = 0; j < i; ++j) workers_[j]->io.reset();
          break;
        }
        return bound.error();
      }
      workers_[i]->io = std::move(bound).value();
      // Port 0 resolves on the first bind; the rest join that group.
      group_port = workers_[i]->io->local_endpoint().port;
    }
    if (!unsupported) {
      reuseport_active_ = true;
      endpoints_ = {workers_[0]->io->local_endpoint()};
      return util::Status::ok_status();
    }
  }

  // Per-worker ports: worker i serves port + i (all ephemeral when the
  // configured port is 0).  shard.h's shard_of() tells clients with a
  // recovered lease which port their tuple lives behind.
  reuseport_active_ = false;
  endpoints_.clear();
  for (int i = 0; i < n; ++i) {
    const uint16_t port =
        config_.port == 0 ? 0 : static_cast<uint16_t>(config_.port + i);
    auto bound =
        net::bind_io_backend(kind, options_for(*workers_[i], port, false));
    if (!bound.ok()) return bound.error();
    workers_[i]->io = std::move(bound).value();
    endpoints_.push_back(workers_[i]->io->local_endpoint());
  }
  return util::Status::ok_status();
}

util::Result<std::unique_ptr<ServingRuntime>> ServingRuntime::start(
    Config config, std::vector<dns::Zone> zones) {
  auto runtime =
      std::unique_ptr<ServingRuntime>(new ServingRuntime(std::move(config)));
  const Config& cfg = runtime->config_;
  const int n = cfg.workers;

  // Durable path first: recovery must finish before any shard serves.
  core::RecoveredState recovered;
  if (cfg.dnscup && !cfg.state_dir.empty()) {
    store::LeaseStore::Config store_config;
    store_config.dir = cfg.state_dir;
    store_config.fsync = cfg.fsync;
    store_config.snapshot_every_records = cfg.snapshot_every_records;
    ServingRuntime* rt = runtime.get();
    auto writer = JournalWriter::open(
        &runtime->storage_, store_config, [rt] { return rt->now_us(); },
        &recovered);
    if (!writer.ok()) return writer.error();
    runtime->writer_ = std::move(writer).value();
  }

  runtime->workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    runtime->workers_.push_back(std::make_unique<Worker>(cfg));
    runtime->workers_.back()->index = i;
  }
  if (auto status = runtime->bind_sockets(); !status.ok()) {
    return status.error();
  }

  // Push plane before the shard stacks: each shard's NotificationModule
  // is built with the plane's per-worker writer.  The plane's I/O thread
  // routes every resolution back to the owning worker's command queue
  // with a non-blocking post — a dropped post (full queue) self-heals
  // through the notifier's channel-ack deadline, and nothing here can
  // deadlock a worker blocked on its own queue.
  if (cfg.dnscup && cfg.push_plane) {
    push::PushServer::Config pc = cfg.push;
    pc.port = cfg.push_port;
    pc.workers = n;
    ServingRuntime* rt = runtime.get();
    auto started = push::PushServer::start(
        pc, &runtime->push_registry_,
        [rt](int w, uint16_t id, core::ChannelResolution res) {
          if (w < 0 || w >= static_cast<int>(rt->workers_.size())) return;
          Worker& worker = *rt->workers_[static_cast<std::size_t>(w)];
          worker.commands.try_push([&worker, id, res] {
            if (worker.dnscup != nullptr) {
              worker.dnscup->notifier().on_channel_resolution(id, res);
            }
          });
          worker.wake.wake();
        });
    if (!started.ok()) return started.error();
    runtime->push_ = std::move(started).value();
    for (const dns::Zone& zone : zones) {
      runtime->push_->set_zone_serial(zone.origin(), zone.serial());
    }
  }

  // Lease planner before the shard stacks: each shard's policy is built
  // with its worker's planner handle.  The planner thread never touches
  // worker state — observations arrive over per-worker MPSC queues and
  // assignments publish through the demand table's atomics.
  if (cfg.dnscup && cfg.planner) {
    planner::LeasePlanner::Config pc = cfg.planner_config;
    pc.workers = n;
    pc.mode = cfg.policy == core::DnscupAuthority::PolicyKind::kCommBudget
                  ? planner::LeasePlanner::Mode::kComm
                  : planner::LeasePlanner::Mode::kStorage;
    pc.storage_budget = static_cast<double>(cfg.storage_budget);
    pc.message_budget = cfg.message_budget;
    runtime->planner_ = planner::LeasePlanner::start(pc);
  }

  // Per-shard protocol stacks.  Each worker gets its own copy of every
  // zone; the registries stay per-worker and merge only at scrape time.
  const std::size_t shard_budget =
      std::max<std::size_t>(1, (cfg.storage_budget + n - 1) / n);
  for (int i = 0; i < n; ++i) {
    Worker& worker = *runtime->workers_[i];
    worker.shim.io = worker.io.get();
    worker.inbox_dropped = worker.registry.counter(
        "runtime_inbox_dropped", {{"worker", std::to_string(i)}});
    worker.oversize_dropped = worker.registry.counter(
        "runtime_oversize_dropped", {{"worker", std::to_string(i)}});
    worker.server = std::make_unique<server::AuthServer>(
        worker.shim, worker.loop, server::AuthServer::Role::kMaster,
        &worker.registry);
    worker.server->set_round_robin(cfg.round_robin);
    for (const dns::Zone& zone : zones) worker.server->add_zone(zone);
    if (cfg.dnscup) {
      core::DnscupAuthority::Config dc;
      const net::Duration max_lease = cfg.max_lease;
      dc.max_lease = [max_lease](const dns::Name&, dns::RRType) {
        return max_lease;
      };
      dc.policy = cfg.policy;
      dc.storage_budget = shard_budget;
      dc.notification = cfg.notification;
      dc.notification.metrics = &worker.registry;
      if (runtime->push_ != nullptr) {
        dc.notification.push_writer = runtime->push_->writer_for(i);
      }
      if (runtime->planner_ != nullptr) {
        dc.planner = runtime->planner_->handle_for_worker(i);
      }
      dc.metrics = &worker.registry;
      dc.journal = runtime->writer_ != nullptr
                       ? &runtime->writer_->shard_journal()
                       : nullptr;
      worker.dnscup = std::make_unique<core::DnscupAuthority>(
          *worker.server, worker.loop, dc);
    }
  }

  // Recovery: partition the surviving lease set by shard_of() and let
  // every shard re-adopt its slice (runs on this thread; no worker
  // threads exist yet, so no locking).
  if (runtime->writer_ != nullptr) {
    runtime->recovery_.replayed_records = recovered.replayed_records;
    runtime->recovery_.torn_records = recovered.torn_records;
    const auto parts = core::partition_recovered(recovered, n);
    for (int i = 0; i < n; ++i) {
      const auto report = runtime->workers_[i]->dnscup->recover(parts[i]);
      runtime->recovery_.leases_restored += report.leases_restored;
      runtime->recovery_.leases_expired += report.leases_expired;
      runtime->recovery_.changes_pushed += report.changes_pushed;
      runtime->recovery_.zones_changed =
          std::max(runtime->recovery_.zones_changed, report.zones_changed);
    }
  }

  // Go live: journal thread, worker threads, then socket intake.
  if (runtime->writer_ != nullptr) runtime->writer_->start();
  runtime->running_.store(true);
  for (int i = 0; i < n; ++i) {
    Worker& worker = *runtime->workers_[i];
    worker.thread =
        std::thread([rt = runtime.get(), &worker] { rt->worker_loop(worker); });
    // The receiver thread copies each datagram of a kernel burst into a
    // pool slot — the only copy on the receive path, into memory that is
    // never reallocated — and wakes the worker once per burst.
    worker.io->set_batch_receive_handler(
        [&worker](std::span<const net::RxPacket> batch) {
          for (const auto& packet : batch) {
            if (packet.data.size() > BufferPool::kSlotBytes) {
              worker.oversize_dropped.inc();
              continue;
            }
            BufferPool::Slot* slot = worker.pool.acquire();
            if (slot == nullptr) {
              worker.inbox_dropped.inc();  // worker behind; shed load
              continue;
            }
            slot->from = packet.from;
            slot->len = static_cast<uint32_t>(packet.data.size());
            std::memcpy(slot->bytes.data(), packet.data.data(),
                        packet.data.size());
            worker.pool.commit(slot);
          }
          worker.wake.wake();
        });
  }

  // Warm-restart lease re-adoption: v2 SUBSCRIBEs announce surviving
  // leases; each survivor is judged by the authority shard that owns its
  // (holder, name, type) key — the same shard_of() partition recovery
  // uses — via a blocking hop onto that worker.  Installed last so a
  // subscribe racing start() sees the all-rejected default (clients then
  // demote to TTL entries, which is safe) rather than a half-built
  // runtime.
  if (runtime->push_ != nullptr && cfg.dnscup) {
    runtime->push_->set_readopt_handler(
        [rt = runtime.get(), n](const net::Endpoint& holder,
                                const std::vector<push::LeaseSurvivor>&
                                    survivors) {
          std::vector<std::vector<std::size_t>> indices(n);
          std::vector<std::vector<core::DnscupAuthority::ReadoptRequest>>
              requests(n);
          for (std::size_t i = 0; i < survivors.size(); ++i) {
            const push::LeaseSurvivor& s = survivors[i];
            const std::size_t w = core::shard_of(
                holder, s.name, s.type, static_cast<std::size_t>(n));
            indices[w].push_back(i);
            requests[w].push_back(core::DnscupAuthority::ReadoptRequest{
                s.name, s.type,
                static_cast<net::Duration>(s.remaining_us)});
          }
          std::vector<bool> verdicts(survivors.size(), false);
          for (int w = 0; w < n; ++w) {
            if (requests[w].empty()) continue;
            Worker& worker = *rt->workers_[w];
            std::vector<bool> part;
            rt->run_on_worker(worker, [&] {
              part = worker.dnscup->readopt(holder, requests[w]);
            });
            for (std::size_t k = 0; k < part.size(); ++k) {
              verdicts[indices[w][k]] = part[k];
            }
          }
          return verdicts;
        });
  }
  return runtime;
}

void ServingRuntime::worker_loop(Worker& worker) {
  // Same CPU as the socket's receiver thread: the pool handoff stays on
  // one cache domain when pinning is configured.
  net::pin_current_thread_to_cpu(pin_cpu_for(worker.index));
  const std::size_t batch_size = config_.batch_size;
  std::deque<std::function<void()>> commands;
  // Steady state: serve one batch of pooled datagrams — responses
  // accumulate in the shim's tx arena — then flush them as a single
  // sendmmsg.  No allocation anywhere on this path once warm.
  worker.shim.batching = true;
  for (;;) {
    std::size_t served = 0;
    BufferPool::Slot* slot = nullptr;
    while (served < batch_size &&
           (slot = worker.pool.take_filled()) != nullptr) {
      if (worker.shim.handler) {
        worker.shim.handler(
            slot->from,
            std::span<const uint8_t>(slot->bytes.data(), slot->len));
      }
      worker.pool.release(slot);
      ++served;
    }
    worker.shim.flush();
    worker.commands.drain(commands);
    for (auto& command : commands) command();
    // Advance the shard's event loop to wall time: retransmission timers
    // and lease-expiry prunes fire here, on the owning thread.
    worker.loop.run_until(now_us());
    // Command- and timer-driven sends (CACHE-UPDATE fan-out on a zone
    // reload, retransmissions) batch within their iteration too.
    worker.shim.flush();
    if (worker.stop.load(std::memory_order_acquire)) {
      if (!worker.pool.has_filled() && worker.commands.empty()) break;
      continue;  // drain what arrived before intake stopped
    }
    if (!worker.pool.has_filled() && worker.commands.empty()) {
      worker.wake.wait_for(std::chrono::milliseconds(2));
    }
  }
  // Shutdown drain: one final UDP copy of every CACHE-UPDATE still in
  // flight (awaiting a retry slot or a channel ack), so stop() never
  // strands a queued push.  Counted as
  // cache_update_messages{result=shutdown_flush}.
  if (worker.dnscup != nullptr) worker.dnscup->notifier().flush_pending();
  worker.shim.flush();
  worker.shim.batching = false;  // post-stop inspection sends go direct
}

void ServingRuntime::stop() {
  if (!running_.exchange(false)) return;
  // 1. Stop intake: join the socket receiver threads.  The sockets stay
  //    open, so queued queries drained below can still be answered.
  for (auto& worker : workers_) worker->io->stop_receiving();
  // 2. Stop the push plane: flushes its write queues (bounded) and
  //    resolves everything still owed as kFailed — the workers are still
  //    running, so those fall back to UDP and are then covered by each
  //    worker's notifier flush on exit.
  if (push_ != nullptr) push_->stop();
  // 3. Drain and join the workers.
  for (auto& worker : workers_) {
    worker->stop.store(true, std::memory_order_release);
    worker->wake.wake();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // 4. Stop the planner after the workers have joined: no observe() or
  //    assignment() call can race the planner's teardown, and its final
  //    drain absorbs everything the workers enqueued.
  if (planner_ != nullptr) planner_->stop();
  // 5. Flush the journal: every op the workers enqueued lands in the WAL,
  //    then a final compacting snapshot.
  if (writer_ != nullptr) writer_->stop();
}

void ServingRuntime::run_on_worker(Worker& worker, std::function<void()> fn) {
  if (!running_.load()) {
    // Workers are quiescent (pre-start never happens — start() returns a
    // running runtime — so this is post-stop inspection).
    fn();
    return;
  }
  std::promise<void> done;
  auto finished = done.get_future();
  worker.commands.push([&fn, &done] {
    fn();
    done.set_value();
  });
  finished.wait();
}

std::size_t ServingRuntime::reload_zone(dns::Zone zone) {
  // One immutable snapshot of the new version, shared by every shard;
  // each worker copies from it and diffs/swaps on its own thread.
  auto snapshot = std::make_shared<const dns::Zone>(std::move(zone));
  // Publish the new serial to the subscription handshake first, so a
  // cache connecting mid-reload resyncs against the version it is about
  // to be (or just was) pushed.
  if (push_ != nullptr) {
    push_->set_zone_serial(snapshot->origin(), snapshot->serial());
  }
  std::size_t changes = 0;
  for (auto& worker : workers_) {
    run_on_worker(*worker, [&worker, &snapshot, &changes] {
      changes = worker->server->reload_zone(*snapshot);
    });
  }
  return changes;
}

metrics::Snapshot ServingRuntime::metrics() {
  metrics::Snapshot merged;
  merged.timestamp_us = now_us();
  bool first = true;
  for (auto& worker : workers_) {
    metrics::Snapshot shard;
    run_on_worker(*worker, [this, &worker, &shard] {
      shard = worker->registry.snapshot(now_us());
    });
    if (first) {
      shard.timestamp_us = merged.timestamp_us;
      merged = std::move(shard);
      first = false;
    } else {
      merged.merge(shard);
    }
  }
  if (writer_ != nullptr) merged.merge(writer_->metrics());
  // The push plane's instruments live in a runtime-owned registry whose
  // instrument set is fixed at construction; counters/gauges are relaxed
  // atomics, so snapshotting here races with nothing.
  if (push_ != nullptr) merged.merge(push_registry_.snapshot(now_us()));
  // The planner guards its histograms internally (metrics() locks its
  // stats mutex against the planner thread's adds).
  if (planner_ != nullptr) merged.merge(planner_->metrics(now_us()));
  return merged;
}

std::vector<core::Lease> ServingRuntime::collect_leases() {
  std::vector<core::Lease> all;
  for (auto& worker : workers_) {
    if (worker->dnscup == nullptr) continue;
    run_on_worker(*worker, [&worker, &all] {
      worker->dnscup->track_file().for_each(
          [&all](const core::Lease& lease) { all.push_back(lease); });
    });
  }
  return all;
}

std::string ServingRuntime::serialize_track_files() {
  // Rebuild one track file from all shards: restore() bypasses journal
  // and stats, and the map ordering makes the output canonical — byte
  // identical to a single-threaded authority holding the same leases.
  metrics::MetricsRegistry scratch;
  core::TrackFile merged(&scratch);
  for (const core::Lease& lease : collect_leases()) merged.restore(lease);
  return merged.serialize(now_us());
}

std::size_t ServingRuntime::live_leases() {
  const net::SimTime now = now_us();
  std::size_t live = 0;
  for (const core::Lease& lease : collect_leases()) {
    if (lease.valid(now)) ++live;
  }
  return live;
}

util::Status ServingRuntime::write_snapshot() {
  if (writer_ == nullptr) return util::Status::ok_status();
  return writer_->write_snapshot();
}

}  // namespace dnscup::runtime

// Sharded multi-worker serving runtime.
//
// ServingRuntime runs N workers.  Each worker owns, privately and
// exclusively on its own thread:
//
//   * an EventLoop (retransmission timers, lease expiry),
//   * a real UDP socket — all workers in one SO_REUSEPORT group on the
//     configured port, so the kernel's flow hash spreads query streams
//     across workers (per-worker ports when REUSEPORT is unavailable),
//   * an AuthServer with its own copy of the (immutable-per-version) zone
//     data, and
//   * a DnscupAuthority shard: the worker's slice of the track file, its
//     own grant policy and CACHE-UPDATE retransmission state.
//
// The query hot path — receive, grant lease, answer, push updates — takes
// zero locks: every touched structure is worker-private, and the only
// shared cells are relaxed-atomic metrics.  Everything cross-shard flows
// over bounded MPSC queues:
//
//   * datagrams: the socket's receiver thread enqueues into the worker's
//     inbox (try_push; overflow is dropped and counted, mirroring kernel
//     socket-queue behaviour),
//   * control commands (zone reload, metrics scrape, lease collection,
//     graceful drain): closures with completion futures,
//   * durability: lease ops stream to the single JournalWriter thread
//     that owns the PR-2 LeaseStore (see journal_writer.h).
//
// Zone distribution is snapshot-based: reload_zone() materializes one
// shared_ptr<const Zone> and hands it to every worker; each worker diffs
// and swaps its served copy on its own thread, then fans CACHE-UPDATE out
// to the leaseholders in its shard.
//
// Deterministic simulation tests are untouched by all of this: they keep
// driving a single EventLoop directly; the runtime is the real-socket
// serving layer on top of the same components.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/dnscup_authority.h"
#include "core/shard.h"
#include "net/event_loop.h"
#include "net/io_backend.h"
#include "planner/lease_planner.h"
#include "push/push_server.h"
#include "runtime/buffer_pool.h"
#include "runtime/journal_writer.h"
#include "runtime/mpsc_queue.h"
#include "runtime/shim_transport.h"
#include "server/authoritative.h"
#include "store/lease_store.h"
#include "util/metrics.h"
#include "util/result.h"

namespace dnscup::runtime {

struct Config {
  /// Serving port; 0 picks an ephemeral port (reflected in endpoints()).
  uint16_t port = 5300;
  int workers = 1;
  /// Try one SO_REUSEPORT group on `port`.  When binding the group fails
  /// (old kernel), the runtime falls back to per-worker ports: worker i
  /// serves port + i (all ephemeral when port == 0).
  bool reuseport = true;
  int rcvbuf_bytes = 1 << 20;
  int sndbuf_bytes = 1 << 20;

  /// Datagram I/O backend for every worker socket.  kDefault consults
  /// DNSCUP_IO_BACKEND; an explicit kUring degrades to portable (with a
  /// warning) when the kernel lacks what the uring backend needs.
  net::IoBackendKind io_backend = net::IoBackendKind::kDefault;

  /// Worker CPU affinity: worker i (its loop thread and its socket's
  /// receiver thread) is pinned to pin_cpus[i % size].  Empty = no
  /// pinning.
  std::vector<int> pin_cpus;

  bool dnscup = true;
  bool round_robin = false;
  net::Duration max_lease = net::seconds(3600);
  core::DnscupAuthority::PolicyKind policy =
      core::DnscupAuthority::PolicyKind::kStorageBudget;
  /// Total live-lease budget, split evenly across shards.
  std::size_t storage_budget = 100000;
  /// Total authority-bound message budget (msgs/s) for the planner's
  /// communication-constrained mode.
  double message_budget = 1e6;
  core::NotificationModule::Config notification;

  /// Online lease planner (src/planner): one planner thread off the hot
  /// path assigns lease lengths from a demand table fed by per-worker
  /// observation queues; each shard's policy becomes the fallback for
  /// pairs the planner has not planned yet.  planner_config budgets are
  /// overridden from storage_budget / message_budget, its worker count
  /// from Config::workers, and its mode from Config::policy.
  bool planner = false;
  planner::LeasePlanner::Config planner_config;

  /// Durable state directory; empty = volatile authority.
  std::string state_dir;
  store::FsyncPolicy fsync = store::FsyncPolicy::kAlways;
  uint64_t snapshot_every_records = 4096;

  /// Connection-oriented push plane (src/push): when enabled the runtime
  /// listens for cache subscriptions on push_port (0 = ephemeral) and
  /// subscribed caches receive CACHE-UPDATE over their TCP channel, with
  /// the UDP retransmit path as fallback for everyone else.
  bool push_plane = false;
  uint16_t push_port = 0;
  push::PushServer::Config push;

  /// Fixed datagram slots per worker's BufferPool, shared between the
  /// socket's receiver thread and the worker thread; when every slot is
  /// in flight new datagrams drop (counted as runtime_inbox_dropped).
  std::size_t inbox_capacity = 4096;
  std::size_t command_capacity = 256;

  /// Datagrams a worker serves per event-loop iteration before flushing
  /// all buffered responses as one sendmmsg batch.  Higher values
  /// amortise syscalls under load at the cost of per-query latency.
  std::size_t batch_size = 32;
};

/// What start() recovered from the durable store, summed over shards.
struct RecoverySummary {
  uint64_t leases_restored = 0;
  uint64_t leases_expired = 0;
  uint64_t zones_changed = 0;
  uint64_t changes_pushed = 0;
  uint64_t replayed_records = 0;
  uint64_t torn_records = 0;
};

class ServingRuntime {
 public:
  /// Binds sockets, builds all shards, runs crash recovery (when
  /// `config.state_dir` is set) and starts the worker + journal threads.
  /// `zones` is copied into every shard.
  static util::Result<std::unique_ptr<ServingRuntime>> start(
      Config config, std::vector<dns::Zone> zones);

  ~ServingRuntime();

  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  /// Graceful drain: stops socket intake, lets every worker answer what
  /// is already queued, flushes the journal and writes a final snapshot.
  /// Idempotent.  Unacked CACHE-UPDATE retransmissions are abandoned
  /// (their leases stay durable and recover on the next start).
  void stop();

  /// The serving endpoints: one entry in REUSEPORT mode, one per worker
  /// in fallback mode.
  const std::vector<net::Endpoint>& endpoints() const { return endpoints_; }
  bool reuseport_active() const { return reuseport_active_; }
  /// Name of the I/O backend actually serving ("portable" or "uring" —
  /// after any fallback).
  std::string_view io_backend_name() const {
    return workers_.empty() ? std::string_view{}
                            : workers_.front()->io->backend_name();
  }
  int workers() const { return static_cast<int>(workers_.size()); }
  const RecoverySummary& recovery() const { return recovery_; }
  bool durable() const { return writer_ != nullptr; }

  /// The push plane, or null when Config::push_plane is off.
  push::PushServer* push_plane() { return push_.get(); }
  /// The lease planner, or null when Config::planner is off.
  planner::LeasePlanner* planner() { return planner_.get(); }
  /// TCP endpoint caches subscribe to; {0,0} when the plane is off.
  net::Endpoint push_endpoint() const {
    return push_ != nullptr ? push_->local_endpoint() : net::Endpoint{};
  }

  /// Microseconds since start() — the wall clock every shard's EventLoop
  /// advances to, so lease timestamps are comparable across shards.
  net::SimTime now_us() const;

  // Cross-shard control plane (each call fans a command to every worker
  // and blocks for completion; callable from any non-worker thread).

  /// Distributes a new zone version to every shard; returns the RRset
  /// change count the diff detected (identical in every shard).
  std::size_t reload_zone(dns::Zone zone);

  /// Merged snapshot: per-worker registries (scraped on their own
  /// threads) + the journal writer's registry, aggregated with
  /// Snapshot::merge.
  metrics::Snapshot metrics();

  /// All shards' leases, collected on their owning threads.
  std::vector<core::Lease> collect_leases();

  /// Merged track-file serialization (canonical order — what a
  /// single-threaded authority with the same leases would print).
  std::string serialize_track_files();

  /// Valid leases across all shards at now_us().
  std::size_t live_leases();

  /// Forces a durable snapshot; ok_status() when volatile.
  util::Status write_snapshot();

 private:
  struct Worker {
    explicit Worker(const Config& config);

    int index = 0;
    metrics::MetricsRegistry registry;
    net::EventLoop loop{&registry};
    WakeSignal wake;
    BufferPool pool;
    BoundedMpscQueue<std::function<void()>> commands;
    ShimTransport shim;
    std::unique_ptr<net::IoBackend> io;
    std::unique_ptr<server::AuthServer> server;
    std::unique_ptr<core::DnscupAuthority> dnscup;
    metrics::Counter inbox_dropped;     ///< pool exhausted, datagram dropped
    metrics::Counter oversize_dropped;  ///< datagram larger than a pool slot
    std::atomic<bool> stop{false};
    std::thread thread;
  };

  explicit ServingRuntime(Config config);

  util::Status bind_sockets();
  /// CPU for worker `index` per Config::pin_cpus (-1 = unpinned).
  int pin_cpu_for(int index) const;
  void worker_loop(Worker& worker);
  /// Runs `fn` on worker `w` and waits.  After stop() the workers are
  /// quiescent and the closure runs inline on the caller.
  void run_on_worker(Worker& worker, std::function<void()> fn);

  Config config_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<net::Endpoint> endpoints_;
  bool reuseport_active_ = false;
  store::PosixStorage storage_;
  std::unique_ptr<JournalWriter> writer_;
  /// Declared after workers_: the push thread posts resolutions into
  /// worker command queues, so it must stop (destruction runs stop())
  /// while those queues still exist.
  std::unique_ptr<push::PushServer> push_;
  /// Registry for the push plane's instruments; scraped by metrics().
  metrics::MetricsRegistry push_registry_;
  /// Declared after workers_ for the same reason as push_: workers feed
  /// the planner's queues, so it must outlive their threads (stop()
  /// joins workers before stopping the planner anyway).
  std::unique_ptr<planner::LeasePlanner> planner_;
  RecoverySummary recovery_;
  std::atomic<bool> running_{false};
};

}  // namespace dnscup::runtime

// Single-writer durable journaling for the sharded runtime.
//
// The WAL/snapshot store (store::LeaseStore) is strictly single-threaded,
// and the recovery equivalence guarantee depends on one totally-ordered
// record stream.  Workers therefore never touch the store: each worker's
// DnscupAuthority journals into a ShardJournal facade that forwards every
// lease op over a bounded MPSC queue (blocking push — durability ops are
// never dropped, a full queue backpressures the worker) to one writer
// thread, which owns the LeaseStore plus a *mirror* TrackFile.  The mirror
// is the union of all shards' lease state rebuilt from the op stream; it
// is what compacting snapshots serialize, so snapshots stay whole-state
// even though no worker ever sees another worker's shard.
//
// Per-key ordering is preserved end to end: all ops for one
// (holder, name, type) tuple originate from the single worker that owns
// the flow, and the queue is FIFO per producer.  Cross-key interleaving
// across workers is arbitrary — exactly as meaningless to replay as it is
// in a single-threaded run.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <variant>

#include "core/persistence.h"
#include "core/shard.h"
#include "core/track_file.h"
#include "runtime/mpsc_queue.h"
#include "store/lease_store.h"
#include "util/metrics.h"
#include "util/result.h"

namespace dnscup::runtime {

class JournalWriter {
 public:
  /// Opens the store under `config.dir` (crash recovery included; the
  /// surviving state lands in `recovered`) and prepares — but does not
  /// start — the writer thread.  `clock` supplies the runtime's wall
  /// microsecond clock for snapshot timestamps.  The storage backend must
  /// outlive the writer.
  static util::Result<std::unique_ptr<JournalWriter>> open(
      store::Storage* storage, store::LeaseStore::Config config,
      std::function<net::SimTime()> clock, core::RecoveredState* recovered);

  ~JournalWriter();

  /// Starts the writer thread.  Call after all workers are constructed
  /// (their recover() runs on the starting thread first).
  void start();

  /// Drains the op queue, writes a final compacting snapshot and joins.
  /// Idempotent.  Producers must already be quiescent.
  void stop();

  /// The StateJournal facade workers attach to their track files.  One
  /// instance serves every shard: the methods only enqueue.
  core::StateJournal& shard_journal() { return shard_journal_; }

  /// Blocking scrape of the writer's registry (store_* instruments and
  /// the mirror's track_file_* counters), executed on the writer thread.
  metrics::Snapshot metrics();

  /// Forces a compacting snapshot of the mirror now (blocking).
  util::Status write_snapshot();

  bool healthy();

 private:
  struct OpGrant {
    core::Lease lease;
    bool renewal;
  };
  struct OpRevoke {
    net::Endpoint holder;
    dns::Name name;
    dns::RRType type;
  };
  struct OpPrune {
    net::SimTime now;
  };
  struct OpZoneSerial {
    dns::Name origin;
    uint32_t serial;
  };
  struct OpCommand {
    std::function<void()> fn;
  };
  using Op = std::variant<OpGrant, OpRevoke, OpPrune, OpZoneSerial,
                          OpCommand>;

  class ShardJournal final : public core::StateJournal {
   public:
    explicit ShardJournal(JournalWriter* writer) : writer_(writer) {}
    void record_grant(const core::Lease& lease, bool renewal) override {
      writer_->enqueue(OpGrant{lease, renewal});
    }
    void record_revoke(const net::Endpoint& holder, const dns::Name& name,
                       dns::RRType type) override {
      writer_->enqueue(OpRevoke{holder, name, type});
    }
    void record_prune(net::SimTime now) override {
      writer_->enqueue(OpPrune{now});
    }
    void record_zone_serial(const dns::Name& origin,
                            uint32_t serial) override {
      writer_->enqueue(OpZoneSerial{origin, serial});
    }

   private:
    JournalWriter* writer_;
  };

  explicit JournalWriter(std::function<net::SimTime()> clock);

  void enqueue(Op op);
  /// Runs `fn` on the writer thread and waits — or inline when the
  /// thread is not running (startup and post-stop are single-threaded).
  void run_on_writer(std::function<void()> fn);
  void run();
  void apply(Op& op);

  std::function<net::SimTime()> clock_;
  metrics::MetricsRegistry registry_;
  std::unique_ptr<store::LeaseStore> store_;
  core::TrackFile mirror_{&registry_};
  std::map<dns::Name, uint32_t> last_serial_;
  ShardJournal shard_journal_{this};
  WakeSignal wake_;
  BoundedMpscQueue<Op> queue_{8192, &wake_};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace dnscup::runtime

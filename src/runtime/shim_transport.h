// Batching transport facade shared by the serving runtimes (authority and
// cache side).  While `batching` is on (a worker loop's steady state)
// sends append into a reusable tx arena and leave as one backend batch
// (sendmmsg / io_uring submit) when the loop calls flush(); off the worker
// thread (and after drain) sends go straight through to the underlying
// datagram backend.
#pragma once

#include <span>
#include <vector>

#include "net/io_backend.h"
#include "net/transport.h"

namespace dnscup::runtime {

class ShimTransport final : public net::Transport {
 public:
  const net::Endpoint& local_endpoint() const override {
    return io->local_endpoint();
  }
  void send(const net::Endpoint& to,
            std::span<const uint8_t> data) override {
    if (!batching) {
      io->send(to, data);
      return;
    }
    const std::size_t offset = tx_arena.size();
    tx_arena.insert(tx_arena.end(), data.begin(), data.end());
    tx_entries.push_back(TxEntry{to, offset, data.size()});
  }
  void set_receive_handler(ReceiveHandler h) override {
    handler = std::move(h);
  }

  /// Sends everything buffered since the last flush as one batch.
  /// Entries carry offsets, not spans: the arena may reallocate while
  /// a batch accumulates, so spans are built only here.  The backend
  /// only borrows the spans until send_batch returns (both backends
  /// wait out their submissions), so the arena reset below is safe.
  void flush() {
    if (tx_entries.empty()) return;
    tx_packets.clear();
    for (const TxEntry& entry : tx_entries) {
      tx_packets.push_back(net::TxPacket{
          entry.to, std::span<const uint8_t>(tx_arena.data() + entry.offset,
                                             entry.len)});
    }
    io->send_batch(tx_packets);
    tx_entries.clear();
    tx_arena.clear();  // keeps capacity: steady state reuses it
  }

  net::IoBackend* io = nullptr;
  ReceiveHandler handler;
  bool batching = false;

 private:
  struct TxEntry {
    net::Endpoint to;
    std::size_t offset = 0;
    std::size_t len = 0;
  };
  std::vector<uint8_t> tx_arena;
  std::vector<TxEntry> tx_entries;
  std::vector<net::TxPacket> tx_packets;
};

}  // namespace dnscup::runtime

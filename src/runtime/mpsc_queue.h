// Bounded multi-producer/single-consumer queue — the only way state
// crosses threads in the sharded runtime (the "no shared mutable state
// without a queue" rule, DESIGN.md §5).
//
// Producers choose their overload behaviour per call site:
//   push()      blocks until space frees up — backpressure for producers
//               that must not lose items (journal ops, control commands);
//   try_push()  fails fast — for producers that must never block (the UDP
//               receiver thread drops the datagram and counts it, exactly
//               like a full kernel socket queue).
// The single consumer drains with drain(), which swaps the whole batch
// out under one lock acquisition.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>

namespace dnscup::runtime {

/// Latched wakeup flag: wake() from any thread, wait_for() on the
/// consumer.  The latch closes the race between "queues look empty" and
/// "producer pushed right after" — a wake arriving before the wait still
/// terminates it immediately.
class WakeSignal {
 public:
  void wake() {
    {
      std::lock_guard lock(mutex_);
      pending_ = true;
    }
    cv_.notify_one();
  }

  template <typename Rep, typename Period>
  void wait_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    cv_.wait_for(lock, timeout, [this] { return pending_; });
    pending_ = false;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool pending_ = false;
};

template <typename T>
class BoundedMpscQueue {
 public:
  /// `wake` (optional, not owned) is signalled after every successful
  /// push so the consumer need not poll.
  explicit BoundedMpscQueue(std::size_t capacity, WakeSignal* wake = nullptr)
      : capacity_(capacity), wake_(wake) {}

  /// Blocks while the queue is full (producer backpressure).
  void push(T item) {
    {
      std::unique_lock lock(mutex_);
      not_full_.wait(lock, [this] { return items_.size() < capacity_; });
      items_.push_back(std::move(item));
    }
    if (wake_ != nullptr) wake_->wake();
  }

  /// Non-blocking; false when full (caller drops and accounts the item).
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    if (wake_ != nullptr) wake_->wake();
    return true;
  }

  /// Swaps the queued batch into `out` (cleared first).  Single consumer.
  void drain(std::deque<T>& out) {
    out.clear();
    {
      std::lock_guard lock(mutex_);
      items_.swap(out);
    }
    if (!out.empty()) not_full_.notify_all();
  }

  bool empty() const {
    std::lock_guard lock(mutex_);
    return items_.empty();
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  WakeSignal* wake_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::deque<T> items_;
};

}  // namespace dnscup::runtime

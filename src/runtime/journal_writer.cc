#include "runtime/journal_writer.h"

#include <chrono>
#include <utility>

#include "util/assert.h"
#include "util/logging.h"

namespace dnscup::runtime {

util::Result<std::unique_ptr<JournalWriter>> JournalWriter::open(
    store::Storage* storage, store::LeaseStore::Config config,
    std::function<net::SimTime()> clock, core::RecoveredState* recovered) {
  DNSCUP_ASSERT(recovered != nullptr);
  auto writer =
      std::unique_ptr<JournalWriter>(new JournalWriter(std::move(clock)));
  config.metrics = &writer->registry_;
  auto opened = store::LeaseStore::open(storage, config, recovered);
  if (!opened.ok()) return opened.error();
  writer->store_ = std::move(opened).value();
  // Seed the mirror and the serial dedupe map with the recovered state:
  // the store already holds these, so replaying them again would bloat
  // the WAL without adding information.
  for (const core::Lease& lease : recovered->leases) {
    writer->mirror_.restore(lease);
  }
  writer->last_serial_ = recovered->zone_serials;
  return writer;
}

JournalWriter::JournalWriter(std::function<net::SimTime()> clock)
    : clock_(std::move(clock)) {}

JournalWriter::~JournalWriter() { stop(); }

void JournalWriter::start() {
  DNSCUP_ASSERT(!running_.load());
  stop_requested_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { run(); });
}

void JournalWriter::stop() {
  if (!running_.load()) return;
  stop_requested_.store(true);
  wake_.wake();
  thread_.join();
  running_.store(false);
}

void JournalWriter::enqueue(Op op) { queue_.push(std::move(op)); }

void JournalWriter::run_on_writer(std::function<void()> fn) {
  if (!running_.load()) {
    // Startup (before start()) and shutdown (after stop()) are
    // single-threaded; run inline.
    fn();
    return;
  }
  std::promise<void> done;
  auto future = done.get_future();
  enqueue(OpCommand{[&fn, &done] {
    fn();
    done.set_value();
  }});
  future.wait();
}

metrics::Snapshot JournalWriter::metrics() {
  metrics::Snapshot snapshot;
  run_on_writer([&] { snapshot = registry_.snapshot(clock_()); });
  return snapshot;
}

util::Status JournalWriter::write_snapshot() {
  util::Status status = util::Status::ok_status();
  run_on_writer([&] { status = store_->write_snapshot(mirror_, clock_()); });
  return status;
}

bool JournalWriter::healthy() {
  bool healthy = true;
  run_on_writer([&] { healthy = store_->healthy(); });
  return healthy;
}

void JournalWriter::run() {
  std::deque<Op> batch;
  for (;;) {
    queue_.drain(batch);
    if (batch.empty()) {
      if (stop_requested_.load()) break;
      wake_.wait_for(std::chrono::milliseconds(5));
      continue;
    }
    for (Op& op : batch) apply(op);
    if (auto status = store_->maybe_snapshot(mirror_, clock_());
        !status.ok()) {
      DNSCUP_LOG_WARN("journal snapshot failed: %s",
                      status.error().to_string().c_str());
    }
  }
  // Final compaction so a clean shutdown restarts from a snapshot, not a
  // WAL replay.
  if (auto status = store_->write_snapshot(mirror_, clock_());
      !status.ok()) {
    DNSCUP_LOG_WARN("final journal snapshot failed: %s",
                    status.error().to_string().c_str());
  }
}

void JournalWriter::apply(Op& op) {
  if (auto* grant = std::get_if<OpGrant>(&op)) {
    store_->record_grant(grant->lease, grant->renewal);
    mirror_.grant(grant->lease.holder, grant->lease.name, grant->lease.type,
                  grant->lease.granted_at, grant->lease.length);
  } else if (auto* revoke = std::get_if<OpRevoke>(&op)) {
    store_->record_revoke(revoke->holder, revoke->name, revoke->type);
    mirror_.revoke(revoke->holder, revoke->name, revoke->type);
  } else if (auto* prune = std::get_if<OpPrune>(&op)) {
    store_->record_prune(prune->now);
    mirror_.prune(prune->now);
  } else if (auto* serial = std::get_if<OpZoneSerial>(&op)) {
    // Every shard's detection module reports the same serial change; one
    // WAL record per actual change suffices.
    auto it = last_serial_.find(serial->origin);
    if (it != last_serial_.end() && it->second == serial->serial) return;
    last_serial_[serial->origin] = serial->serial;
    store_->record_zone_serial(serial->origin, serial->serial);
  } else if (auto* command = std::get_if<OpCommand>(&op)) {
    command->fn();
  }
}

}  // namespace dnscup::runtime

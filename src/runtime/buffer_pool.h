// Per-worker fixed buffer pool for the zero-copy receive path.
//
// The socket's receiver thread and the worker thread exchange fixed-size
// datagram slots through two single-producer/single-consumer index rings:
//
//     receiver --(filled ring)--> worker
//     receiver <--(free ring)---- worker
//
// The receiver acquires a free slot, copies one datagram into it and
// commits it; the worker takes filled slots, serves them and releases the
// slots back.  All storage is allocated once at construction — in steady
// state a datagram's journey from kernel to answer touches no allocator.
// When the pool runs dry (worker behind) the receiver drops the datagram
// and the caller counts it, mirroring kernel socket-queue behaviour.
//
// SPSC holds by construction: each worker owns one pool, one UDP socket
// and therefore exactly one receiver thread.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "net/transport.h"
#include "util/assert.h"

namespace dnscup::runtime {

/// Lock-free single-producer/single-consumer ring of slot indices.
/// Capacity is rounded up to a power of two; push fails when full, pop
/// fails when empty — never blocks, never allocates after construction.
class SpscIndexRing {
 public:
  explicit SpscIndexRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity + 1) cap <<= 1;  // one slot stays empty
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  bool push(uint32_t value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == head_.load(std::memory_order_acquire)) return false;
    slots_[tail] = value;
    tail_.store(next, std::memory_order_release);
    return true;
  }

  bool pop(uint32_t& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    value = slots_[head];
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<uint32_t> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
};

class BufferPool {
 public:
  /// Bytes per datagram slot.  This protocol's datagrams top out at
  /// dns::kMaxUdpPayload (512); the headroom keeps the pool useful for
  /// any UDP DNS payload a transport could hand us.
  static constexpr std::size_t kSlotBytes = 2048;

  struct Slot {
    net::Endpoint from;
    uint32_t len = 0;
    std::array<uint8_t, kSlotBytes> bytes;
  };

  explicit BufferPool(std::size_t slot_count)
      : slots_(slot_count), free_(slot_count), filled_(slot_count) {
    for (std::size_t i = 0; i < slot_count; ++i) {
      free_.push(static_cast<uint32_t>(i));
    }
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // -- Receiver-thread side --------------------------------------------

  /// Pops a free slot to fill; nullptr when the worker has fallen behind
  /// and every slot is in flight (caller drops and counts).
  Slot* acquire() {
    uint32_t index = 0;
    if (!free_.pop(index)) return nullptr;
    return &slots_[index];
  }

  /// Hands a filled slot to the worker.
  void commit(Slot* slot) {
    const bool pushed = filled_.push(index_of(slot));
    DNSCUP_ASSERT(pushed);  // ring sized to hold every slot
  }

  /// Returns an acquired-but-unused slot (oversize datagram) to the free
  /// ring without waking the worker.
  void cancel(Slot* slot) {
    const bool pushed = free_.push(index_of(slot));
    DNSCUP_ASSERT(pushed);
  }

  // -- Worker-thread side ----------------------------------------------

  /// Next filled slot, nullptr when none are pending.
  Slot* take_filled() {
    uint32_t index = 0;
    if (!filled_.pop(index)) return nullptr;
    return &slots_[index];
  }

  /// Recycles a served slot.
  void release(Slot* slot) {
    const bool pushed = free_.push(index_of(slot));
    DNSCUP_ASSERT(pushed);
  }

  bool has_filled() const { return !filled_.empty(); }

 private:
  uint32_t index_of(const Slot* slot) const {
    return static_cast<uint32_t>(slot - slots_.data());
  }

  std::vector<Slot> slots_;
  SpscIndexRing free_;    ///< worker -> receiver
  SpscIndexRing filled_;  ///< receiver -> worker
};

}  // namespace dnscup::runtime

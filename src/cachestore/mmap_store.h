// Mmap-backed persistent cache store: the dnsforwarder-style "cache file"
// adapted to the ResolverCache storage seam (server/cache_store.h).
//
// The store *serves* from the inherited heap structures — lookups, LRU
// order and eviction behave exactly like HeapCacheStore, which is what the
// backend-equivalence tests assert — and mirrors every committed mutation
// into a memory-mapped file image:
//
//   [ header page, 4 KiB ]   magic, version, geometry, slab bump pointer,
//                            wall-clock epoch, CRC
//   [ slot table ]           slot_count × 512 B fixed slots, open-addressed
//                            (linear probing) on the splitmix64-mixed
//                            CacheKeyHash; each slot carries the entry's
//                            metadata + name text, a CRC over everything
//                            but the LRU tick, and a (offset, length, CRC)
//                            reference into the slab
//   [ slab arena ]           bump-allocated RRset wire data — the PR-4
//                            ByteWriter encode path (encode_rrset), one
//                            self-contained message per entry
//
// Zone serials ride in the same slot table as state=kZone slots, so the
// "highest serial applied" sidecar survives restarts too.
//
// open() validates magic/version/geometry/CRC and falls back to a clean
// cold image on any mismatch; on a valid image it adopts every intact
// slot, decaying TTL and lease times by the wall-clock downtime (the
// persisted epoch maps the writing process's SimTime 0 to CLOCK_REALTIME;
// the delta between epochs is exactly the time the cache was down), then
// rewrites the image fresh against the new epoch — which also compacts
// the slab and clears tombstones.  Torn slots (a kill -9 mid-memcpy)
// simply fail their CRC and are dropped.
//
// Single-threaded like the rest of a worker's cache stack: one store per
// worker, one file per shard (dnscached names them cache-shard-<i>).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "server/cache_store.h"
#include "util/metrics.h"
#include "util/result.h"

namespace dnscup::cachestore {

class MmapCacheStore final : public server::HeapCacheStore {
 public:
  struct Options {
    std::string path;
    /// Total file size; geometry (slot count, slab bytes) derives from
    /// it.  Clamped to at least 1 MiB.
    std::size_t file_bytes = 64ull << 20;
    /// The adopting runtime's SimTime at open (usually ~0): entries whose
    /// decayed TTL *and* lease are both past this are dropped at load.
    net::SimTime now = 0;
    /// False demotes warm-loaded lease state to plain TTL at load — the
    /// safe choice when no push channel will re-adopt the leases (dnscup
    /// or the push plane disabled), since honoring a lease the authority
    /// no longer serves pushes for risks stale serves.
    bool keep_leases = true;
    /// Registry for cache_store_* gauges/counters (default when null).
    metrics::MetricsRegistry* metrics = nullptr;
    /// Test hook: CLOCK_REALTIME stand-in in µs (0 = read the real clock).
    /// Downtime decay across restarts is the delta between the persisted
    /// and current wall epoch, so tests fake downtime by advancing this.
    int64_t wall_now_us = 0;
  };

  struct LoadReport {
    bool cold = true;              ///< started from an empty image
    std::string cold_reason;       ///< "fresh file", "bad version", ...
    uint64_t warm_entries = 0;     ///< entries adopted from the image
    uint64_t expired_dropped = 0;  ///< dead after downtime TTL decay
    uint64_t torn_dropped = 0;     ///< CRC-invalid or unparsable slots
    uint64_t leases_demoted = 0;   ///< lease state cleared (keep_leases off)
    uint64_t zones_loaded = 0;     ///< zone-serial slots adopted
    int64_t downtime_us = 0;       ///< wall-clock decay applied at load
  };

  /// Opens (creating or adopting) the file at options.path.  Fails only
  /// on I/O errors (open/truncate/mmap); a damaged or mismatched image is
  /// not an error — it cold-starts, and load_report() says why.
  static util::Result<std::unique_ptr<MmapCacheStore>> open(Options options);

  ~MmapCacheStore() override;

  // CacheStoreBackend — lookup/LRU/eviction behavior is inherited from
  // HeapCacheStore verbatim; only the mutating calls add a file mirror.
  std::string_view name() const override { return "mmap"; }
  void commit(const server::CacheKey& key) override;
  bool erase(const server::CacheKey& key) override;
  void touch(const server::CacheKey& key) override;
  void put_zone_serial(const dns::Name& zone, uint32_t serial) override;

  const LoadReport& load_report() const { return load_; }
  std::size_t file_bytes() const { return file_bytes_; }
  std::size_t slot_count() const { return slot_count_; }
  /// Slots holding a live entry or zone serial in the file image.
  std::size_t slots_used() const { return slots_used_; }

  /// Asks the kernel to start writing dirty pages back (msync MS_ASYNC);
  /// the destructor does a synchronous flush.
  void flush();

 private:
  explicit MmapCacheStore(Options options);

  /// Zeroes the slot table, re-anchors the wall epoch and rewrites the
  /// header; used both for cold starts and for the post-load rewrite.
  void reset_image(int64_t wall_now);
  void cold_init(const std::string& reason, int64_t wall_now);
  void load_image(int64_t wall_now);
  void write_header();

  uint8_t* slot_ptr(std::size_t index) const;
  /// Probes for the slot holding `key_hash` + matching identity;
  /// `insert_at` (may be null) receives the best insertion slot (first
  /// dead/free seen).  Returns slot_count() when not found.
  std::size_t probe(uint64_t key_hash, uint32_t want_state,
                    std::string_view name_text, uint16_t rrtype,
                    std::size_t* insert_at) const;
  /// Appends `payload` to the slab, compacting once if full.  Returns
  /// false (persist failure) when the slab cannot take it even compacted.
  bool slab_append(std::span<const uint8_t> payload, uint64_t* off);
  void compact_slab();
  void write_slot(std::size_t index, std::span<const uint8_t> image);
  void kill_slot(std::size_t index);
  void persist_entry(const server::CacheKey& key,
                     const server::CacheEntry& entry);
  void persist_zone(const dns::Name& zone, uint32_t serial);

  Options options_;
  int fd_ = -1;
  uint8_t* map_ = nullptr;
  std::size_t file_bytes_ = 0;
  std::size_t slot_count_ = 0;   ///< power of two
  std::size_t slab_off_ = 0;     ///< file offset of the slab arena
  std::size_t slab_bytes_ = 0;
  uint64_t slab_used_ = 0;
  int64_t wall_epoch_us_ = 0;    ///< CLOCK_REALTIME µs at SimTime 0
  uint64_t lru_tick_ = 0;        ///< monotone LRU stamp for slot ordering
  std::size_t slots_used_ = 0;
  LoadReport load_;

  metrics::Gauge file_bytes_gauge_;
  metrics::Gauge slots_used_gauge_;
  metrics::Gauge warm_entries_gauge_;
  metrics::Counter cold_starts_;
  metrics::Counter persist_failed_slab_;
  metrics::Counter persist_failed_table_;
  metrics::Counter compactions_;
};

}  // namespace dnscup::cachestore

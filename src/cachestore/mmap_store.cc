#include "cachestore/mmap_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <cerrno>
#include <cstddef>
#include <cstring>
#include <ctime>
#include <span>
#include <utility>
#include <vector>

#include "dns/rr.h"
#include "dns/wire.h"
#include "util/crc32.h"

namespace dnscup::cachestore {
namespace {

constexpr char kMagic[8] = {'D', 'N', 'S', 'C', 'U', 'P', 'C', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderBytes = 4096;
constexpr std::size_t kSlotBytes = 512;
constexpr std::size_t kMinFileBytes = 1ull << 20;
constexpr std::size_t kMinSlots = 64;
/// RRType sentinel marking a zone-serial slot's probe identity; real
/// record types never reach 0xFFFF in this codebase.
constexpr uint16_t kZoneType = 0xFFFF;

// Fixed in-slot byte layout.  The LRU tick lives OUTSIDE the CRC-covered
// range so touch() — the per-cache-hit path — is a single uncheck-summed
// u64 store; a torn tick only perturbs warm-reload LRU order, never data.
constexpr std::size_t kNameOffset = 80;        // after SlotHeader
constexpr std::size_t kMaxNameText = 255;
constexpr std::size_t kTickOffset = 496;       // u64, not CRC-covered
constexpr std::size_t kSlotCrcOffset = 508;    // u32 over [0, 496)

enum SlotState : uint32_t {
  kFree = 0,
  kUsed = 1,
  kDead = 2,
  kZone = 3,
};

struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t slot_bytes;
  uint64_t slot_count;
  uint64_t slab_bytes;
  uint64_t slab_used;
  int64_t wall_epoch_us;  ///< CLOCK_REALTIME µs at the writer's SimTime 0
  uint64_t file_bytes;
  uint32_t reserved;
  uint32_t crc;           ///< over the preceding bytes
};
static_assert(sizeof(FileHeader) == 64);
static_assert(std::is_trivially_copyable_v<FileHeader>);
constexpr std::size_t kHeaderCrcOffset = offsetof(FileHeader, crc);

struct SlotHeader {
  uint32_t state;
  uint32_t slab_crc;
  uint64_t key_hash;
  int64_t inserted_at;
  int64_t expiry;
  int64_t lease_expiry;
  uint64_t slab_off;     ///< offset within the slab arena
  uint32_t slab_len;
  uint32_t ttl;          ///< zone slots: the zone serial
  uint32_t lease_ip;
  uint16_t lease_port;
  uint16_t name_len;
  uint16_t rrtype;
  uint16_t rrclass;
  uint8_t negative;
  uint8_t negative_rcode;
  uint8_t has_lease;
  uint8_t pad[9];
};
static_assert(sizeof(SlotHeader) == kNameOffset);
static_assert(std::is_trivially_copyable_v<SlotHeader>);

int64_t realtime_us() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return int64_t{ts.tv_sec} * 1'000'000 + ts.tv_nsec / 1'000;
}

std::string lower(std::string text) {
  for (char& c : text) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return text;
}

uint64_t zone_slot_hash(const dns::Name& zone) {
  return server::CacheKeyHash{}(
      server::CacheKey{zone, static_cast<dns::RRType>(kZoneType)});
}

uint32_t slot_crc(const uint8_t* slot) {
  return util::crc32({slot, kTickOffset});
}

}  // namespace

MmapCacheStore::MmapCacheStore(Options options)
    : options_(std::move(options)) {
  metrics::MetricsRegistry& reg = metrics::resolve(options_.metrics);
  const std::string instance = reg.next_instance("cache_store");
  metrics::Labels base{{"instance", instance}};
  file_bytes_gauge_ = reg.gauge("cache_store_file_bytes", base);
  slots_used_gauge_ = reg.gauge("cache_store_slots_used", base);
  warm_entries_gauge_ = reg.gauge("cache_store_warm_entries", base);
  cold_starts_ = reg.counter("cache_store_cold_starts", base);
  metrics::Labels slab = base;
  slab.emplace_back("reason", "slab_full");
  persist_failed_slab_ = reg.counter("cache_store_persist_failures", slab);
  metrics::Labels table = base;
  table.emplace_back("reason", "table_full");
  persist_failed_table_ = reg.counter("cache_store_persist_failures", table);
  compactions_ = reg.counter("cache_store_compactions", base);
}

MmapCacheStore::~MmapCacheStore() {
  if (map_ != nullptr) {
    ::msync(map_, file_bytes_, MS_SYNC);
    ::munmap(map_, file_bytes_);
  }
  if (fd_ >= 0) ::close(fd_);
}

util::Result<std::unique_ptr<MmapCacheStore>> MmapCacheStore::open(
    Options options) {
  const int64_t wall_now =
      options.wall_now_us != 0 ? options.wall_now_us : realtime_us();
  std::unique_ptr<MmapCacheStore> store(
      new MmapCacheStore(std::move(options)));

  store->fd_ = ::open(store->options_.path.c_str(),
                      O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (store->fd_ < 0) {
    return util::make_error(util::ErrorCode::kIo,
                            "open " + store->options_.path + ": " +
                                std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(store->fd_, &st) != 0) {
    return util::make_error(util::ErrorCode::kIo,
                            "fstat: " + std::string(std::strerror(errno)));
  }
  const std::size_t target =
      std::max(store->options_.file_bytes, kMinFileBytes);
  const auto existing = static_cast<std::size_t>(st.st_size);
  if (existing != target && ::ftruncate(store->fd_, target) != 0) {
    return util::make_error(util::ErrorCode::kIo,
                            "ftruncate: " + std::string(std::strerror(errno)));
  }
  void* map = ::mmap(nullptr, target, PROT_READ | PROT_WRITE, MAP_SHARED,
                     store->fd_, 0);
  if (map == MAP_FAILED) {
    return util::make_error(util::ErrorCode::kIo,
                            "mmap: " + std::string(std::strerror(errno)));
  }
  store->map_ = static_cast<uint8_t*>(map);
  store->file_bytes_ = target;

  // Geometry derives from file size alone: half (rounded to a power of
  // two of 512 B slots) for the slot table, the rest for the slab.
  std::size_t slots = kMinSlots;
  while (slots * 2 * kSlotBytes <= (target - kHeaderBytes) / 2) slots *= 2;
  store->slot_count_ = slots;
  store->slab_off_ = kHeaderBytes + slots * kSlotBytes;
  store->slab_bytes_ = target - store->slab_off_;
  store->file_bytes_gauge_.set(static_cast<double>(target));

  if (existing == 0) {
    store->cold_init("fresh file", wall_now);
  } else if (existing != target) {
    store->cold_init("size mismatch", wall_now);
  } else {
    FileHeader hdr{};
    std::memcpy(&hdr, store->map_, sizeof hdr);
    const uint32_t want_crc =
        util::crc32({store->map_, kHeaderCrcOffset});
    if (std::memcmp(hdr.magic, kMagic, sizeof kMagic) != 0) {
      store->cold_init("bad magic", wall_now);
    } else if (hdr.version != kFormatVersion) {
      store->cold_init("bad version", wall_now);
    } else if (hdr.crc != want_crc) {
      store->cold_init("bad header crc", wall_now);
    } else if (hdr.slot_bytes != kSlotBytes ||
               hdr.slot_count != store->slot_count_ ||
               hdr.slab_bytes != store->slab_bytes_ ||
               hdr.file_bytes != target ||
               hdr.slab_used > hdr.slab_bytes) {
      store->cold_init("bad geometry", wall_now);
    } else {
      store->slab_used_ = hdr.slab_used;
      store->wall_epoch_us_ = hdr.wall_epoch_us;
      store->load_image(wall_now);
    }
  }
  return store;
}

uint8_t* MmapCacheStore::slot_ptr(std::size_t index) const {
  return map_ + kHeaderBytes + index * kSlotBytes;
}

void MmapCacheStore::write_header() {
  FileHeader hdr{};
  std::memcpy(hdr.magic, kMagic, sizeof kMagic);
  hdr.version = kFormatVersion;
  hdr.slot_bytes = kSlotBytes;
  hdr.slot_count = slot_count_;
  hdr.slab_bytes = slab_bytes_;
  hdr.slab_used = slab_used_;
  hdr.wall_epoch_us = wall_epoch_us_;
  hdr.file_bytes = file_bytes_;
  std::memcpy(map_, &hdr, sizeof hdr);
  const uint32_t crc = util::crc32({map_, kHeaderCrcOffset});
  std::memcpy(map_ + kHeaderCrcOffset, &crc, sizeof crc);
}

void MmapCacheStore::reset_image(int64_t wall_now) {
  std::memset(map_ + kHeaderBytes, 0, slot_count_ * kSlotBytes);
  slab_used_ = 0;
  slots_used_ = 0;
  lru_tick_ = 0;
  // Anchor: wall_now corresponds to the adopting runtime's options_.now,
  // so SimTime 0 maps to wall_now - now.
  wall_epoch_us_ = wall_now - options_.now;
  write_header();
  slots_used_gauge_.set(0);
}

void MmapCacheStore::cold_init(const std::string& reason, int64_t wall_now) {
  reset_image(wall_now);
  load_.cold = true;
  load_.cold_reason = reason;
  ++cold_starts_;
}

void MmapCacheStore::load_image(int64_t wall_now) {
  // Every persisted SimTime is in the *writer's* clock.  Its wall time is
  // old_epoch + t; in the adopting runtime's clock that instant is
  // t - delta with delta = new_epoch - old_epoch — which includes exactly
  // the downtime, so TTLs keep decaying while the process is dead.
  const int64_t new_epoch = wall_now - options_.now;
  const int64_t delta = std::max<int64_t>(0, new_epoch - wall_epoch_us_);

  struct Loaded {
    server::CacheKey key;
    server::CacheEntry entry;
    uint64_t tick = 0;
  };
  std::vector<Loaded> loaded;
  std::vector<std::pair<dns::Name, uint32_t>> zones;

  for (std::size_t i = 0; i < slot_count_; ++i) {
    const uint8_t* slot = slot_ptr(i);
    SlotHeader sh{};
    std::memcpy(&sh, slot, sizeof sh);
    if (sh.state != kUsed && sh.state != kZone) continue;
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, slot + kSlotCrcOffset, sizeof stored_crc);
    if (stored_crc != slot_crc(slot) || sh.name_len == 0 ||
        sh.name_len > kMaxNameText) {
      ++load_.torn_dropped;
      continue;
    }
    const std::string text(reinterpret_cast<const char*>(slot + kNameOffset),
                           sh.name_len);
    auto name = dns::Name::parse(text);
    if (!name.ok()) {
      ++load_.torn_dropped;
      continue;
    }

    if (sh.state == kZone) {
      zones.emplace_back(std::move(name).value(), sh.ttl);
      ++load_.zones_loaded;
      continue;
    }

    server::CacheEntry entry;
    entry.negative = sh.negative != 0;
    entry.negative_rcode = static_cast<dns::Rcode>(sh.negative_rcode);
    entry.inserted_at = sh.inserted_at - delta;
    entry.expiry = sh.expiry - delta;
    entry.rrset.name = name.value();
    entry.rrset.type = static_cast<dns::RRType>(sh.rrtype);
    entry.rrset.rrclass = static_cast<dns::RRClass>(sh.rrclass);
    entry.rrset.ttl = sh.ttl;
    if (sh.slab_len > 0) {
      if (sh.slab_off > slab_bytes_ || sh.slab_len > slab_bytes_ ||
          sh.slab_off + sh.slab_len > slab_used_) {
        ++load_.torn_dropped;
        continue;
      }
      std::span<const uint8_t> payload{map_ + slab_off_ + sh.slab_off,
                                       sh.slab_len};
      if (util::crc32(payload) != sh.slab_crc) {
        ++load_.torn_dropped;
        continue;
      }
      dns::ByteReader reader(payload);
      bool bad = false;
      while (!reader.at_end()) {
        auto rr = dns::decode_record(reader);
        if (!rr.ok()) {
          bad = true;
          break;
        }
        entry.rrset.rdatas.push_back(std::move(rr.value().rdata));
      }
      if (bad || entry.rrset.rdatas.empty()) {
        ++load_.torn_dropped;
        continue;
      }
    }
    if (sh.has_lease != 0) {
      const net::SimTime lease_expiry = sh.lease_expiry - delta;
      if (!options_.keep_leases) {
        ++load_.leases_demoted;
      } else if (lease_expiry > options_.now) {
        entry.lease = server::LeaseState{
            lease_expiry, net::Endpoint{sh.lease_ip, sh.lease_port}};
      }
    }
    if (!entry.fresh(options_.now)) {
      ++load_.expired_dropped;
      continue;
    }
    uint64_t tick = 0;
    std::memcpy(&tick, slot + kTickOffset, sizeof tick);
    loaded.push_back(Loaded{
        server::CacheKey{entry.rrset.name, entry.rrset.type},
        std::move(entry), tick});
  }

  // Adopt into the heap structures in LRU-tick order: pushing each entry
  // to the LRU front in ascending-tick order leaves the most recently
  // used entry at the front, reproducing the pre-restart eviction order.
  std::stable_sort(loaded.begin(), loaded.end(),
                   [](const Loaded& a, const Loaded& b) {
                     return a.tick < b.tick;
                   });
  for (Loaded& item : loaded) {
    lru_.push_front(item.key);
    entries_.emplace(std::move(item.key),
                     Node{std::move(item.entry), lru_.begin()});
  }
  for (auto& [zone, serial] : zones) zone_serials_[zone] = serial;

  load_.cold = false;
  load_.warm_entries = entries_.size();
  load_.downtime_us = delta;
  warm_entries_gauge_.set(static_cast<double>(entries_.size()));

  // Rewrite the image against the new epoch: all later commits stamp
  // new-clock times, so the old-epoch slots must not survive alongside
  // them.  The rewrite also compacts the slab and clears tombstones.
  reset_image(wall_now);
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    persist_entry(*it, entries_.at(*it).entry);
  }
  for (const auto& [zone, serial] : zone_serials_) {
    persist_zone(zone, serial);
  }
}

std::size_t MmapCacheStore::probe(uint64_t key_hash, uint32_t want_state,
                                  std::string_view name_text, uint16_t rrtype,
                                  std::size_t* insert_at) const {
  const std::size_t mask = slot_count_ - 1;
  bool have_insert = false;
  for (std::size_t i = 0; i < slot_count_; ++i) {
    const std::size_t idx = (key_hash + i) & mask;
    const uint8_t* slot = slot_ptr(idx);
    SlotHeader sh{};
    std::memcpy(&sh, slot, sizeof sh);
    if (sh.state == kFree) {
      if (insert_at != nullptr && !have_insert) *insert_at = idx;
      return slot_count_;
    }
    if (sh.state == kDead) {
      if (insert_at != nullptr && !have_insert) {
        *insert_at = idx;
        have_insert = true;
      }
      continue;
    }
    if (sh.state == want_state && sh.key_hash == key_hash &&
        sh.rrtype == rrtype && sh.name_len == name_text.size() &&
        std::memcmp(slot + kNameOffset, name_text.data(),
                    name_text.size()) == 0) {
      return idx;
    }
  }
  if (insert_at != nullptr && !have_insert) *insert_at = slot_count_;
  return slot_count_;
}

bool MmapCacheStore::slab_append(std::span<const uint8_t> payload,
                                 uint64_t* off) {
  if (payload.size() > slab_bytes_) return false;
  if (slab_used_ + payload.size() > slab_bytes_) {
    compact_slab();
    if (slab_used_ + payload.size() > slab_bytes_) return false;
  }
  *off = slab_used_;
  std::memcpy(map_ + slab_off_ + slab_used_, payload.data(), payload.size());
  slab_used_ += payload.size();
  write_header();
  return true;
}

void MmapCacheStore::compact_slab() {
  struct Region {
    std::size_t slot;
    uint64_t off;
    uint32_t len;
  };
  std::vector<Region> regions;
  for (std::size_t i = 0; i < slot_count_; ++i) {
    SlotHeader sh{};
    std::memcpy(&sh, slot_ptr(i), sizeof sh);
    if (sh.state == kUsed && sh.slab_len > 0) {
      regions.push_back(Region{i, sh.slab_off, sh.slab_len});
    }
  }
  std::sort(regions.begin(), regions.end(),
            [](const Region& a, const Region& b) { return a.off < b.off; });
  uint64_t used = 0;
  for (const Region& r : regions) {
    if (r.off != used) {
      std::memmove(map_ + slab_off_ + used, map_ + slab_off_ + r.off, r.len);
      uint8_t* slot = slot_ptr(r.slot);
      std::array<uint8_t, kSlotBytes> image;
      std::memcpy(image.data(), slot, kSlotBytes);
      SlotHeader sh{};
      std::memcpy(&sh, image.data(), sizeof sh);
      sh.slab_off = used;
      std::memcpy(image.data(), &sh, sizeof sh);
      const uint32_t crc = slot_crc(image.data());
      std::memcpy(image.data() + kSlotCrcOffset, &crc, sizeof crc);
      write_slot(r.slot, image);
    }
    used += r.len;
  }
  slab_used_ = used;
  write_header();
  ++compactions_;
}

void MmapCacheStore::write_slot(std::size_t index,
                                std::span<const uint8_t> image) {
  std::memcpy(slot_ptr(index), image.data(), kSlotBytes);
}

void MmapCacheStore::kill_slot(std::size_t index) {
  uint8_t* slot = slot_ptr(index);
  std::array<uint8_t, kSlotBytes> image;
  std::memcpy(image.data(), slot, kSlotBytes);
  SlotHeader sh{};
  std::memcpy(&sh, image.data(), sizeof sh);
  sh.state = kDead;
  std::memcpy(image.data(), &sh, sizeof sh);
  const uint32_t crc = slot_crc(image.data());
  std::memcpy(image.data() + kSlotCrcOffset, &crc, sizeof crc);
  write_slot(index, image);
  if (slots_used_ > 0) --slots_used_;
  slots_used_gauge_.set(static_cast<double>(slots_used_));
}

void MmapCacheStore::persist_entry(const server::CacheKey& key,
                                   const server::CacheEntry& entry) {
  const std::string text = lower(key.name.to_string());
  if (text.empty() || text.size() > kMaxNameText) return;
  const uint64_t hash = server::CacheKeyHash{}(key);
  const auto rrtype = static_cast<uint16_t>(key.type);

  std::size_t insert_at = slot_count_;
  const std::size_t existing = probe(hash, kUsed, text, rrtype, &insert_at);
  const std::size_t target = existing != slot_count_ ? existing : insert_at;
  if (target == slot_count_) {
    ++persist_failed_table_;
    return;
  }

  SlotHeader sh{};
  sh.state = kUsed;
  sh.key_hash = hash;
  sh.inserted_at = entry.inserted_at;
  sh.expiry = entry.expiry;
  sh.ttl = entry.rrset.ttl;
  sh.name_len = static_cast<uint16_t>(text.size());
  sh.rrtype = rrtype;
  sh.rrclass = static_cast<uint16_t>(entry.rrset.rrclass);
  sh.negative = entry.negative ? 1 : 0;
  sh.negative_rcode = static_cast<uint8_t>(entry.negative_rcode);
  if (entry.lease.has_value()) {
    sh.has_lease = 1;
    sh.lease_expiry = entry.lease->expiry;
    sh.lease_ip = entry.lease->authority.ip;
    sh.lease_port = entry.lease->authority.port;
  }

  if (!entry.negative && !entry.rrset.empty()) {
    dns::ByteWriter writer;
    writer.begin_message();
    dns::encode_rrset(entry.rrset, writer);
    const std::span<const uint8_t> payload = writer.message();
    uint64_t off = 0;
    if (!slab_append(payload, &off)) {
      // Slab exhausted even after compaction: the entry stays heap-only.
      // If a previous image of it exists, kill that image — serving a
      // stale persisted copy after a restart would be worse than a miss.
      ++persist_failed_slab_;
      if (existing != slot_count_) kill_slot(existing);
      return;
    }
    sh.slab_off = off;
    sh.slab_len = static_cast<uint32_t>(payload.size());
    sh.slab_crc = util::crc32(payload);
  }

  std::array<uint8_t, kSlotBytes> image{};
  std::memcpy(image.data(), &sh, sizeof sh);
  std::memcpy(image.data() + kNameOffset, text.data(), text.size());
  const uint64_t tick = ++lru_tick_;
  std::memcpy(image.data() + kTickOffset, &tick, sizeof tick);
  const uint32_t crc = slot_crc(image.data());
  std::memcpy(image.data() + kSlotCrcOffset, &crc, sizeof crc);
  write_slot(target, image);
  if (existing == slot_count_) {
    ++slots_used_;
    slots_used_gauge_.set(static_cast<double>(slots_used_));
  }
}

void MmapCacheStore::persist_zone(const dns::Name& zone, uint32_t serial) {
  const std::string text = lower(zone.to_string());
  if (text.empty() || text.size() > kMaxNameText) return;
  const uint64_t hash = zone_slot_hash(zone);

  std::size_t insert_at = slot_count_;
  const std::size_t existing = probe(hash, kZone, text, kZoneType, &insert_at);
  const std::size_t target = existing != slot_count_ ? existing : insert_at;
  if (target == slot_count_) {
    ++persist_failed_table_;
    return;
  }

  SlotHeader sh{};
  sh.state = kZone;
  sh.key_hash = hash;
  sh.ttl = serial;
  sh.name_len = static_cast<uint16_t>(text.size());
  sh.rrtype = kZoneType;

  std::array<uint8_t, kSlotBytes> image{};
  std::memcpy(image.data(), &sh, sizeof sh);
  std::memcpy(image.data() + kNameOffset, text.data(), text.size());
  const uint32_t crc = slot_crc(image.data());
  std::memcpy(image.data() + kSlotCrcOffset, &crc, sizeof crc);
  write_slot(target, image);
  if (existing == slot_count_) {
    ++slots_used_;
    slots_used_gauge_.set(static_cast<double>(slots_used_));
  }
}

void MmapCacheStore::commit(const server::CacheKey& key) {
  const server::CacheEntry* entry = HeapCacheStore::find(key);
  if (entry == nullptr) return;
  persist_entry(key, *entry);
}

bool MmapCacheStore::erase(const server::CacheKey& key) {
  const std::string text = lower(key.name.to_string());
  const uint64_t hash = server::CacheKeyHash{}(key);
  if (!HeapCacheStore::erase(key)) return false;
  const std::size_t idx = probe(hash, kUsed, text,
                                static_cast<uint16_t>(key.type), nullptr);
  if (idx != slot_count_) kill_slot(idx);
  return true;
}

void MmapCacheStore::touch(const server::CacheKey& key) {
  HeapCacheStore::touch(key);
  const std::string text = lower(key.name.to_string());
  const uint64_t hash = server::CacheKeyHash{}(key);
  const std::size_t idx = probe(hash, kUsed, text,
                                static_cast<uint16_t>(key.type), nullptr);
  if (idx == slot_count_) return;
  // Outside the CRC-covered range by design: the per-hit cost is one
  // probe plus one u64 store, no checksum recomputation.
  const uint64_t tick = ++lru_tick_;
  std::memcpy(slot_ptr(idx) + kTickOffset, &tick, sizeof tick);
}

void MmapCacheStore::put_zone_serial(const dns::Name& zone, uint32_t serial) {
  HeapCacheStore::put_zone_serial(zone, serial);
  persist_zone(zone, serial);
}

void MmapCacheStore::flush() {
  if (map_ != nullptr) ::msync(map_, file_bytes_, MS_ASYNC);
}

}  // namespace dnscup::cachestore

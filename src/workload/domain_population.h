// Synthetic Web-domain populations calibrated to the paper's §3
// measurement study (the IRCache-derived collection we cannot obtain).
//
// The population reproduces the published statistics:
//  * regular domains drawn from the five major TLD groups (.com .net .org
//    .edu/.gov and country domains) plus small .biz/.coop tails, 3000 per
//    major group (§3.1), with power-law request counts (Figure 1);
//  * TTLs spanning the five classes of Table 1, with the mass between one
//    hour and one day (§1, citing Jung et al.);
//  * CDN domains split between an Akamai-like provider (TTL 20 s) and a
//    Speedera-like provider (TTL 120 s), all TTLs <= 300 s (§3.2);
//  * Dyn domains with TTLs bounded by 300 s.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rdata.h"
#include "util/rng.h"

namespace dnscup::workload {

enum class DomainCategory { kRegular, kCdn, kDyn };

const char* to_string(DomainCategory category);

struct DomainInfo {
  dns::Name name;
  std::string tld;           ///< "com", "net", "org", "edu", "country", ...
  DomainCategory category = DomainCategory::kRegular;
  std::string provider;      ///< "akamai" / "speedera" / "dyndns" / ""
  uint32_t ttl = 3600;       ///< seconds
  int ttl_class = 4;         ///< 1..5 per Table 1
  uint64_t request_count = 0;  ///< popularity weight (Figure 1)
  dns::Ipv4 initial_address;
};

/// Table 1 TTL-class boundaries; returns 1..5.
int ttl_class_of(uint32_t ttl_seconds);

struct PopulationConfig {
  std::size_t regular_per_group = 3000;  ///< §3.1: 3000 per major group
  std::size_t cdn_domains = 600;
  std::size_t dyn_domains = 600;
  double request_pareto_alpha = 1.1;     ///< request-count tail (Figure 1)
  double request_pareto_scale = 2.0;
  uint64_t seed = 1;
};

class DomainPopulation {
 public:
  static DomainPopulation generate(const PopulationConfig& config);

  const std::vector<DomainInfo>& domains() const { return domains_; }
  std::size_t size() const { return domains_.size(); }
  const DomainInfo& operator[](std::size_t i) const { return domains_[i]; }

  std::vector<const DomainInfo*> by_category(DomainCategory category) const;
  std::vector<const DomainInfo*> by_class(int ttl_class) const;
  std::vector<const DomainInfo*> by_tld(const std::string& tld) const;

 private:
  std::vector<DomainInfo> domains_;
};

}  // namespace dnscup::workload

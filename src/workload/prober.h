// The §3.2 measurement harness: periodically resolves every domain at its
// TTL class's sampling resolution for the class's duration (Table 1),
// detects DN2IP mapping changes between consecutive probes, computes the
// relative change frequency, and classifies each changed domain's dominant
// cause from the observed address evolution:
//
//   new address set is a superset of the old  -> address increase;
//   new primary address was observed before   -> rotation;
//   otherwise                                  -> relocation (physical).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "workload/change_model.h"
#include "workload/domain_population.h"

namespace dnscup::workload {

struct ProbeClassParams {
  int ttl_class;
  uint32_t ttl_lo;       ///< inclusive, seconds
  uint32_t ttl_hi;       ///< exclusive, 0 = unbounded
  double resolution_s;   ///< probe interval
  double duration_s;     ///< experiment length
};

/// Table 1 of the paper.
extern const std::array<ProbeClassParams, 5> kTable1;

const ProbeClassParams& probe_params_for_class(int ttl_class);

struct ProbeResult {
  std::size_t domain_index = 0;
  int ttl_class = 4;
  DomainCategory category = DomainCategory::kRegular;
  std::string provider;
  std::size_t probes = 0;
  std::size_t changes_detected = 0;
  ChangeCause classified_cause = ChangeCause::kNone;

  /// Relative change frequency: detected changes / probes (§3.2).
  double change_frequency() const {
    return probes == 0 ? 0.0
                       : static_cast<double>(changes_detected) /
                             static_cast<double>(probes);
  }
};

struct ProberConfig {
  uint64_t seed = 7;
  /// Scales every class duration (1.0 = the paper's full 1-day..1-month
  /// campaign; benches use a fraction to stay fast).
  double duration_scale = 1.0;
  /// Floor on probes per domain so scaled-down campaigns keep enough
  /// samples in the slow classes (class 5 has only 30 probes even at
  /// full scale).
  std::size_t min_probes = 10;
};

/// Runs the measurement campaign over a population.
std::vector<ProbeResult> run_probing_campaign(
    const DomainPopulation& population, const ProberConfig& config);

}  // namespace dnscup::workload

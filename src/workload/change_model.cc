#include "workload/change_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.h"

namespace dnscup::workload {

const char* to_string(ChangeCause cause) {
  switch (cause) {
    case ChangeCause::kNone: return "none";
    case ChangeCause::kRelocation: return "relocation";
    case ChangeCause::kAddressIncrease: return "address-increase";
    case ChangeCause::kRotation: return "rotation";
  }
  return "?";
}

namespace {

struct ClassCalibration {
  double change_fraction;   ///< share of domains that change at all
  double freq_mode;         ///< change-frequency cluster centre
  double freq_spread;       ///< lognormal-ish spread around the mode
  double physical_share;    ///< relocations among changed domains
  double increase_share;    ///< address-increase among changed domains
};

// Indexed by TTL class 1..5 (entry 0 unused).  Values from §3.2 / Fig 2.
constexpr ClassCalibration kRegularCalibration[6] = {
    {},
    {0.70, 0.10, 0.6, 0.05, 0.15},   // class 1: mostly rotation near 10%
    {0.20, 0.35, 0.7, 0.05, 0.10},   // class 2: few changers, high freqs
    {0.05, 0.60, 0.8, 0.40, 0.10},   // class 3: mean ≈ 3% overall
    {0.05, 0.02, 0.8, 0.75, 0.10},   // class 4: mean ≈ 0.1%
    {0.05, 0.04, 0.6, 0.75, 0.10},   // class 5: mean ≈ 0.2%, < 10%
};

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

/// Draws a change frequency clustered around `mode` with the given spread
/// (log-normal, clamped to (0, 1]).
double draw_frequency(util::Rng& rng, double mode, double spread) {
  const double ln = rng.normal(std::log(mode), spread);
  return std::clamp(std::exp(ln), 1e-4, 1.0);
}

ChangeCause draw_cause(util::Rng& rng, double physical_share,
                       double increase_share) {
  const double x = rng.uniform_real(0.0, 1.0);
  if (x < physical_share) return ChangeCause::kRelocation;
  if (x < physical_share + increase_share) {
    return ChangeCause::kAddressIncrease;
  }
  return ChangeCause::kRotation;
}

}  // namespace

ChangeBehavior assign_change_behavior(const DomainInfo& domain,
                                      util::Rng& rng) {
  ChangeBehavior behavior;

  if (domain.category == DomainCategory::kCdn) {
    behavior.changes = true;
    behavior.cause = ChangeCause::kRotation;
    if (domain.provider == "akamai") {
      // §3.2: Akamai-served names change with frequency around 10%.
      behavior.per_probe_change_prob =
          clamp01(draw_frequency(rng, 0.10, 0.25));
    } else {
      // Speedera-served names change nearly every probe.
      behavior.per_probe_change_prob =
          clamp01(rng.uniform_real(0.90, 1.0));
    }
    return behavior;
  }

  if (domain.category == DomainCategory::kDyn) {
    // §3.2: Dyn domains change rarely — 0.4% in class 2, near zero below.
    if (domain.ttl_class >= 2 && rng.chance(0.30)) {
      behavior.changes = true;
      behavior.cause = ChangeCause::kRelocation;  // DHCP renumbering
      behavior.per_probe_change_prob = 0.004 / 0.30;  // population mean 0.4%
    }
    return behavior;
  }

  const ClassCalibration& cal = kRegularCalibration[domain.ttl_class];
  if (!rng.chance(cal.change_fraction)) return behavior;
  behavior.changes = true;
  behavior.per_probe_change_prob =
      draw_frequency(rng, cal.freq_mode, cal.freq_spread);
  behavior.cause = draw_cause(rng, cal.physical_share, cal.increase_share);
  return behavior;
}

DomainChangeProcess::DomainChangeProcess(const DomainInfo& domain,
                                         ChangeBehavior behavior,
                                         double probe_resolution_s,
                                         uint64_t seed)
    : behavior_(behavior), rng_(seed) {
  DNSCUP_ASSERT(probe_resolution_s > 0.0);
  addresses_.push_back(domain.initial_address);

  if (behavior_.changes && behavior_.per_probe_change_prob > 0.0) {
    // Choose the Poisson rate so the *detection* probability per probe
    // interval equals the calibrated change frequency: a prober sees at
    // most one change per interval, so P(detect) = 1 - exp(-rate * res).
    const double p = std::min(behavior_.per_probe_change_prob, 0.98);
    rate_ = -std::log(1.0 - p) / probe_resolution_s;
    next_event_ = rng_.exponential(rate_);
  } else {
    next_event_ = std::numeric_limits<double>::infinity();
  }

  if (behavior_.cause == ChangeCause::kRotation) {
    // CDN-style pool: the initial address plus rotation targets, so probes
    // see previously-observed addresses recur.  Hot rotators (Speedera-like,
    // changing nearly every probe) draw from a larger pool, as multiple
    // rotations between two probes would otherwise frequently land back on
    // the same address and mask the change.
    const bool hot = behavior_.per_probe_change_prob >= 0.5;
    const auto pool = static_cast<std::size_t>(
        hot ? rng_.uniform_int(10, 18) : rng_.uniform_int(3, 8));
    rotation_pool_.push_back(domain.initial_address);
    for (std::size_t i = 1; i < pool; ++i) {
      rotation_pool_.push_back(
          dns::Ipv4{domain.initial_address.addr + static_cast<uint32_t>(i)});
    }
  }
}

void DomainChangeProcess::advance_to(double t) {
  DNSCUP_ASSERT(t >= now_);
  while (next_event_ <= t) {
    now_ = next_event_;
    apply_one_change();
    ++changes_;
    next_event_ = now_ + rng_.exponential(rate_);
  }
  now_ = t;
}

void DomainChangeProcess::apply_one_change() {
  switch (behavior_.cause) {
    case ChangeCause::kRelocation: {
      // Fresh address, never seen before.
      const uint32_t fresh = addresses_.front().addr + 0x00010000u +
                             static_cast<uint32_t>(rng_.uniform_int(1, 255));
      addresses_.assign(1, dns::Ipv4{fresh});
      break;
    }
    case ChangeCause::kAddressIncrease: {
      // Grow the set (bounded so it cannot grow without limit).
      if (addresses_.size() < 12) {
        addresses_.push_back(
            dns::Ipv4{addresses_.back().addr +
                      static_cast<uint32_t>(rng_.uniform_int(1, 16))});
      } else {
        std::rotate(addresses_.begin(), addresses_.begin() + 1,
                    addresses_.end());
      }
      break;
    }
    case ChangeCause::kRotation: {
      rotation_index_ = (rotation_index_ + 1 +
                         static_cast<std::size_t>(rng_.uniform_int(
                             0, static_cast<int64_t>(
                                    rotation_pool_.size() - 2)))) %
                        rotation_pool_.size();
      addresses_.assign(1, rotation_pool_[rotation_index_]);
      break;
    }
    case ChangeCause::kNone:
      DNSCUP_ASSERT(false && "change event on a static domain");
  }
}

}  // namespace dnscup::workload

#include "workload/domain_population.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace dnscup::workload {

const char* to_string(DomainCategory category) {
  switch (category) {
    case DomainCategory::kRegular: return "regular";
    case DomainCategory::kCdn: return "cdn";
    case DomainCategory::kDyn: return "dyn";
  }
  return "?";
}

int ttl_class_of(uint32_t ttl_seconds) {
  if (ttl_seconds < 60) return 1;
  if (ttl_seconds < 300) return 2;
  if (ttl_seconds < 3600) return 3;
  if (ttl_seconds < 86400) return 4;
  return 5;
}

namespace {

struct TldGroup {
  const char* label;
  const char* suffix;  ///< actual DNS suffix used in generated names
  double weight;       ///< share of the regular population (Figure 1 mix)
};

// The five major groups of §3.1 plus the small .biz/.coop tails visible in
// Figure 1.  "country" is materialized as a rotating set of ccTLDs.
constexpr TldGroup kMajorGroups[] = {
    {"com", "com", 1.0}, {"net", "net", 1.0},     {"org", "org", 1.0},
    {"edu", "edu", 1.0}, {"country", "uk", 1.0},
};
constexpr const char* kCountrySuffixes[] = {"uk", "de", "jp", "cn", "fr",
                                            "kr", "ca", "au", "it", "nl"};
constexpr TldGroup kTailGroups[] = {
    {"gov", "gov", 0.06}, {"biz", "biz", 0.04}, {"coop", "coop", 0.01},
};

// TTL values regular domains actually use, weighted so that the bulk sits
// between one hour and one day (§1; Jung et al.): classes 1..5 get about
// 2% / 5% / 18% / 55% / 20% of domains.
struct TtlChoice {
  uint32_t ttl;
  double weight;
};
constexpr TtlChoice kRegularTtls[] = {
    {30, 0.02},                                    // class 1
    {120, 0.03},    {240, 0.02},                   // class 2
    {600, 0.08},    {1800, 0.10},                  // class 3
    {3600, 0.25},   {14400, 0.15}, {43200, 0.15},  // class 4
    {86400, 0.15},  {172800, 0.05},                // class 5
};

uint32_t pick_regular_ttl(util::Rng& rng) {
  double total = 0.0;
  for (const auto& c : kRegularTtls) total += c.weight;
  double x = rng.uniform_real(0.0, total);
  for (const auto& c : kRegularTtls) {
    if (x < c.weight) return c.ttl;
    x -= c.weight;
  }
  return kRegularTtls[std::size(kRegularTtls) - 1].ttl;
}

dns::Ipv4 random_address(util::Rng& rng) {
  // Public-looking addresses, avoiding 0/8, 10/8, 127/8.
  const auto a = static_cast<uint32_t>(rng.uniform_int(11, 223));
  const auto b = static_cast<uint32_t>(rng.uniform_int(0, 255));
  const auto c = static_cast<uint32_t>(rng.uniform_int(0, 255));
  const auto d = static_cast<uint32_t>(rng.uniform_int(1, 254));
  return dns::Ipv4{(a << 24) | (b << 16) | (c << 8) | d};
}

uint64_t pareto_requests(util::Rng& rng, const PopulationConfig& config) {
  const double v = rng.pareto(config.request_pareto_scale,
                              config.request_pareto_alpha);
  return static_cast<uint64_t>(std::min(v, 1e6));
}

dns::Name make_name(const char* stem, std::size_t index,
                    const std::string& suffix) {
  return dns::Name::from_labels(
      {"www", std::string(stem) + std::to_string(index), suffix});
}

}  // namespace

DomainPopulation DomainPopulation::generate(const PopulationConfig& config) {
  util::Rng rng(config.seed);
  DomainPopulation population;
  auto& domains = population.domains_;

  // Regular domains: 3000 per major group plus the small tails.
  std::size_t country_idx = 0;
  for (const auto& group : kMajorGroups) {
    for (std::size_t i = 0; i < config.regular_per_group; ++i) {
      DomainInfo info;
      info.tld = group.label;
      std::string suffix = group.suffix;
      if (std::string_view(group.label) == "country") {
        suffix = kCountrySuffixes[country_idx++ % std::size(kCountrySuffixes)];
      }
      info.name = make_name("site", i, suffix);
      info.category = DomainCategory::kRegular;
      info.ttl = pick_regular_ttl(rng);
      info.ttl_class = ttl_class_of(info.ttl);
      info.request_count = pareto_requests(rng, config);
      info.initial_address = random_address(rng);
      domains.push_back(std::move(info));
    }
  }
  for (const auto& group : kTailGroups) {
    const auto count = static_cast<std::size_t>(
        static_cast<double>(config.regular_per_group) * group.weight);
    for (std::size_t i = 0; i < count; ++i) {
      DomainInfo info;
      info.tld = group.label;
      info.name = make_name("site", i, group.suffix);
      info.category = DomainCategory::kRegular;
      info.ttl = pick_regular_ttl(rng);
      info.ttl_class = ttl_class_of(info.ttl);
      info.request_count = pareto_requests(rng, config);
      info.initial_address = random_address(rng);
      domains.push_back(std::move(info));
    }
  }

  // CDN domains: two providers dominate (§3.2) — Akamai-like at TTL 20 s
  // and Speedera-like at TTL 120 s, roughly half each.
  for (std::size_t i = 0; i < config.cdn_domains; ++i) {
    DomainInfo info;
    const bool akamai = (i % 2) == 0;
    info.provider = akamai ? "akamai" : "speedera";
    info.ttl = akamai ? 20 : 120;
    info.ttl_class = ttl_class_of(info.ttl);
    info.tld = "com";
    info.name = make_name(akamai ? "cdn-ak" : "cdn-sp", i, "com");
    info.category = DomainCategory::kCdn;
    info.request_count = pareto_requests(rng, config) * 4;  // CDNs are hot
    info.initial_address = random_address(rng);
    domains.push_back(std::move(info));
  }

  // Dyn domains: TTLs bounded by 300 s (§3.2).
  for (std::size_t i = 0; i < config.dyn_domains; ++i) {
    DomainInfo info;
    info.provider = "dyndns";
    info.ttl = (i % 3 == 0) ? 60 : ((i % 3 == 1) ? 120 : 240);
    info.ttl_class = ttl_class_of(info.ttl);
    info.tld = "org";
    info.name = make_name("dyn", i, "org");
    info.category = DomainCategory::kDyn;
    info.request_count = 1 + pareto_requests(rng, config) / 4;
    info.initial_address = random_address(rng);
    domains.push_back(std::move(info));
  }

  return population;
}

std::vector<const DomainInfo*> DomainPopulation::by_category(
    DomainCategory category) const {
  std::vector<const DomainInfo*> out;
  for (const auto& d : domains_) {
    if (d.category == category) out.push_back(&d);
  }
  return out;
}

std::vector<const DomainInfo*> DomainPopulation::by_class(
    int ttl_class) const {
  std::vector<const DomainInfo*> out;
  for (const auto& d : domains_) {
    if (d.ttl_class == ttl_class) out.push_back(&d);
  }
  return out;
}

std::vector<const DomainInfo*> DomainPopulation::by_tld(
    const std::string& tld) const {
  std::vector<const DomainInfo*> out;
  for (const auto& d : domains_) {
    if (d.tld == tld) out.push_back(&d);
  }
  return out;
}

}  // namespace dnscup::workload

// DN2IP change processes, calibrated to the paper's §3.2 findings.
//
// Each domain gets a ChangeBehavior: whether it ever changes, its per-probe
// change probability (what the prober measures as "change frequency"), and
// the dominant cause.  The three causes of §3.2 are modelled explicitly:
//
//   relocation       — the domain moves to a fresh address (physical);
//   address increase — the address set grows (logical);
//   rotation         — the active address rotates around a pool (logical,
//                      the CDN load-balancing pattern).
//
// Calibration targets (paper Figures 2(a)-(f) and the §3.2 text):
//   class 1: ~70% of domains change; changed domains cluster near 10%;
//            mean ≈ 10%; mostly rotation.
//   class 2: ~20% change; changed domains cluster near 80%; mean ≈ 8%.
//   class 3: ~95% intact; mean ≈ 3%; ~40% of changes physical.
//   class 4: ~95% intact; mean ≈ 0.1%; majority physical.
//   class 5: ~95% intact; mean ≈ 0.2%, all below 10%; majority physical.
//   CDN/akamai ≈ 10%, CDN/speedera ≈ 100%, Dyn ≈ 0.4% (class 2+) / ~0.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/rdata.h"
#include "util/rng.h"
#include "workload/domain_population.h"

namespace dnscup::workload {

enum class ChangeCause { kNone, kRelocation, kAddressIncrease, kRotation };

const char* to_string(ChangeCause cause);

struct ChangeBehavior {
  bool changes = false;
  double per_probe_change_prob = 0.0;  ///< at the class's probe resolution
  ChangeCause cause = ChangeCause::kNone;
};

/// Draws a behaviour for a domain per the calibration table above.
ChangeBehavior assign_change_behavior(const DomainInfo& domain,
                                      util::Rng& rng);

/// Continuous-time change process for one domain.  Change events arrive
/// Poisson with rate per_probe_change_prob / probe_resolution; each event
/// mutates the address set per the domain's cause.
class DomainChangeProcess {
 public:
  DomainChangeProcess(const DomainInfo& domain, ChangeBehavior behavior,
                      double probe_resolution_s, uint64_t seed);

  /// Applies all change events up to absolute time `t` seconds.
  void advance_to(double t);

  /// Time of the next scheduled change event (infinity when static).
  double next_change_at() const { return next_event_; }

  const std::vector<dns::Ipv4>& addresses() const { return addresses_; }
  dns::Ipv4 primary() const { return addresses_.front(); }

  const ChangeBehavior& behavior() const { return behavior_; }
  double change_rate_per_second() const { return rate_; }
  uint64_t changes_applied() const { return changes_; }

 private:
  void apply_one_change();

  ChangeBehavior behavior_;
  double rate_ = 0.0;
  util::Rng rng_;
  double now_ = 0.0;
  double next_event_;
  std::vector<dns::Ipv4> addresses_;
  std::vector<dns::Ipv4> rotation_pool_;
  std::size_t rotation_index_ = 0;
  uint64_t changes_ = 0;
};

}  // namespace dnscup::workload

#include "workload/prober.h"

#include <algorithm>
#include <set>

#include "util/assert.h"

namespace dnscup::workload {

const std::array<ProbeClassParams, 5> kTable1 = {{
    {1, 0, 60, 20.0, 86400.0},             // [0,60): 20 s for 1 day
    {2, 60, 300, 60.0, 3 * 86400.0},       // [60,300): 60 s for 3 days
    {3, 300, 3600, 300.0, 7 * 86400.0},    // [300,3600): 300 s for 7 days
    {4, 3600, 86400, 3600.0, 7 * 86400.0}, // [3600,86400): 1 h for 7 days
    {5, 86400, 0, 86400.0, 30 * 86400.0},  // [86400,inf): 1 d for 1 month
}};

const ProbeClassParams& probe_params_for_class(int ttl_class) {
  DNSCUP_ASSERT(ttl_class >= 1 && ttl_class <= 5);
  return kTable1[static_cast<std::size_t>(ttl_class - 1)];
}

namespace {

struct AddressSetLess {
  bool operator()(const std::vector<dns::Ipv4>& a,
                  const std::vector<dns::Ipv4>& b) const {
    return a < b;
  }
};

bool is_superset(const std::vector<dns::Ipv4>& super,
                 const std::vector<dns::Ipv4>& sub) {
  if (super.size() <= sub.size()) return false;
  for (const auto& ip : sub) {
    if (std::find(super.begin(), super.end(), ip) == super.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<ProbeResult> run_probing_campaign(
    const DomainPopulation& population, const ProberConfig& config) {
  util::Rng master(config.seed);
  std::vector<ProbeResult> results;
  results.reserve(population.size());

  for (std::size_t i = 0; i < population.size(); ++i) {
    const DomainInfo& domain = population[i];
    const ProbeClassParams& params = probe_params_for_class(domain.ttl_class);
    const double duration =
        std::max(params.duration_s * config.duration_scale,
                 static_cast<double>(config.min_probes) * params.resolution_s);

    util::Rng rng = master.fork();
    const ChangeBehavior behavior = assign_change_behavior(domain, rng);
    DomainChangeProcess process(domain, behavior, params.resolution_s,
                                rng.engine()());

    ProbeResult result;
    result.domain_index = i;
    result.ttl_class = domain.ttl_class;
    result.category = domain.category;
    result.provider = domain.provider;

    std::vector<dns::Ipv4> previous = process.addresses();
    std::set<uint32_t> seen;
    for (const auto& ip : previous) seen.insert(ip.addr);

    // Cause tallies over the whole campaign; the dominant one wins.
    std::size_t relocations = 0;
    std::size_t increases = 0;
    std::size_t rotations = 0;

    for (double t = params.resolution_s; t <= duration;
         t += params.resolution_s) {
      process.advance_to(t);
      const std::vector<dns::Ipv4>& current = process.addresses();
      ++result.probes;
      if (current != previous) {
        ++result.changes_detected;
        if (is_superset(current, previous)) {
          ++increases;
        } else if (seen.count(current.front().addr) > 0) {
          ++rotations;
        } else {
          ++relocations;
        }
        for (const auto& ip : current) seen.insert(ip.addr);
        previous = current;
      }
    }

    if (result.changes_detected > 0) {
      if (relocations >= increases && relocations >= rotations) {
        result.classified_cause = ChangeCause::kRelocation;
      } else if (increases >= rotations) {
        result.classified_cause = ChangeCause::kAddressIncrease;
      } else {
        result.classified_cause = ChangeCause::kRotation;
      }
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace dnscup::workload

#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace dnscup::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return stddev() / m;
}

double RunningStats::ci95_halfwidth() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  DNSCUP_ASSERT(bins > 0);
  DNSCUP_ASSERT(lo < hi);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<int64_t>(frac * static_cast<double>(counts_.size()));
  bin = std::clamp<int64_t>(bin, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  DNSCUP_ASSERT(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  DNSCUP_ASSERT(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

std::vector<double> Histogram::pdf() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

double percentile(std::vector<double> values, double p) {
  DNSCUP_ASSERT(!values.empty());
  DNSCUP_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double pos = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= values.size()) return values.back();
  return values[idx] * (1.0 - frac) + values[idx + 1] * frac;
}

}  // namespace dnscup::util

// Internal invariant checking that stays enabled in release builds.
//
// DNSCUP_ASSERT guards *programming errors* (broken invariants, contract
// violations inside the library).  Errors caused by untrusted input (e.g.
// malformed DNS packets) must never assert; they are reported through
// util::Result instead.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dnscup::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "DNSCUP_ASSERT failed: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}

}  // namespace dnscup::util

#if DNSCUP_ENABLE_ASSERTS
#define DNSCUP_ASSERT(expr)                                    \
  ((expr) ? static_cast<void>(0)                               \
          : ::dnscup::util::assert_fail(#expr, __FILE__, __LINE__))
#else
#define DNSCUP_ASSERT(expr) static_cast<void>(0)
#endif

// Shared integer hashing helpers.
//
// splitmix64_mix is the finalizer of the splitmix64 generator: a cheap
// full-avalanche mix, so open-addressed tables probing on the result see
// a uniform distribution regardless of the inputs' structure.  Both the
// planner's demand-table pair keys and the resolver cache key hash (heap
// unordered_map and the cachestore in-file table) funnel through it, so
// every table in the system shares one well-distributed hash.
#pragma once

#include <cstdint>

namespace dnscup::util {

constexpr uint64_t splitmix64_mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace dnscup::util

// Deterministic random number generation for simulations and workload
// synthesis.  Every simulation component takes an explicit Rng (or a seed)
// so that runs are exactly reproducible; nothing in the library reads
// entropy from the environment.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace dnscup::util {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t uniform_int(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Poisson-distributed count with the given mean.
  int64_t poisson(double mean);

  /// Pareto-distributed value with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Normally distributed value.
  double normal(double mean, double stddev);

  /// Fork a new independent stream; deterministic given this stream's state.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf distribution over ranks 1..n with exponent s, sampled via the
/// inverse-CDF on a precomputed table.  Used for domain-name popularity.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  /// Returns a rank in [0, n).  Rank 0 is the most popular item.
  std::size_t sample(Rng& rng) const;

  /// Probability mass of the given rank.
  double pmf(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace dnscup::util

#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace dnscup::util {

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  DNSCUP_ASSERT(lo <= hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  DNSCUP_ASSERT(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::exponential(double rate) {
  DNSCUP_ASSERT(rate > 0.0);
  return std::exponential_distribution<double>(rate)(engine_);
}

int64_t Rng::poisson(double mean) {
  DNSCUP_ASSERT(mean >= 0.0);
  if (mean == 0.0) return 0;
  return std::poisson_distribution<int64_t>(mean)(engine_);
}

double Rng::pareto(double xm, double alpha) {
  DNSCUP_ASSERT(xm > 0.0 && alpha > 0.0);
  const double u = uniform_real(0.0, 1.0);
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

Rng Rng::fork() { return Rng(engine_()); }

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  DNSCUP_ASSERT(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf_[rank] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform_real(0.0, 1.0);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t rank) const {
  DNSCUP_ASSERT(rank < cdf_.size());
  const double hi = cdf_[rank];
  const double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return hi - lo;
}

}  // namespace dnscup::util

// Statistics helpers used by the measurement study (Section 3), the
// Poisson-validation experiment (Figure 4) and the lease simulations
// (Figure 5): running moments, coefficient of variation, confidence
// intervals, and PDF histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnscup::util {

/// Online accumulator of count/mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< unbiased sample variance (n-1 denominator)
  double stddev() const;
  /// Coefficient of variation: stddev / mean.  Returns 0 when mean is 0.
  double cv() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Half-width of the 95% confidence interval of the mean
  /// (normal approximation; requires count >= 2).
  double ci95_halfwidth() const;

  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi]; values outside clamp to edge bins.
/// pdf() normalizes bin counts to fractions, matching the "PDF of change
/// frequency" plots in Figure 2.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bin_count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }

  /// Center value of the given bin.
  double bin_center(std::size_t bin) const;

  /// Fraction of samples per bin (empty histogram yields all zeros).
  std::vector<double> pdf() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact percentile (linear interpolation) of an unsorted sample.
/// p in [0, 100].  Asserts on an empty sample.
double percentile(std::vector<double> values, double p);

}  // namespace dnscup::util

// Unified telemetry layer (the repository's observability backbone).
//
// Every module publishes its counters through a MetricsRegistry instead of
// ad-hoc `struct Stats` fields.  The design follows three constraints:
//
//  * hot-path increments are relaxed atomic bumps behind an inline handle —
//    no locks: Counter and Gauge cells are lock-free atomics so the sharded
//    runtime's worker threads and the UDP receiver threads can bump (and a
//    scraper can read) the same cell without a data race.  Histograms stay
//    single-threaded by design (multi-threaded components snapshot them on
//    their owning thread and merge the snapshots);
//  * instruments are *registry-owned cells*; handles (Counter, Gauge,
//    HistogramMetric) are cheap shared references, so a module's public
//    `Stats` accessor can materialize a value snapshot without the module
//    holding any standalone counter field;
//  * snapshots are deterministic: entries are sorted by (name, labels) and
//    doubles are serialized with shortest-round-trip formatting, so two
//    identical seeded simulation runs produce byte-identical output.
//
// Naming convention (see DESIGN.md "Observability"):
//   <scope>_<quantity>[_<unit>]{label="value",...}
// with an "instance" label distinguishing multiple instances of a module
// (assigned in construction order via MetricsRegistry::next_instance) and
// label families for related outcomes, e.g.
//   cache_update_messages{result="sent"|"retransmit"|"acked"|"failed"}.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/stats.h"

namespace dnscup::metrics {

/// Label set of one instrument.  Kept sorted by key on registration so the
/// same labels in any order address the same instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class InstrumentKind { kCounter, kGauge, kHistogram };

/// Optional fixed-bin bucketing for a HistogramMetric.  With bins == 0 the
/// instrument tracks running moments only (count/sum/mean/stddev/min/max).
struct HistogramOptions {
  double lo = 0.0;
  double hi = 0.0;
  std::size_t bins = 0;

  bool bucketed() const { return bins > 0; }
};

namespace detail {

// Counter/Gauge cells are relaxed atomics: increments never synchronize
// anything (they are pure telemetry), they only need to be free of data
// races when a transport receiver thread and a worker thread touch the
// same registry.
struct CounterCell {
  std::atomic<uint64_t> value{0};
};

struct GaugeCell {
  std::atomic<double> value{0.0};
};

struct HistogramCell {
  util::RunningStats moments;
  std::optional<util::Histogram> buckets;
  HistogramOptions options;
};

}  // namespace detail

/// Monotonically increasing event count.  Default-constructed handles own a
/// private detached cell (usable, but invisible to any registry); handles
/// obtained from MetricsRegistry::counter share the registry's cell.
class Counter {
 public:
  Counter() : cell_(std::make_shared<detail::CounterCell>()) {}

  void inc(uint64_t n = 1) {
    cell_->value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const {
    return cell_->value.load(std::memory_order_relaxed);
  }

  Counter& operator++() {
    inc();
    return *this;
  }
  Counter& operator+=(uint64_t n) {
    inc(n);
    return *this;
  }
  operator uint64_t() const { return value(); }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::shared_ptr<detail::CounterCell> cell)
      : cell_(std::move(cell)) {}
  std::shared_ptr<detail::CounterCell> cell_;
};

/// Point-in-time value (occupancy, budget, high-water mark).
class Gauge {
 public:
  Gauge() : cell_(std::make_shared<detail::GaugeCell>()) {}

  void set(double v) { cell_->value.store(v, std::memory_order_relaxed); }
  void add(double d) {
    // CAS loop instead of fetch_add: atomic<double>::fetch_add is C++20
    // but not universally lock-free; this compiles to the same loop.
    double cur = cell_->value.load(std::memory_order_relaxed);
    while (!cell_->value.compare_exchange_weak(cur, cur + d,
                                               std::memory_order_relaxed)) {
    }
  }
  /// High-water-mark update: keeps the maximum of all observed values.
  void set_max(double v) {
    double cur = cell_->value.load(std::memory_order_relaxed);
    while (cur < v && !cell_->value.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return cell_->value.load(std::memory_order_relaxed);
  }
  operator double() const { return value(); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::shared_ptr<detail::GaugeCell> cell)
      : cell_(std::move(cell)) {}
  std::shared_ptr<detail::GaugeCell> cell_;
};

/// Distribution instrument: running moments via util::RunningStats, plus
/// optional fixed bins (util::Histogram) for Prometheus bucket output.
class HistogramMetric {
 public:
  HistogramMetric() : cell_(std::make_shared<detail::HistogramCell>()) {}

  void add(double x) {
    cell_->moments.add(x);
    if (cell_->buckets.has_value()) cell_->buckets->add(x);
  }

  std::size_t count() const { return cell_->moments.count(); }
  double sum() const { return cell_->moments.sum(); }
  double mean() const { return cell_->moments.mean(); }
  double stddev() const { return cell_->moments.stddev(); }
  double min() const { return cell_->moments.min(); }
  double max() const { return cell_->moments.max(); }

  const util::RunningStats& moments() const { return cell_->moments; }
  const util::Histogram* buckets() const {
    return cell_->buckets.has_value() ? &*cell_->buckets : nullptr;
  }

 private:
  friend class MetricsRegistry;
  explicit HistogramMetric(std::shared_ptr<detail::HistogramCell> cell)
      : cell_(std::move(cell)) {}
  std::shared_ptr<detail::HistogramCell> cell_;
};

/// Immutable, sim-time-stamped export of a registry's instruments.
/// Entries are sorted by (name, labels), making every serialization
/// deterministic for a deterministic run.
struct Snapshot {
  struct HistogramData {
    uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// Bucketed form; empty when the instrument tracks moments only.
    double lo = 0.0;
    double hi = 0.0;
    std::vector<uint64_t> bucket_counts;

    bool operator==(const HistogramData&) const = default;
  };

  struct Entry {
    std::string name;
    Labels labels;
    InstrumentKind kind = InstrumentKind::kCounter;
    uint64_t counter_value = 0;
    double gauge_value = 0.0;
    HistogramData histogram;

    bool operator==(const Entry&) const = default;
  };

  int64_t timestamp_us = 0;  ///< sim time at capture (window end for diffs)
  std::vector<Entry> entries;

  bool operator==(const Snapshot&) const = default;

  /// Entry lookup by exact name + labels; nullptr when absent.
  const Entry* find(std::string_view name, const Labels& labels = {}) const;

  /// Sum of counter_value over all entries of `name` (any labels), e.g.
  /// collapsing a label family to its total.
  uint64_t counter_total(std::string_view name) const;

  /// Per-window delta `after - before`: counters and histogram counts/sums
  /// subtract (clamped at zero), gauges and distribution moments
  /// (stddev/min/max) keep the `after` value.  Entries absent from `before`
  /// are copied from `after` unchanged.
  static Snapshot diff(const Snapshot& before, const Snapshot& after);

  /// Aggregates `other` into this snapshot (shard merging): counters and
  /// gauges add, histogram moments merge exactly (Welford), bucket counts
  /// add when shapes match.  Entries new in `other` are inserted.
  void merge(const Snapshot& other);

  std::string to_json() const;
  std::string to_prometheus() const;

  /// Parses exactly the schema to_json emits (round-trip safe).
  static util::Result<Snapshot> from_json(std::string_view text);
};

/// Central instrument registry.  Registering the same (name, labels) twice
/// returns a handle to the same cell, so independent modules may share an
/// aggregate family; per-instance metrics disambiguate with an "instance"
/// label (next_instance).  Not thread-safe by design — registration and
/// snapshotting happen on the protocol thread.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter counter(std::string_view name, Labels labels = {});
  Gauge gauge(std::string_view name, Labels labels = {});
  HistogramMetric histogram(std::string_view name, Labels labels = {},
                            HistogramOptions options = {});

  /// Sequential instance id per scope ("auth_server" -> "0", "1", ...),
  /// deterministic under deterministic construction order.
  std::string next_instance(std::string_view scope);

  Snapshot snapshot(int64_t timestamp_us = 0) const;

  std::size_t instrument_count() const { return instruments_.size(); }

 private:
  struct Instrument {
    InstrumentKind kind = InstrumentKind::kCounter;
    std::shared_ptr<detail::CounterCell> counter;
    std::shared_ptr<detail::GaugeCell> gauge;
    std::shared_ptr<detail::HistogramCell> histogram;
  };

  std::map<std::pair<std::string, Labels>, Instrument> instruments_;
  std::map<std::string, uint64_t, std::less<>> instance_counters_;
};

/// Process-wide fallback registry used by modules constructed without an
/// explicit registry (tests, small examples).  Simulations that need
/// isolated, reproducible snapshots own their registry and pass it down.
MetricsRegistry& default_registry();

inline MetricsRegistry& resolve(MetricsRegistry* registry) {
  return registry != nullptr ? *registry : default_registry();
}

}  // namespace dnscup::metrics

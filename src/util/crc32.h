// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320): the checksum
// framing every durable-store record and snapshot, so torn or bit-flipped
// bytes on disk are detected before they can corrupt recovered state.
// Table is built at compile time; no external dependency.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace dnscup::util {

namespace detail {

constexpr std::array<uint32_t, 256> make_crc32_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

/// Incremental form: pass the previous return value as `seed` to extend a
/// checksum over multiple buffers.
constexpr uint32_t crc32(std::span<const uint8_t> data,
                         uint32_t seed = 0) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    c = detail::kCrc32Table[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace dnscup::util

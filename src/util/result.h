// Result<T>: expected-style error propagation for operations that can fail
// on untrusted input (wire decoding, file parsing).  C++20 has no
// std::expected, so this is a minimal, allocation-free equivalent.
//
// Usage:
//   Result<Message> decode(span<const uint8_t> wire);
//   auto r = decode(bytes);
//   if (!r) return r.error();
//   use(r.value());
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/assert.h"

namespace dnscup::util {

/// Error category for Result.  Codes are coarse; the message carries detail.
enum class ErrorCode {
  kTruncated,       ///< input ended before a complete value was read
  kMalformed,       ///< input violates the format specification
  kUnsupported,     ///< well-formed but not implemented (e.g. unknown type)
  kNotFound,        ///< a lookup failed
  kInvalidArgument, ///< caller-supplied argument out of domain
  kExists,          ///< attempted to create something that already exists
  kRefused,         ///< policy refused the operation
  kIo,              ///< OS-level I/O failure
};

inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kTruncated: return "truncated";
    case ErrorCode::kMalformed: return "malformed";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kExists: return "exists";
    case ErrorCode::kRefused: return "refused";
    case ErrorCode::kIo: return "io";
  }
  return "unknown";
}

struct Error {
  ErrorCode code;
  std::string message;

  std::string to_string() const {
    return std::string(util::to_string(code)) + ": " + message;
  }
};

inline Error make_error(ErrorCode code, std::string message) {
  return Error{code, std::move(message)};
}

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}             // NOLINT
  Result(Error error) : storage_(std::move(error)) {}         // NOLINT
  Result(ErrorCode code, std::string message)
      : storage_(Error{code, std::move(message)}) {}

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    DNSCUP_ASSERT(ok());
    return std::get<T>(storage_);
  }
  const T& value() const& {
    DNSCUP_ASSERT(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    DNSCUP_ASSERT(ok());
    return std::get<T>(std::move(storage_));
  }

  const Error& error() const {
    DNSCUP_ASSERT(!ok());
    return std::get<Error>(storage_);
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT
  Status(ErrorCode code, std::string message)
      : error_{code, std::move(message)}, failed_(true) {}

  static Status ok_status() { return Status(); }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    DNSCUP_ASSERT(failed_);
    return error_;
  }

 private:
  Error error_{ErrorCode::kMalformed, {}};
  bool failed_ = false;
};

}  // namespace dnscup::util

/// Propagate an error from a Result/Status expression.
#define DNSCUP_TRY(expr)                       \
  do {                                         \
    auto _dnscup_try_status = (expr);          \
    if (!_dnscup_try_status.ok()) {            \
      return _dnscup_try_status.error();       \
    }                                          \
  } while (0)

#define DNSCUP_CONCAT_INNER(a, b) a##b
#define DNSCUP_CONCAT(a, b) DNSCUP_CONCAT_INNER(a, b)

/// Assign the value of a Result expression or propagate its error.
#define DNSCUP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.error();                              \
  }                                                  \
  lhs = std::move(tmp).value()

#define DNSCUP_ASSIGN_OR_RETURN(lhs, expr) \
  DNSCUP_ASSIGN_OR_RETURN_IMPL(DNSCUP_CONCAT(_dnscup_result_, __LINE__), lhs, \
                               expr)

#include "util/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/assert.h"

namespace dnscup::metrics {

namespace {

const char* kind_name(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "unknown";
}

/// Shortest-round-trip double formatting (std::to_chars), deterministic for
/// equal values — the property the byte-identical-snapshot guarantee needs.
std::string format_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  DNSCUP_ASSERT(ec == std::errc());
  return std::string(buf, ptr);
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_prometheus_labels(std::string& out, const Labels& labels,
                              std::string_view extra_key = {},
                              std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return;
  out += '{';
  bool first = true;
  auto emit = [&](std::string_view key, std::string_view value) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    for (const char c : value) {
      if (c == '\\') {
        out += "\\\\";
      } else if (c == '"') {
        out += "\\\"";
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += '"';
  };
  for (const auto& [key, value] : labels) emit(key, value);
  if (!extra_key.empty()) emit(extra_key, extra_value);
  out += '}';
}

Labels sorted_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Reconstructs Welford's M2 from a sample stddev, enabling exact moment
/// merging of two HistogramData summaries.
double m2_of(const Snapshot::HistogramData& h) {
  if (h.count < 2) return 0.0;
  return h.stddev * h.stddev * static_cast<double>(h.count - 1);
}

// ---- minimal JSON reader for exactly the schema to_json emits ------------

struct JsonReader {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  util::Result<std::string> string() {
    skip_ws();
    if (!consume('"')) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "expected string at offset " +
                                  std::to_string(pos));
    }
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) {
        const char esc = text[pos++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            if (pos + 4 > text.size()) {
              return util::make_error(util::ErrorCode::kTruncated,
                                      "bad \\u escape");
            }
            unsigned value = 0;
            const auto res = std::from_chars(text.data() + pos,
                                             text.data() + pos + 4, value, 16);
            if (res.ec != std::errc()) {
              return util::make_error(util::ErrorCode::kMalformed,
                                      "bad \\u escape");
            }
            pos += 4;
            c = static_cast<char>(value);  // emitted only for < 0x20
            break;
          }
          default: c = esc;
        }
      }
      out += c;
    }
    if (!consume('"')) {
      return util::make_error(util::ErrorCode::kTruncated,
                              "unterminated string");
    }
    return out;
  }

  util::Result<double> number() {
    skip_ws();
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    double value = 0.0;
    const auto res = std::from_chars(begin, end, value);
    if (res.ec != std::errc()) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "expected number at offset " +
                                  std::to_string(pos));
    }
    pos += static_cast<std::size_t>(res.ptr - begin);
    return value;
  }
};

}  // namespace

// ---- Snapshot ------------------------------------------------------------

const Snapshot::Entry* Snapshot::find(std::string_view name,
                                      const Labels& labels) const {
  const Labels sorted = sorted_labels(labels);
  for (const auto& entry : entries) {
    if (entry.name == name && entry.labels == sorted) return &entry;
  }
  return nullptr;
}

uint64_t Snapshot::counter_total(std::string_view name) const {
  uint64_t total = 0;
  for (const auto& entry : entries) {
    if (entry.name == name && entry.kind == InstrumentKind::kCounter) {
      total += entry.counter_value;
    }
  }
  return total;
}

Snapshot Snapshot::diff(const Snapshot& before, const Snapshot& after) {
  std::map<std::pair<std::string, Labels>, const Entry*> base;
  for (const auto& entry : before.entries) {
    base.emplace(std::make_pair(entry.name, entry.labels), &entry);
  }

  Snapshot out;
  out.timestamp_us = after.timestamp_us;
  out.entries.reserve(after.entries.size());
  for (const auto& entry : after.entries) {
    Entry delta = entry;
    const auto it = base.find({entry.name, entry.labels});
    if (it != base.end() && it->second->kind == entry.kind) {
      const Entry& prev = *it->second;
      switch (entry.kind) {
        case InstrumentKind::kCounter:
          delta.counter_value = entry.counter_value >= prev.counter_value
                                    ? entry.counter_value - prev.counter_value
                                    : 0;
          break;
        case InstrumentKind::kGauge:
          break;  // gauges report the window-end value
        case InstrumentKind::kHistogram: {
          HistogramData& h = delta.histogram;
          const HistogramData& p = prev.histogram;
          h.count = h.count >= p.count ? h.count - p.count : 0;
          h.sum -= p.sum;
          h.mean = h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count);
          // stddev/min/max stay as the window-end values: running moments
          // are not subtractable.
          if (h.bucket_counts.size() == p.bucket_counts.size()) {
            for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
              h.bucket_counts[i] = h.bucket_counts[i] >= p.bucket_counts[i]
                                       ? h.bucket_counts[i] -
                                             p.bucket_counts[i]
                                       : 0;
            }
          }
          break;
        }
      }
    }
    out.entries.push_back(std::move(delta));
  }
  return out;
}

void Snapshot::merge(const Snapshot& other) {
  timestamp_us = std::max(timestamp_us, other.timestamp_us);
  // Indices, not pointers: the push_back below may reallocate entries.
  std::map<std::pair<std::string, Labels>, std::size_t> mine;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    mine.emplace(std::make_pair(entries[i].name, entries[i].labels), i);
  }
  for (const auto& entry : other.entries) {
    const auto it = mine.find({entry.name, entry.labels});
    if (it == mine.end() || entries[it->second].kind != entry.kind) {
      entries.push_back(entry);
      continue;
    }
    Entry& target = entries[it->second];
    switch (entry.kind) {
      case InstrumentKind::kCounter:
        target.counter_value += entry.counter_value;
        break;
      case InstrumentKind::kGauge:
        target.gauge_value += entry.gauge_value;
        break;
      case InstrumentKind::kHistogram: {
        HistogramData& a = target.histogram;
        const HistogramData& b = entry.histogram;
        if (b.count == 0) break;
        if (a.count == 0) {
          a = b;
          break;
        }
        // Welford-style merge of (count, mean, M2); mirrors
        // util::RunningStats::merge on the summarized form.
        const double n1 = static_cast<double>(a.count);
        const double n2 = static_cast<double>(b.count);
        const double delta = b.mean - a.mean;
        const double n = n1 + n2;
        const double m2 = m2_of(a) + m2_of(b) + delta * delta * n1 * n2 / n;
        a.count += b.count;
        a.sum += b.sum;
        a.mean += delta * n2 / n;
        a.stddev = a.count < 2
                       ? 0.0
                       : std::sqrt(m2 / static_cast<double>(a.count - 1));
        a.min = std::min(a.min, b.min);
        a.max = std::max(a.max, b.max);
        if (a.bucket_counts.size() == b.bucket_counts.size()) {
          for (std::size_t i = 0; i < a.bucket_counts.size(); ++i) {
            a.bucket_counts[i] += b.bucket_counts[i];
          }
        } else {
          a.bucket_counts.clear();  // incompatible shapes: drop buckets
        }
        break;
      }
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
}

std::string Snapshot::to_json() const {
  std::string out;
  out.reserve(128 + entries.size() * 96);
  out += "{\"timestamp_us\":";
  out += std::to_string(timestamp_us);
  out += ",\"metrics\":[";
  bool first = true;
  for (const auto& entry : entries) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, entry.name);
    out += ",\"labels\":{";
    bool first_label = true;
    for (const auto& [key, value] : entry.labels) {
      if (!first_label) out += ',';
      first_label = false;
      append_json_string(out, key);
      out += ':';
      append_json_string(out, value);
    }
    out += "},\"type\":\"";
    out += kind_name(entry.kind);
    out += '"';
    switch (entry.kind) {
      case InstrumentKind::kCounter:
        out += ",\"value\":";
        out += std::to_string(entry.counter_value);
        break;
      case InstrumentKind::kGauge:
        out += ",\"value\":";
        out += format_double(entry.gauge_value);
        break;
      case InstrumentKind::kHistogram: {
        const HistogramData& h = entry.histogram;
        out += ",\"count\":";
        out += std::to_string(h.count);
        out += ",\"sum\":";
        out += format_double(h.sum);
        out += ",\"mean\":";
        out += format_double(h.mean);
        out += ",\"stddev\":";
        out += format_double(h.stddev);
        out += ",\"min\":";
        out += format_double(h.min);
        out += ",\"max\":";
        out += format_double(h.max);
        if (!h.bucket_counts.empty()) {
          out += ",\"lo\":";
          out += format_double(h.lo);
          out += ",\"hi\":";
          out += format_double(h.hi);
          out += ",\"buckets\":[";
          for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
            if (i > 0) out += ',';
            out += std::to_string(h.bucket_counts[i]);
          }
          out += ']';
        }
        break;
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string Snapshot::to_prometheus() const {
  std::string out;
  out.reserve(128 + entries.size() * 96);
  std::string_view last_name;
  for (const auto& entry : entries) {
    if (entry.name != last_name) {
      last_name = entry.name;
      out += "# TYPE ";
      out += entry.name;
      out += ' ';
      switch (entry.kind) {
        case InstrumentKind::kCounter: out += "counter"; break;
        case InstrumentKind::kGauge: out += "gauge"; break;
        case InstrumentKind::kHistogram:
          out += entry.histogram.bucket_counts.empty() ? "summary"
                                                       : "histogram";
          break;
      }
      out += '\n';
    }
    switch (entry.kind) {
      case InstrumentKind::kCounter:
        out += entry.name;
        append_prometheus_labels(out, entry.labels);
        out += ' ';
        out += std::to_string(entry.counter_value);
        out += '\n';
        break;
      case InstrumentKind::kGauge:
        out += entry.name;
        append_prometheus_labels(out, entry.labels);
        out += ' ';
        out += format_double(entry.gauge_value);
        out += '\n';
        break;
      case InstrumentKind::kHistogram: {
        const HistogramData& h = entry.histogram;
        if (!h.bucket_counts.empty()) {
          // Cumulative le buckets; values above hi land in +Inf only.
          uint64_t cumulative = 0;
          const double width =
              (h.hi - h.lo) / static_cast<double>(h.bucket_counts.size());
          for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
            cumulative += h.bucket_counts[i];
            out += entry.name;
            out += "_bucket";
            append_prometheus_labels(
                out, entry.labels, "le",
                format_double(h.lo + width * static_cast<double>(i + 1)));
            out += ' ';
            out += std::to_string(cumulative);
            out += '\n';
          }
          out += entry.name;
          out += "_bucket";
          append_prometheus_labels(out, entry.labels, "le", "+Inf");
          out += ' ';
          out += std::to_string(h.count);
          out += '\n';
        }
        out += entry.name;
        out += "_sum";
        append_prometheus_labels(out, entry.labels);
        out += ' ';
        out += format_double(h.sum);
        out += '\n';
        out += entry.name;
        out += "_count";
        append_prometheus_labels(out, entry.labels);
        out += ' ';
        out += std::to_string(h.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

util::Result<Snapshot> Snapshot::from_json(std::string_view text) {
  JsonReader reader{text};
  Snapshot out;
  if (!reader.consume('{')) {
    return util::make_error(util::ErrorCode::kMalformed, "expected '{'");
  }
  DNSCUP_ASSIGN_OR_RETURN(const std::string ts_key, reader.string());
  if (ts_key != "timestamp_us" || !reader.consume(':')) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "expected timestamp_us");
  }
  DNSCUP_ASSIGN_OR_RETURN(const double ts, reader.number());
  out.timestamp_us = static_cast<int64_t>(ts);
  if (!reader.consume(',')) {
    return util::make_error(util::ErrorCode::kMalformed, "expected ','");
  }
  DNSCUP_ASSIGN_OR_RETURN(const std::string metrics_key, reader.string());
  if (metrics_key != "metrics" || !reader.consume(':') ||
      !reader.consume('[')) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "expected metrics array");
  }
  if (!reader.consume(']')) {
    do {
      if (!reader.consume('{')) {
        return util::make_error(util::ErrorCode::kMalformed,
                                "expected metric object");
      }
      Entry entry;
      std::string type;
      bool done = false;
      while (!done) {
        DNSCUP_ASSIGN_OR_RETURN(const std::string key, reader.string());
        if (!reader.consume(':')) {
          return util::make_error(util::ErrorCode::kMalformed,
                                  "expected ':'");
        }
        if (key == "name") {
          DNSCUP_ASSIGN_OR_RETURN(entry.name, reader.string());
        } else if (key == "labels") {
          if (!reader.consume('{')) {
            return util::make_error(util::ErrorCode::kMalformed,
                                    "expected labels object");
          }
          if (!reader.consume('}')) {
            do {
              DNSCUP_ASSIGN_OR_RETURN(std::string label_key, reader.string());
              if (!reader.consume(':')) {
                return util::make_error(util::ErrorCode::kMalformed,
                                        "expected ':' in labels");
              }
              DNSCUP_ASSIGN_OR_RETURN(std::string label_value,
                                      reader.string());
              entry.labels.emplace_back(std::move(label_key),
                                        std::move(label_value));
            } while (reader.consume(','));
            if (!reader.consume('}')) {
              return util::make_error(util::ErrorCode::kMalformed,
                                      "unterminated labels");
            }
          }
        } else if (key == "type") {
          DNSCUP_ASSIGN_OR_RETURN(type, reader.string());
        } else if (key == "buckets") {
          if (!reader.consume('[')) {
            return util::make_error(util::ErrorCode::kMalformed,
                                    "expected bucket array");
          }
          if (!reader.consume(']')) {
            do {
              DNSCUP_ASSIGN_OR_RETURN(const double v, reader.number());
              entry.histogram.bucket_counts.push_back(
                  static_cast<uint64_t>(v));
            } while (reader.consume(','));
            if (!reader.consume(']')) {
              return util::make_error(util::ErrorCode::kMalformed,
                                      "unterminated bucket array");
            }
          }
        } else {
          DNSCUP_ASSIGN_OR_RETURN(const double v, reader.number());
          if (key == "value") {
            entry.counter_value = static_cast<uint64_t>(v);
            entry.gauge_value = v;
          } else if (key == "count") {
            entry.histogram.count = static_cast<uint64_t>(v);
          } else if (key == "sum") {
            entry.histogram.sum = v;
          } else if (key == "mean") {
            entry.histogram.mean = v;
          } else if (key == "stddev") {
            entry.histogram.stddev = v;
          } else if (key == "min") {
            entry.histogram.min = v;
          } else if (key == "max") {
            entry.histogram.max = v;
          } else if (key == "lo") {
            entry.histogram.lo = v;
          } else if (key == "hi") {
            entry.histogram.hi = v;
          } else {
            return util::make_error(util::ErrorCode::kUnsupported,
                                    "unknown key: " + key);
          }
        }
        if (!reader.consume(',')) done = true;
      }
      if (!reader.consume('}')) {
        return util::make_error(util::ErrorCode::kMalformed,
                                "unterminated metric object");
      }
      if (type == "counter") {
        entry.kind = InstrumentKind::kCounter;
        entry.gauge_value = 0.0;
      } else if (type == "gauge") {
        entry.kind = InstrumentKind::kGauge;
        entry.counter_value = 0;
      } else if (type == "histogram") {
        entry.kind = InstrumentKind::kHistogram;
        entry.counter_value = 0;
        entry.gauge_value = 0.0;
      } else {
        return util::make_error(util::ErrorCode::kMalformed,
                                "bad metric type: " + type);
      }
      out.entries.push_back(std::move(entry));
    } while (reader.consume(','));
    if (!reader.consume(']')) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "unterminated metrics array");
    }
  }
  if (!reader.consume('}')) {
    return util::make_error(util::ErrorCode::kMalformed, "expected '}'");
  }
  return out;
}

// ---- MetricsRegistry -----------------------------------------------------

Counter MetricsRegistry::counter(std::string_view name, Labels labels) {
  auto key = std::make_pair(std::string(name), sorted_labels(std::move(labels)));
  auto [it, inserted] = instruments_.try_emplace(std::move(key));
  Instrument& instrument = it->second;
  if (inserted) {
    instrument.kind = InstrumentKind::kCounter;
    instrument.counter = std::make_shared<detail::CounterCell>();
  }
  DNSCUP_ASSERT(instrument.kind == InstrumentKind::kCounter &&
                "metric re-registered with a different kind");
  return Counter(instrument.counter);
}

Gauge MetricsRegistry::gauge(std::string_view name, Labels labels) {
  auto key = std::make_pair(std::string(name), sorted_labels(std::move(labels)));
  auto [it, inserted] = instruments_.try_emplace(std::move(key));
  Instrument& instrument = it->second;
  if (inserted) {
    instrument.kind = InstrumentKind::kGauge;
    instrument.gauge = std::make_shared<detail::GaugeCell>();
  }
  DNSCUP_ASSERT(instrument.kind == InstrumentKind::kGauge &&
                "metric re-registered with a different kind");
  return Gauge(instrument.gauge);
}

HistogramMetric MetricsRegistry::histogram(std::string_view name,
                                           Labels labels,
                                           HistogramOptions options) {
  auto key = std::make_pair(std::string(name), sorted_labels(std::move(labels)));
  auto [it, inserted] = instruments_.try_emplace(std::move(key));
  Instrument& instrument = it->second;
  if (inserted) {
    instrument.kind = InstrumentKind::kHistogram;
    instrument.histogram = std::make_shared<detail::HistogramCell>();
    instrument.histogram->options = options;
    if (options.bucketed()) {
      instrument.histogram->buckets.emplace(options.lo, options.hi,
                                            options.bins);
    }
  }
  DNSCUP_ASSERT(instrument.kind == InstrumentKind::kHistogram &&
                "metric re-registered with a different kind");
  return HistogramMetric(instrument.histogram);
}

std::string MetricsRegistry::next_instance(std::string_view scope) {
  auto it = instance_counters_.find(scope);
  if (it == instance_counters_.end()) {
    it = instance_counters_.emplace(std::string(scope), 0).first;
  }
  return std::to_string(it->second++);
}

Snapshot MetricsRegistry::snapshot(int64_t timestamp_us) const {
  Snapshot out;
  out.timestamp_us = timestamp_us;
  out.entries.reserve(instruments_.size());
  for (const auto& [key, instrument] : instruments_) {
    Snapshot::Entry entry;
    entry.name = key.first;
    entry.labels = key.second;
    entry.kind = instrument.kind;
    switch (instrument.kind) {
      case InstrumentKind::kCounter:
        entry.counter_value =
            instrument.counter->value.load(std::memory_order_relaxed);
        break;
      case InstrumentKind::kGauge:
        entry.gauge_value =
            instrument.gauge->value.load(std::memory_order_relaxed);
        break;
      case InstrumentKind::kHistogram: {
        const detail::HistogramCell& cell = *instrument.histogram;
        Snapshot::HistogramData& h = entry.histogram;
        h.count = cell.moments.count();
        h.sum = cell.moments.sum();
        h.mean = cell.moments.mean();
        h.stddev = cell.moments.stddev();
        h.min = cell.moments.min();
        h.max = cell.moments.max();
        if (cell.buckets.has_value()) {
          h.lo = cell.options.lo;
          h.hi = cell.options.hi;
          h.bucket_counts.resize(cell.buckets->bins());
          for (std::size_t i = 0; i < cell.buckets->bins(); ++i) {
            h.bucket_counts[i] = cell.buckets->bin_count(i);
          }
        }
        break;
      }
    }
    out.entries.push_back(std::move(entry));
  }
  // std::map iteration is already (name, labels)-sorted.
  return out;
}

MetricsRegistry& default_registry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace dnscup::metrics

#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace dnscup::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load()) return;
  if (g_level.load() == LogLevel::kOff) return;
  std::fprintf(stderr, "[%s] ", prefix(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace dnscup::util

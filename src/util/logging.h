// Minimal leveled logger.  Off by default so tests and benches stay quiet;
// examples flip it on to narrate protocol activity.
#pragma once

#include <cstdarg>
#include <string>

namespace dnscup::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging to stderr with a level prefix.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace dnscup::util

#define DNSCUP_LOG_DEBUG(...) \
  ::dnscup::util::logf(::dnscup::util::LogLevel::kDebug, __VA_ARGS__)
#define DNSCUP_LOG_INFO(...) \
  ::dnscup::util::logf(::dnscup::util::LogLevel::kInfo, __VA_ARGS__)
#define DNSCUP_LOG_WARN(...) \
  ::dnscup::util::logf(::dnscup::util::LogLevel::kWarn, __VA_ARGS__)
#define DNSCUP_LOG_ERROR(...) \
  ::dnscup::util::logf(::dnscup::util::LogLevel::kError, __VA_ARGS__)

#include "sim/trace_gen.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/assert.h"
#include "util/rng.h"

namespace dnscup::sim {

std::vector<TraceRecord> generate_trace(
    const workload::DomainPopulation& population,
    const TraceGenConfig& config) {
  DNSCUP_ASSERT(population.size() > 0);
  DNSCUP_ASSERT(config.nameservers > 0 && config.clients > 0);

  util::Rng master(config.seed);
  const util::ZipfDistribution zipf(population.size(), config.zipf_exponent);
  // Zipf rank r maps to the r-th most *requested* domain, so the
  // population's request counts (hot CDN entries, Figure-1 tails) shape
  // the traffic rather than raw generation order.
  std::vector<std::size_t> by_popularity(population.size());
  std::iota(by_popularity.begin(), by_popularity.end(), 0);
  std::stable_sort(by_popularity.begin(), by_popularity.end(),
                   [&population](std::size_t a, std::size_t b) {
                     return population[a].request_count >
                            population[b].request_count;
                   });
  const double session_rate = config.sessions_per_client_hour / 3600.0;

  std::vector<TraceRecord> records;
  records.reserve(static_cast<std::size_t>(
      static_cast<double>(config.clients) * session_rate *
      config.duration_s * 0.6));

  for (uint32_t client = 0; client < config.clients; ++client) {
    util::Rng rng = master.fork();
    const uint16_t ns = static_cast<uint16_t>(client % config.nameservers);
    // Client browser cache: domain index -> expiry (seconds).
    std::unordered_map<std::size_t, double> cache;

    double t = rng.exponential(session_rate);
    while (t < config.duration_s) {
      const std::size_t domain = by_popularity[zipf.sample(rng)];
      // One browsing session issues a burst of queries for the domain.
      int64_t burst = 1;
      if (config.burst_queries_mean > 1.0) {
        burst = 1 + rng.poisson(config.burst_queries_mean - 1.0);
      }
      double qt = t;
      for (int64_t q = 0; q < burst && qt < config.duration_s; ++q) {
        auto it = cache.find(domain);
        if (it == cache.end() || it->second <= qt) {
          records.push_back(TraceRecord{net::from_seconds(qt), ns, client,
                                        population[domain].name,
                                        dns::RRType::kA});
          if (config.client_cache_s > 0.0) {
            cache[domain] = qt + config.client_cache_s;
          }
        }
        qt += rng.exponential(1.0 / config.burst_spacing_s);
      }
      t += rng.exponential(session_rate);
    }
  }
  sort_trace(records);
  return records;
}

}  // namespace dnscup::sim

// In-process reproduction of the paper's Figure-7 testbed: a root
// nameserver, a master authoritative nameserver with two slaves, and a set
// of DNS caches (local nameservers), all over the deterministic simulated
// network.  The paper built 40 zones from the 50 most popular IRCache
// domains; we synthesize the same shape.
//
// With `dnscup_enabled` the master runs the DNScup middleware and every
// cache runs a LeaseClient; disabled, the identical topology degrades to
// plain TTL consistency — the comparison baseline.
#pragma once

#include <memory>
#include <string>
#include <optional>
#include <vector>

#include "core/auth.h"
#include "core/dnscup_authority.h"
#include "core/lease_client.h"
#include "net/event_loop.h"
#include "net/sim_network.h"
#include "server/authoritative.h"
#include "server/resolver.h"

namespace dnscup::sim {

struct TestbedConfig {
  std::size_t zones = 40;
  std::size_t caches = 2;
  std::size_t slaves = 2;
  bool dnscup_enabled = true;
  /// Advertise the slaves in every delegation (NS + glue), so resolvers
  /// can fail over to them when the master is unreachable — the
  /// availability story of §1.  Slaves still need a bootstrap
  /// request_transfer() before they can serve.
  bool advertise_slaves = false;
  /// Records' TTL in the authoritative zones.
  uint32_t record_ttl = 300;
  /// Maximal lease length the authority grants.
  net::Duration max_lease = net::hours(24);
  std::size_t storage_budget = 100000;
  /// CACHE-UPDATE retransmission budget (notification module).
  int notification_max_retries = 5;
  /// Non-empty: sign/verify CACHE-UPDATE with this shared key (§5.3).
  std::string auth_key;
  net::LinkParams link;  ///< default: 1 ms LAN links
  uint64_t seed = 42;
  /// Registry every component publishes into.  Null: the testbed owns a
  /// private registry, so identically-seeded testbeds produce identical
  /// (byte-for-byte) snapshots regardless of what else ran in-process.
  metrics::MetricsRegistry* metrics = nullptr;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  net::EventLoop& loop() { return loop_; }
  net::SimNetwork& network() { return network_; }

  /// The registry all testbed components publish into.
  metrics::MetricsRegistry& metrics() { return *metrics_; }

  /// Sim-time-stamped snapshot of every instrument in the testbed.
  metrics::Snapshot metrics_snapshot() const {
    return metrics_->snapshot(loop_.now());
  }

  server::AuthServer& root() { return *root_; }
  server::AuthServer& master() { return *master_; }
  server::AuthServer& slave(std::size_t i) { return *slaves_.at(i); }
  server::CachingResolver& cache(std::size_t i) { return *caches_.at(i); }

  /// Null when dnscup_enabled is false.
  core::DnscupAuthority* dnscup() { return dnscup_.get(); }
  core::LeaseClient* lease_client(std::size_t i) {
    return i < lease_clients_.size() ? lease_clients_[i].get() : nullptr;
  }

  std::size_t zone_count() const { return zone_origins_.size(); }
  const dns::Name& zone_origin(std::size_t i) const {
    return zone_origins_.at(i);
  }
  /// The www host of zone i — the record the experiments query and change.
  dns::Name web_host(std::size_t i) const;

  net::Endpoint master_endpoint() const { return master_endpoint_; }

  /// Drives the loop until the resolution completes (or `timeout` passes);
  /// nullopt on timeout.
  std::optional<server::CachingResolver::Outcome> resolve(
      std::size_t cache_index, const dns::Name& qname, dns::RRType qtype,
      net::Duration timeout = net::seconds(30));

  /// Repoints zone i's web host to `address` via an RFC 2136 UPDATE sent
  /// over the wire from an admin endpoint; runs the loop until the master
  /// responds.  Returns the update rcode (kServFail on timeout).
  dns::Rcode repoint_web_host(std::size_t zone_index, dns::Ipv4 address,
                              net::Duration timeout = net::seconds(30));

  /// Fire-and-forget variant for use inside scheduled events: sends the
  /// UPDATE and returns immediately without driving the loop.
  void repoint_web_host_async(std::size_t zone_index, dns::Ipv4 address);

  const TestbedConfig& config() const { return config_; }

 private:
  TestbedConfig config_;
  /// Owned fallback registry; must precede every metric-publishing member.
  std::unique_ptr<metrics::MetricsRegistry> owned_metrics_;
  metrics::MetricsRegistry* metrics_;
  net::EventLoop loop_;
  net::SimNetwork network_;
  std::vector<dns::Name> zone_origins_;
  net::Endpoint master_endpoint_;

  std::unique_ptr<server::AuthServer> root_;
  std::unique_ptr<server::AuthServer> master_;
  std::vector<std::unique_ptr<server::AuthServer>> slaves_;
  std::vector<std::unique_ptr<server::CachingResolver>> caches_;
  std::unique_ptr<core::SharedKeyAuthenticator> authenticator_;
  std::unique_ptr<core::DnscupAuthority> dnscup_;
  std::vector<std::unique_ptr<core::LeaseClient>> lease_clients_;

  net::Transport* admin_transport_ = nullptr;
  std::optional<dns::Rcode> admin_last_rcode_;
  uint16_t admin_next_id_ = 100;
};

}  // namespace dnscup::sim

#include "sim/trace.h"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace dnscup::sim {

std::string serialize_trace(const std::vector<TraceRecord>& records) {
  std::ostringstream os;
  for (const auto& r : records) {
    os << r.timestamp << ' ' << r.nameserver << ' ' << r.client << ' '
       << r.qname.to_string() << ' ' << dns::to_string(r.qtype) << '\n';
  }
  return os.str();
}

util::Result<std::vector<TraceRecord>> parse_trace(std::string_view text) {
  std::vector<TraceRecord> records;
  std::size_t start = 0;
  std::size_t lineno = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string line(text.substr(start, nl - start));
    start = nl + 1;
    ++lineno;
    if (line.empty()) continue;

    std::istringstream is(line);
    TraceRecord record;
    std::string qname_text;
    std::string qtype_text;
    if (!(is >> record.timestamp >> record.nameserver >> record.client >>
          qname_text >> qtype_text)) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "trace line " + std::to_string(lineno));
    }
    DNSCUP_ASSIGN_OR_RETURN(record.qname, dns::Name::parse(qname_text));
    DNSCUP_ASSIGN_OR_RETURN(record.qtype,
                            dns::rrtype_from_string(qtype_text));
    records.push_back(std::move(record));
  }
  return records;
}

void sort_trace(std::vector<TraceRecord>& records) {
  std::sort(records.begin(), records.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              if (a.nameserver != b.nameserver) {
                return a.nameserver < b.nameserver;
              }
              return a.client < b.client;
            });
}

}  // namespace dnscup::sim

// DNS query-trace format for the §5.1 trace-driven simulation.
//
// One record per client query arriving at a local nameserver:
// timestamp, nameserver id, client id, queried name, query type.  The text
// form is one whitespace-separated line per record; reader and writer
// round-trip exactly.  (The paper used one week of traces from three
// academic nameservers; trace_gen.h synthesizes equivalent traces.)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rdata.h"
#include "net/time.h"
#include "util/result.h"

namespace dnscup::sim {

struct TraceRecord {
  net::SimTime timestamp = 0;  ///< microseconds since trace start
  uint16_t nameserver = 0;     ///< which local nameserver received it
  uint32_t client = 0;
  dns::Name qname;
  dns::RRType qtype = dns::RRType::kA;

  bool operator==(const TraceRecord&) const = default;
};

/// Serializes records, one line each, sorted or not as given.
std::string serialize_trace(const std::vector<TraceRecord>& records);

/// Parses a trace; errors name the offending line.
util::Result<std::vector<TraceRecord>> parse_trace(std::string_view text);

/// Sorts records by (timestamp, nameserver, client) — generator output
/// is produced per-client and must be merged before replay.
void sort_trace(std::vector<TraceRecord>& records);

}  // namespace dnscup::sim

#include "sim/testbed.h"

#include <string>

#include "server/update.h"
#include "util/assert.h"

namespace dnscup::sim {

using dns::Name;
using dns::RRType;

namespace {

constexpr uint16_t kDnsPort = 53;

net::Endpoint root_endpoint() {
  return {net::make_ip(10, 0, 0, 1), kDnsPort};
}
net::Endpoint master_ep() { return {net::make_ip(10, 0, 1, 1), kDnsPort}; }
net::Endpoint slave_ep(std::size_t i) {
  return {net::make_ip(10, 0, 1, static_cast<uint8_t>(2 + i)), kDnsPort};
}
net::Endpoint cache_ep(std::size_t i) {
  return {net::make_ip(10, 0, 2, static_cast<uint8_t>(1 + i)), kDnsPort};
}
net::Endpoint admin_ep() { return {net::make_ip(10, 0, 9, 9), 5353}; }

}  // namespace

Testbed::Testbed(TestbedConfig config)
    : config_(config),
      owned_metrics_(config.metrics != nullptr
                         ? nullptr
                         : std::make_unique<metrics::MetricsRegistry>()),
      metrics_(config.metrics != nullptr ? config.metrics
                                         : owned_metrics_.get()),
      loop_(metrics_),
      network_(loop_, config.seed, metrics_) {
  network_.set_default_link(config_.link);
  master_endpoint_ = master_ep();

  // ---- zones -----------------------------------------------------------
  dns::Zone root_zone(Name::root());
  dns::SOARdata root_soa;
  root_soa.mname = Name::parse("a.root-servers.net.").value();
  root_soa.rname = Name::parse("admin.root-servers.net.").value();
  root_soa.serial = 1;
  root_soa.minimum = 60;
  root_zone.add_record(Name::root(), RRType::kSOA, 86400, root_soa);
  root_zone.add_record(Name::root(), RRType::kNS, 86400,
                       dns::NSRdata{root_soa.mname});

  master_ = std::make_unique<server::AuthServer>(
      network_.bind(master_ep()), loop_, server::AuthServer::Role::kMaster,
      metrics_);

  for (std::size_t i = 0; i < config_.zones; ++i) {
    const Name origin =
        Name::parse("zone" + std::to_string(i) + ".com.").value();
    zone_origins_.push_back(origin);

    const Name ns1 = origin.prepend("ns1");
    dns::SOARdata soa;
    soa.mname = ns1;
    soa.rname = origin.prepend("admin");
    soa.serial = 1;
    soa.refresh = 3600;
    soa.retry = 600;
    soa.expire = 86400 * 7;
    soa.minimum = 60;

    dns::Zone zone(origin);
    zone.add_record(origin, RRType::kSOA, config_.record_ttl, soa);
    zone.add_record(origin, RRType::kNS, config_.record_ttl,
                    dns::NSRdata{ns1});
    zone.add_record(ns1, RRType::kA, config_.record_ttl,
                    dns::ARdata{dns::Ipv4{master_ep().ip}});
    zone.add_record(
        origin.prepend("www"), RRType::kA, config_.record_ttl,
        dns::ARdata{dns::Ipv4{net::make_ip(
            192, 0, static_cast<uint8_t>(2 + i / 250),
            static_cast<uint8_t>(1 + i % 250))}});

    // Delegation + glue in the root zone.
    root_zone.add_record(origin, RRType::kNS, 86400, dns::NSRdata{ns1});
    root_zone.add_record(ns1, RRType::kA, 86400,
                         dns::ARdata{dns::Ipv4{master_ep().ip}});

    if (config_.advertise_slaves) {
      for (std::size_t s = 0; s < config_.slaves; ++s) {
        const Name ns_name =
            origin.prepend("ns" + std::to_string(2 + s));
        const dns::Ipv4 addr{slave_ep(s).ip};
        zone.add_record(origin, RRType::kNS, config_.record_ttl,
                        dns::NSRdata{ns_name});
        zone.add_record(ns_name, RRType::kA, config_.record_ttl,
                        dns::ARdata{addr});
        root_zone.add_record(origin, RRType::kNS, 86400,
                             dns::NSRdata{ns_name});
        root_zone.add_record(ns_name, RRType::kA, 86400,
                             dns::ARdata{addr});
      }
    }
    master_->add_zone(std::move(zone));
  }

  root_ = std::make_unique<server::AuthServer>(
      network_.bind(root_endpoint()), loop_,
      server::AuthServer::Role::kMaster, metrics_);
  root_->add_zone(std::move(root_zone));

  // ---- slaves (NOTIFY + AXFR replication of every zone) ----------------
  for (std::size_t i = 0; i < config_.slaves; ++i) {
    auto slave = std::make_unique<server::AuthServer>(
        network_.bind(slave_ep(i)), loop_, server::AuthServer::Role::kSlave,
        metrics_);
    slave->set_master(master_ep());
    master_->add_slave(slave_ep(i));
    slaves_.push_back(std::move(slave));
  }

  // ---- DNScup middleware ------------------------------------------------
  if (config_.dnscup_enabled) {
    core::DnscupAuthority::Config dnscup_config;
    const net::Duration max_lease = config_.max_lease;
    dnscup_config.max_lease = [max_lease](const Name&, RRType) {
      return max_lease;
    };
    dnscup_config.storage_budget = config_.storage_budget;
    dnscup_config.metrics = metrics_;
    dnscup_config.notification.max_retries = config_.notification_max_retries;
    if (!config_.auth_key.empty()) {
      authenticator_ =
          std::make_unique<core::SharedKeyAuthenticator>(config_.auth_key);
      dnscup_config.notification.authenticator = authenticator_.get();
    }
    dnscup_ = std::make_unique<core::DnscupAuthority>(*master_, loop_,
                                                      dnscup_config);
  }

  // ---- caches -----------------------------------------------------------
  server::CachingResolver::Config resolver_config;
  resolver_config.metrics = metrics_;
  for (std::size_t i = 0; i < config_.caches; ++i) {
    auto cache = std::make_unique<server::CachingResolver>(
        network_.bind(cache_ep(i)), loop_,
        std::vector<net::Endpoint>{root_endpoint()}, resolver_config);
    if (config_.dnscup_enabled) {
      core::LeaseClient::Config client_config;
      client_config.authenticator = authenticator_.get();
      client_config.metrics = metrics_;
      lease_clients_.push_back(
          std::make_unique<core::LeaseClient>(*cache, client_config));
    }
    caches_.push_back(std::move(cache));
  }

  // ---- admin endpoint for wire dynamic updates ---------------------------
  // The operator's control channel is reliable regardless of injected DNS
  // path loss: experiments inject loss into the DNS traffic, not into the
  // zone-administration path (a lost UPDATE would silently desynchronize
  // the experiment driver's notion of truth from the master's).
  net::LinkParams admin_link = config_.link;
  admin_link.loss_probability = 0.0;
  admin_link.duplicate_probability = 0.0;
  network_.set_link(admin_ep(), master_ep(), admin_link);
  network_.set_link(master_ep(), admin_ep(), admin_link);
  auto& admin = network_.bind(admin_ep());
  admin.set_receive_handler([this](const net::Endpoint&,
                                   std::span<const uint8_t> data) {
    auto decoded = dns::Message::decode(data);
    if (decoded && decoded.value().flags.qr &&
        decoded.value().flags.opcode == dns::Opcode::kUpdate) {
      admin_last_rcode_ = decoded.value().flags.rcode;
    }
  });
  admin_transport_ = &admin;
}

Name Testbed::web_host(std::size_t i) const {
  return zone_origins_.at(i).prepend("www");
}

std::optional<server::CachingResolver::Outcome> Testbed::resolve(
    std::size_t cache_index, const Name& qname, RRType qtype,
    net::Duration timeout) {
  std::optional<server::CachingResolver::Outcome> result;
  cache(cache_index)
      .resolve(qname, qtype,
               [&result](const server::CachingResolver::Outcome& outcome) {
                 result = outcome;
               });
  const net::SimTime deadline = loop_.now() + timeout;
  while (!result.has_value() && loop_.now() < deadline && !loop_.empty()) {
    loop_.run_until(loop_.now() + net::milliseconds(10));
  }
  return result;
}

void Testbed::repoint_web_host_async(std::size_t zone_index,
                                     dns::Ipv4 address) {
  const Name& origin = zone_origins_.at(zone_index);
  const dns::Message update =
      server::UpdateBuilder(origin)
          .replace_a(web_host(zone_index), config_.record_ttl, address)
          .build(admin_next_id_++);
  admin_transport_->send(master_ep(), update.encode());
}

dns::Rcode Testbed::repoint_web_host(std::size_t zone_index,
                                     dns::Ipv4 address,
                                     net::Duration timeout) {
  admin_last_rcode_.reset();
  repoint_web_host_async(zone_index, address);

  const net::SimTime deadline = loop_.now() + timeout;
  while (!admin_last_rcode_.has_value() && loop_.now() < deadline &&
         !loop_.empty()) {
    loop_.run_until(loop_.now() + net::milliseconds(10));
  }
  return admin_last_rcode_.value_or(dns::Rcode::kServFail);
}

}  // namespace dnscup::sim

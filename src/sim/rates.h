// Per-(nameserver, domain) query-rate extraction from a trace, and
// conversion into the DemandEntry form the lease optimizers consume.
// The paper computes rates from the first day of its week-long traces
// (§5.1) and plans leases from that snapshot; compute_demands mirrors it.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/dynamic_lease.h"
#include "dns/name.h"
#include "sim/trace.h"
#include "workload/domain_population.h"

namespace dnscup::sim {

struct RateKey {
  uint16_t nameserver;
  dns::Name name;
  bool operator<(const RateKey& other) const {
    if (nameserver != other.nameserver) {
      return nameserver < other.nameserver;
    }
    return name < other.name;
  }
};

/// Queries/second per (nameserver, domain) over records whose timestamp is
/// within [0, window_s); domains never queried in the window are absent.
std::map<RateKey, double> compute_rates(
    const std::vector<TraceRecord>& trace, double window_s);

/// Per the paper's lease-length table: regular domains 6 days, CDN 200 s,
/// Dyn 6000 s (§5.1).
double max_lease_for(const workload::DomainInfo& domain);

/// Builds optimizer demands from the rate table.  `domain_index` maps a
/// name to its population entry (built internally via linear lookup —
/// callers pass the same population that generated the trace).  Filters
/// entries with a category not in `categories` when non-empty.
std::vector<core::DemandEntry> compute_demands(
    const workload::DomainPopulation& population,
    const std::map<RateKey, double>& rates,
    const std::vector<workload::DomainCategory>& categories = {});

}  // namespace dnscup::sim

#include "sim/consistency_sim.h"

#include <unordered_map>

#include "util/rng.h"

namespace dnscup::sim {

namespace {

struct Truth {
  dns::Ipv4 address;
  net::SimTime changed_at = 0;
};

}  // namespace

ConsistencyResult run_consistency_experiment(const ConsistencyConfig& config) {
  TestbedConfig testbed_config;
  testbed_config.zones = config.zones;
  testbed_config.caches = config.caches;
  testbed_config.dnscup_enabled = config.dnscup_enabled;
  testbed_config.record_ttl = config.record_ttl;
  testbed_config.max_lease = config.max_lease;
  testbed_config.link.loss_probability = config.loss_probability;
  testbed_config.notification_max_retries = config.notification_max_retries;
  testbed_config.seed = config.seed;
  Testbed testbed(testbed_config);

  util::Rng rng(config.seed ^ 0x5eedf00dULL);
  const util::ZipfDistribution zipf(config.zones, config.zipf_exponent);
  net::EventLoop& loop = testbed.loop();
  const net::SimTime end_time = net::from_seconds(config.duration_s);

  // The experiment driver's own tallies live in the same registry as the
  // protocol stack's, so one snapshot captures the whole run.
  metrics::MetricsRegistry& registry = testbed.metrics();
  metrics::Counter queries = registry.counter("consistency_queries");
  metrics::Counter fresh_answers =
      registry.counter("consistency_answers", {{"result", "fresh"}});
  metrics::Counter stale_answers =
      registry.counter("consistency_answers", {{"result", "stale"}});
  metrics::Counter changes = registry.counter("consistency_changes_applied");
  metrics::HistogramMetric stale_age_s =
      registry.histogram("consistency_stale_age_s");

  ConsistencyResult result;

  // Authoritative truth per zone, as known to the experiment driver.
  std::vector<Truth> truth(config.zones);
  for (std::size_t z = 0; z < config.zones; ++z) {
    const auto outcome = testbed.resolve(0, testbed.web_host(z),
                                         dns::RRType::kA);
    // Warm-up resolution also primes cache 0; read the truth from the
    // master's zone data directly to stay independent of it.
    (void)outcome;
    const dns::Zone* zone = testbed.master().find_zone(testbed.web_host(z));
    const dns::RRset* a = zone->find(testbed.web_host(z), dns::RRType::kA);
    truth[z].address = std::get<dns::ARdata>(a->rdatas.front()).address;
  }

  // ---- change injector ---------------------------------------------------
  uint32_t next_fresh_ip = net::make_ip(198, 18, 0, 1);
  std::function<void()> schedule_change = [&] {
    const net::Duration delay =
        net::from_seconds(rng.exponential(1.0 / config.mean_change_interval_s));
    if (loop.now() + delay >= end_time) return;
    loop.schedule(delay, [&] {
      const std::size_t zone = zipf.sample(rng);
      const dns::Ipv4 fresh{next_fresh_ip++};
      testbed.repoint_web_host_async(zone, fresh);
      truth[zone] = Truth{fresh, loop.now()};
      ++changes;
      schedule_change();
    });
  };
  schedule_change();

  // ---- client query streams ----------------------------------------------
  std::function<void(std::size_t)> schedule_query = [&](std::size_t cache) {
    const net::Duration delay =
        net::from_seconds(rng.exponential(config.queries_per_cache_per_s));
    if (loop.now() + delay >= end_time) return;
    loop.schedule(delay, [&, cache] {
      const std::size_t zone = zipf.sample(rng);
      ++queries;
      testbed.cache(cache).resolve(
          testbed.web_host(zone), dns::RRType::kA,
          [&, zone](const server::CachingResolver::Outcome& outcome) {
            if (outcome.status !=
                    server::CachingResolver::Outcome::Status::kOk ||
                outcome.rrset.empty()) {
              return;
            }
            const auto answered =
                std::get<dns::ARdata>(outcome.rrset.rdatas.front()).address;
            const Truth& t = truth[zone];
            if (answered != t.address) {
              ++stale_answers;
              stale_age_s.add(net::to_seconds(loop.now() - t.changed_at));
            } else {
              ++fresh_answers;
            }
          });
      schedule_query(cache);
    });
  };
  for (std::size_t c = 0; c < config.caches; ++c) schedule_query(c);

  loop.run_until(end_time);
  loop.run_for(net::seconds(30));  // drain in-flight resolutions

  // Everything below is a read-back from the run's registry: the bespoke
  // tallies this experiment once kept are now ordinary instruments.
  result.queries = queries.value();
  result.answered = fresh_answers.value() + stale_answers.value();
  result.stale_answers = stale_answers.value();
  result.changes = changes.value();
  result.stale_age_s = stale_age_s.moments();
  result.stale_fraction =
      result.answered == 0
          ? 0.0
          : static_cast<double>(result.stale_answers) /
                static_cast<double>(result.answered);
  result.packets_delivered = testbed.network().packets_delivered();
  result.packets_dropped = testbed.network().packets_dropped();
  if (testbed.dnscup() != nullptr) {
    const auto notifier_stats = testbed.dnscup()->notifier().stats();
    result.cache_updates_sent =
        notifier_stats.updates_sent + notifier_stats.retransmissions;
    result.cache_update_acks = notifier_stats.acks_received;
    result.leases_granted = testbed.dnscup()->listener().stats().leases_granted;
    result.notification_failures = notifier_stats.failures;
  }
  result.snapshot = testbed.metrics_snapshot();
  return result;
}

}  // namespace dnscup::sim

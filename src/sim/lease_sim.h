// Event-driven validation of the §4.1 lease model.
//
// evaluate_plan (core/dynamic_lease.h) computes storage and message costs
// from the closed-form P and M; this simulator replays actual Poisson
// query arrivals against a lease plan, granting and expiring real leases,
// and measures the same quantities by counting.  Agreement between the
// two is a property test of the paper's §4.1 analysis, and the Figure-5
// bench uses whichever is appropriate per sweep point.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dynamic_lease.h"
#include "util/metrics.h"

namespace dnscup::sim {

struct LeaseSimResult {
  double duration_s = 0.0;
  uint64_t queries = 0;             ///< total arrivals across all pairs
  uint64_t messages = 0;            ///< arrivals finding no live lease
  double message_rate = 0.0;        ///< messages / duration
  double mean_live_leases = 0.0;    ///< time-averaged live-lease count
  double storage_percentage = 0.0;  ///< mean live / pair count, x100
  double query_rate_percentage = 0.0;  ///< messages / queries, x100
  /// Snapshot of the run's private lease_sim_* instruments, stamped with
  /// the simulated duration.  Deterministic for a given (demands, lease
  /// lengths, duration, seed) tuple.
  metrics::Snapshot snapshot;
};

/// Replays `duration_s` of Poisson arrivals for every demand pair under
/// the given per-pair lease lengths (same indexing as the demands).
LeaseSimResult simulate_leases(const std::vector<core::DemandEntry>& demands,
                               const std::vector<double>& lease_lengths,
                               double duration_s, uint64_t seed);

}  // namespace dnscup::sim

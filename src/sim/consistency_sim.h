// End-to-end cache-consistency experiment over the full protocol stack.
//
// Runs the Figure-7 testbed (root + master + slaves + caches) for a span
// of simulated time while (a) clients at every cache issue Poisson,
// Zipf-weighted queries for the zones' web hosts and (b) an operator
// repoints web hosts via RFC 2136 updates at random times — the paper's
// motivating "mapping change" events (disasters, dynamic DNS, CDN
// rebalancing).  Every answer a client receives is compared against the
// authoritative truth at that instant.
//
// With DNScup enabled the master pushes CACHE-UPDATEs to leaseholders, so
// stale answers should all but vanish at a small message overhead; with it
// disabled (pure TTL), staleness lasts up to a full TTL after each change.
// This quantifies the paper's §1/§3 motivation head-to-head.
#pragma once

#include <cstdint>

#include "sim/testbed.h"
#include "util/metrics.h"
#include "util/stats.h"

namespace dnscup::sim {

struct ConsistencyConfig {
  std::size_t zones = 40;
  std::size_t caches = 2;
  bool dnscup_enabled = true;
  uint32_t record_ttl = 300;          ///< seconds
  net::Duration max_lease = net::hours(6);
  double duration_s = 4 * 3600.0;
  double queries_per_cache_per_s = 0.5;
  double zipf_exponent = 0.9;
  double mean_change_interval_s = 120.0;  ///< between repoint events
  double loss_probability = 0.0;          ///< injected network loss
  int notification_max_retries = 5;       ///< CACHE-UPDATE retry budget
  uint64_t seed = 99;
};

struct ConsistencyResult {
  uint64_t queries = 0;
  uint64_t answered = 0;
  uint64_t stale_answers = 0;       ///< answer != truth at answer time
  uint64_t changes = 0;             ///< repoint events applied
  double stale_fraction = 0.0;
  util::RunningStats stale_age_s;   ///< answer time - change time, stale only
  uint64_t packets_delivered = 0;   ///< total network traffic
  uint64_t packets_dropped = 0;
  // DNScup-side counters (zero when disabled):
  uint64_t cache_updates_sent = 0;
  uint64_t cache_update_acks = 0;
  uint64_t leases_granted = 0;
  uint64_t notification_failures = 0;  ///< pushes abandoned after retries
  /// Sim-time-stamped snapshot of every instrument in the run's private
  /// registry: the testbed stack plus the experiment's own consistency_*
  /// counters.  Identically-configured runs produce byte-identical
  /// serializations.
  metrics::Snapshot snapshot;
};

ConsistencyResult run_consistency_experiment(const ConsistencyConfig& config);

}  // namespace dnscup::sim

#include "sim/rates.h"

#include <algorithm>
#include <unordered_map>

#include "util/assert.h"

namespace dnscup::sim {

std::map<RateKey, double> compute_rates(const std::vector<TraceRecord>& trace,
                                        double window_s) {
  DNSCUP_ASSERT(window_s > 0.0);
  std::map<RateKey, std::size_t> counts;
  const net::SimTime window = net::from_seconds(window_s);
  for (const auto& record : trace) {
    if (record.timestamp >= window) continue;
    ++counts[RateKey{record.nameserver, record.qname}];
  }
  std::map<RateKey, double> rates;
  for (const auto& [key, count] : counts) {
    rates[key] = static_cast<double>(count) / window_s;
  }
  return rates;
}

double max_lease_for(const workload::DomainInfo& domain) {
  switch (domain.category) {
    case workload::DomainCategory::kRegular: return 6.0 * 86400.0;
    case workload::DomainCategory::kCdn: return 200.0;
    case workload::DomainCategory::kDyn: return 6000.0;
  }
  return 0.0;
}

std::vector<core::DemandEntry> compute_demands(
    const workload::DomainPopulation& population,
    const std::map<RateKey, double>& rates,
    const std::vector<workload::DomainCategory>& categories) {
  // Index the population by name once.
  std::unordered_map<dns::Name, std::size_t, dns::NameHash> index;
  index.reserve(population.size());
  for (std::size_t i = 0; i < population.size(); ++i) {
    index.emplace(population[i].name, i);
  }

  std::vector<core::DemandEntry> demands;
  demands.reserve(rates.size());
  for (const auto& [key, rate] : rates) {
    auto it = index.find(key.name);
    if (it == index.end()) continue;
    const workload::DomainInfo& domain = population[it->second];
    if (!categories.empty() &&
        std::find(categories.begin(), categories.end(), domain.category) ==
            categories.end()) {
      continue;
    }
    core::DemandEntry entry;
    entry.record = it->second;
    entry.cache = key.nameserver;
    entry.rate = rate;
    entry.max_lease = max_lease_for(domain);
    demands.push_back(entry);
  }
  return demands;
}

}  // namespace dnscup::sim

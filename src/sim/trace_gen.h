// Synthetic academic-environment DNS traces (substitute for the paper's
// one-week collection at three local nameservers serving ~2000 clients,
// July 2003).
//
// Each client issues Web sessions as a Poisson process; each session
// resolves a domain drawn Zipf-weighted by the population's request
// counts.  A per-client resource-record cache (default 15 minutes — the
// Mozilla default the paper assumes) suppresses repeat queries, so the
// inter-arrival stream a nameserver sees matches the client-caching
// analysis of Figure 4.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/trace.h"
#include "workload/domain_population.h"

namespace dnscup::sim {

struct TraceGenConfig {
  uint16_t nameservers = 3;
  uint32_t clients = 2000;
  double duration_s = 7 * 86400.0;    ///< one week
  double client_cache_s = 900.0;      ///< 15-minute browser cache
  double sessions_per_client_hour = 2.0;
  double zipf_exponent = 0.9;
  /// Mean queries per browsing session for the *same* domain (page loads
  /// re-resolving).  1.0 = single query.  With short client caching the
  /// repeats reach the nameserver as bursts, pushing the inter-arrival CV
  /// above 1 — the left side of the paper's Figure 4; longer caching
  /// absorbs them and the CV settles at the Poisson value of 1.
  double burst_queries_mean = 1.0;
  /// Mean spacing between queries within a burst (seconds).
  double burst_spacing_s = 30.0;
  uint64_t seed = 11;
};

/// Generates a time-sorted trace over the population.
std::vector<TraceRecord> generate_trace(
    const workload::DomainPopulation& population,
    const TraceGenConfig& config);

}  // namespace dnscup::sim

#include "sim/lease_sim.h"

#include "util/assert.h"
#include "util/rng.h"

namespace dnscup::sim {

LeaseSimResult simulate_leases(const std::vector<core::DemandEntry>& demands,
                               const std::vector<double>& lease_lengths,
                               double duration_s, uint64_t seed) {
  DNSCUP_ASSERT(lease_lengths.size() == demands.size());
  DNSCUP_ASSERT(duration_s > 0.0);

  util::Rng master(seed);
  LeaseSimResult result;
  result.duration_s = duration_s;
  double lease_time_integral = 0.0;  // Σ over pairs of total leased time

  // Per-run private registry: replays are independent, so their counters
  // must not alias across calls.
  metrics::MetricsRegistry registry;
  metrics::Counter queries = registry.counter("lease_sim_queries");
  metrics::Counter absorbed =
      registry.counter("lease_sim_arrivals", {{"outcome", "lease_hit"}});
  metrics::Counter messages =
      registry.counter("lease_sim_arrivals", {{"outcome", "authority"}});
  metrics::Gauge mean_live = registry.gauge("lease_sim_mean_live_leases");
  metrics::Gauge storage_pct = registry.gauge("lease_sim_storage_pct");
  metrics::Gauge query_rate_pct = registry.gauge("lease_sim_query_rate_pct");
  metrics::HistogramMetric lease_span_s =
      registry.histogram("lease_sim_lease_span_s");

  // Pairs are independent: simulate each pair's renewal process alone.
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const double rate = demands[i].rate;
    const double lease = lease_lengths[i];
    if (rate <= 0.0) continue;
    util::Rng rng = master.fork();

    double t = rng.exponential(rate);
    double lease_until = 0.0;
    while (t < duration_s) {
      ++queries;
      if (t >= lease_until) {
        // No live lease: this query reaches the authority (a renewal under
        // leasing, a plain query under polling).
        ++messages;
        if (lease > 0.0) {
          const double end = std::min(t + lease, duration_s);
          lease_time_integral += end - t;
          lease_span_s.add(end - t);
          lease_until = t + lease;
        }
      } else {
        ++absorbed;
      }
      t += rng.exponential(rate);
    }
  }

  result.queries = queries.value();
  result.messages = messages.value();
  result.message_rate = static_cast<double>(result.messages) / duration_s;
  result.mean_live_leases = lease_time_integral / duration_s;
  result.storage_percentage =
      demands.empty() ? 0.0
                      : 100.0 * result.mean_live_leases /
                            static_cast<double>(demands.size());
  result.query_rate_percentage =
      result.queries == 0 ? 0.0
                          : 100.0 * static_cast<double>(result.messages) /
                                static_cast<double>(result.queries);
  mean_live.set(result.mean_live_leases);
  storage_pct.set(result.storage_percentage);
  query_rate_pct.set(result.query_rate_percentage);
  result.snapshot =
      registry.snapshot(static_cast<int64_t>(duration_s * 1'000'000.0));
  return result;
}

}  // namespace dnscup::sim

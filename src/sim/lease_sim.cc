#include "sim/lease_sim.h"

#include "util/assert.h"
#include "util/rng.h"

namespace dnscup::sim {

LeaseSimResult simulate_leases(const std::vector<core::DemandEntry>& demands,
                               const std::vector<double>& lease_lengths,
                               double duration_s, uint64_t seed) {
  DNSCUP_ASSERT(lease_lengths.size() == demands.size());
  DNSCUP_ASSERT(duration_s > 0.0);

  util::Rng master(seed);
  LeaseSimResult result;
  result.duration_s = duration_s;
  double lease_time_integral = 0.0;  // Σ over pairs of total leased time

  // Pairs are independent: simulate each pair's renewal process alone.
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const double rate = demands[i].rate;
    const double lease = lease_lengths[i];
    if (rate <= 0.0) continue;
    util::Rng rng = master.fork();

    double t = rng.exponential(rate);
    double lease_until = 0.0;
    while (t < duration_s) {
      ++result.queries;
      if (t >= lease_until) {
        // No live lease: this query reaches the authority (a renewal under
        // leasing, a plain query under polling).
        ++result.messages;
        if (lease > 0.0) {
          const double end = std::min(t + lease, duration_s);
          lease_time_integral += end - t;
          lease_until = t + lease;
        }
      }
      t += rng.exponential(rate);
    }
  }

  result.message_rate = static_cast<double>(result.messages) / duration_s;
  result.mean_live_leases = lease_time_integral / duration_s;
  result.storage_percentage =
      demands.empty() ? 0.0
                      : 100.0 * result.mean_live_leases /
                            static_cast<double>(demands.size());
  result.query_rate_percentage =
      result.queries == 0 ? 0.0
                          : 100.0 * static_cast<double>(result.messages) /
                                static_cast<double>(result.queries);
  return result;
}

}  // namespace dnscup::sim

// ResourceRecord and RRset containers plus their wire encoding
// (RFC 1035 §3.2, §4.1.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rdata.h"
#include "dns/wire.h"
#include "util/result.h"

namespace dnscup::dns {

struct ResourceRecord {
  Name name;
  RRClass rrclass = RRClass::kIN;
  uint32_t ttl = 0;
  Rdata rdata;

  RRType type() const { return rdata_type(rdata); }

  /// "name ttl class type rdata" presentation line.
  std::string to_string() const;

  bool operator==(const ResourceRecord&) const = default;
};

/// All records sharing (name, type, class); members share one TTL, per
/// RFC 2181 §5.2.
struct RRset {
  Name name;
  RRType type = RRType::kA;
  RRClass rrclass = RRClass::kIN;
  uint32_t ttl = 0;
  std::vector<Rdata> rdatas;

  bool empty() const { return rdatas.empty(); }
  std::size_t size() const { return rdatas.size(); }

  /// True if `value` is already present (exact match).
  bool contains(const Rdata& value) const;

  /// Adds if absent; returns true when the set changed.
  bool add(Rdata value);

  /// Removes an exact match; returns true when the set changed.
  bool remove(const Rdata& value);

  /// Expands to individual records.
  std::vector<ResourceRecord> to_records() const;

  /// Unordered payload comparison (TTL ignored) — used by the DNScup change
  /// detector to distinguish real data changes from TTL refreshes.
  bool same_data(const RRset& other) const;

  bool operator==(const RRset&) const = default;
};

/// Encodes one record: NAME TYPE CLASS TTL RDLENGTH RDATA.
void encode_record(const ResourceRecord& rr, ByteWriter& writer);

/// Encodes every member of an RRset directly from the set — no
/// ResourceRecord materialization, so no Name copies.  Bytes are identical
/// to calling encode_record on each of set.to_records().
void encode_rrset(const RRset& set, ByteWriter& writer);

/// Decodes one record at the reader's cursor.
util::Result<ResourceRecord> decode_record(ByteReader& reader);

}  // namespace dnscup::dns

#include "dns/rr.h"

#include <algorithm>
#include <sstream>

#include "util/assert.h"

namespace dnscup::dns {

std::string ResourceRecord::to_string() const {
  std::ostringstream os;
  os << name.to_string() << ' ' << ttl << ' ' << dns::to_string(rrclass)
     << ' ' << dns::to_string(type()) << ' ' << rdata_to_string(rdata);
  return os.str();
}

bool RRset::contains(const Rdata& value) const {
  return std::find(rdatas.begin(), rdatas.end(), value) != rdatas.end();
}

bool RRset::add(Rdata value) {
  DNSCUP_ASSERT(rdata_type(value) == type);
  if (contains(value)) return false;
  rdatas.push_back(std::move(value));
  return true;
}

bool RRset::remove(const Rdata& value) {
  auto it = std::find(rdatas.begin(), rdatas.end(), value);
  if (it == rdatas.end()) return false;
  rdatas.erase(it);
  return true;
}

std::vector<ResourceRecord> RRset::to_records() const {
  std::vector<ResourceRecord> out;
  out.reserve(rdatas.size());
  for (const auto& rd : rdatas) {
    out.push_back(ResourceRecord{name, rrclass, ttl, rd});
  }
  return out;
}

bool RRset::same_data(const RRset& other) const {
  if (rdatas.size() != other.rdatas.size()) return false;
  // Order-insensitive: every rdata of ours appears in theirs (both sets are
  // duplicate-free by construction).
  for (const auto& rd : rdatas) {
    if (!other.contains(rd)) return false;
  }
  return true;
}

namespace {

void encode_record_parts(const Name& name, RRType type, RRClass rrclass,
                         uint32_t ttl, const Rdata& rdata,
                         ByteWriter& writer) {
  writer.name(name);
  writer.u16(static_cast<uint16_t>(type));
  writer.u16(static_cast<uint16_t>(rrclass));
  writer.u32(ttl);
  const std::size_t rdlength_at = writer.size();
  writer.u16(0);  // placeholder
  const std::size_t rdata_start = writer.size();
  encode_rdata(rdata, writer);
  const std::size_t rdata_len = writer.size() - rdata_start;
  DNSCUP_ASSERT(rdata_len <= 0xFFFF);
  writer.patch_u16(rdlength_at, static_cast<uint16_t>(rdata_len));
}

}  // namespace

void encode_record(const ResourceRecord& rr, ByteWriter& writer) {
  encode_record_parts(rr.name, rr.type(), rr.rrclass, rr.ttl, rr.rdata,
                      writer);
}

void encode_rrset(const RRset& set, ByteWriter& writer) {
  for (const auto& rd : set.rdatas) {
    encode_record_parts(set.name, set.type, set.rrclass, set.ttl, rd, writer);
  }
}

util::Result<ResourceRecord> decode_record(ByteReader& reader) {
  ResourceRecord rr;
  DNSCUP_ASSIGN_OR_RETURN(rr.name, reader.name());
  DNSCUP_ASSIGN_OR_RETURN(uint16_t type_raw, reader.u16());
  DNSCUP_ASSIGN_OR_RETURN(uint16_t class_raw, reader.u16());
  DNSCUP_ASSIGN_OR_RETURN(rr.ttl, reader.u32());
  DNSCUP_ASSIGN_OR_RETURN(uint16_t rdlength, reader.u16());
  rr.rrclass = static_cast<RRClass>(class_raw);
  DNSCUP_ASSIGN_OR_RETURN(
      rr.rdata, decode_rdata(static_cast<RRType>(type_raw), rdlength, reader));
  return rr;
}

}  // namespace dnscup::dns

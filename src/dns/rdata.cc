#include "dns/rdata.h"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "util/assert.h"

namespace dnscup::dns {

namespace {

util::Result<uint32_t> parse_u32(std::string_view text) {
  uint32_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "bad integer '" + std::string(text) + "'");
  }
  return v;
}

std::vector<std::string_view> split_ws(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < text.size() && text[j] != ' ' && text[j] != '\t') ++j;
    if (j > i) out.push_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

}  // namespace

const char* to_string(RRType type) {
  switch (type) {
    case RRType::kA: return "A";
    case RRType::kNS: return "NS";
    case RRType::kCNAME: return "CNAME";
    case RRType::kSOA: return "SOA";
    case RRType::kPTR: return "PTR";
    case RRType::kMX: return "MX";
    case RRType::kTXT: return "TXT";
    case RRType::kAAAA: return "AAAA";
    case RRType::kOPT: return "OPT";
    case RRType::kIXFR: return "IXFR";
    case RRType::kAXFR: return "AXFR";
    case RRType::kANY: return "ANY";
  }
  return "TYPE?";
}

const char* to_string(RRClass cls) {
  switch (cls) {
    case RRClass::kIN: return "IN";
    case RRClass::kNONE: return "NONE";
    case RRClass::kANY: return "ANY";
  }
  return "CLASS?";
}

util::Result<RRType> rrtype_from_string(std::string_view text) {
  if (text == "A") return RRType::kA;
  if (text == "NS") return RRType::kNS;
  if (text == "CNAME") return RRType::kCNAME;
  if (text == "SOA") return RRType::kSOA;
  if (text == "PTR") return RRType::kPTR;
  if (text == "MX") return RRType::kMX;
  if (text == "TXT") return RRType::kTXT;
  if (text == "AAAA") return RRType::kAAAA;
  if (text == "ANY") return RRType::kANY;
  if (text == "IXFR") return RRType::kIXFR;
  if (text == "AXFR") return RRType::kAXFR;
  return util::make_error(util::ErrorCode::kUnsupported,
                          "unknown RR type '" + std::string(text) + "'");
}

util::Result<Ipv4> Ipv4::parse(std::string_view dotted) {
  uint32_t addr = 0;
  int octets = 0;
  std::size_t start = 0;
  while (start <= dotted.size() && octets < 4) {
    const std::size_t dot = dotted.find('.', start);
    const std::string_view part = dotted.substr(
        start, dot == std::string_view::npos ? std::string_view::npos
                                             : dot - start);
    uint32_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), value);
    if (ec != std::errc() || ptr != part.data() + part.size() || value > 255 ||
        part.empty()) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "bad IPv4 '" + std::string(dotted) + "'");
    }
    addr = (addr << 8) | value;
    ++octets;
    if (dot == std::string_view::npos) {
      start = dotted.size() + 1;
      break;
    }
    start = dot + 1;
  }
  if (octets != 4 || start != dotted.size() + 1) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "bad IPv4 '" + std::string(dotted) + "'");
  }
  return Ipv4{addr};
}

std::string Ipv4::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (addr >> 24) & 0xFF,
                (addr >> 16) & 0xFF, (addr >> 8) & 0xFF, addr & 0xFF);
  return buf;
}

RRType rdata_type(const Rdata& rdata) {
  return std::visit(
      [](const auto& value) -> RRType {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, ARdata>) return RRType::kA;
        else if constexpr (std::is_same_v<T, NSRdata>) return RRType::kNS;
        else if constexpr (std::is_same_v<T, CNAMERdata>) return RRType::kCNAME;
        else if constexpr (std::is_same_v<T, SOARdata>) return RRType::kSOA;
        else if constexpr (std::is_same_v<T, PTRRdata>) return RRType::kPTR;
        else if constexpr (std::is_same_v<T, MXRdata>) return RRType::kMX;
        else if constexpr (std::is_same_v<T, TXTRdata>) return RRType::kTXT;
        else if constexpr (std::is_same_v<T, AAAARdata>) return RRType::kAAAA;
        else return static_cast<RRType>(value.type);
      },
      rdata);
}

void encode_rdata(const Rdata& rdata, ByteWriter& writer) {
  std::visit(
      [&writer](const auto& value) {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          writer.u32(value.address.addr);
        } else if constexpr (std::is_same_v<T, NSRdata>) {
          writer.name_uncompressed(value.nsdname);
        } else if constexpr (std::is_same_v<T, CNAMERdata>) {
          writer.name_uncompressed(value.target);
        } else if constexpr (std::is_same_v<T, SOARdata>) {
          writer.name_uncompressed(value.mname);
          writer.name_uncompressed(value.rname);
          writer.u32(value.serial);
          writer.u32(value.refresh);
          writer.u32(value.retry);
          writer.u32(value.expire);
          writer.u32(value.minimum);
        } else if constexpr (std::is_same_v<T, PTRRdata>) {
          writer.name_uncompressed(value.ptrdname);
        } else if constexpr (std::is_same_v<T, MXRdata>) {
          writer.u16(value.preference);
          writer.name_uncompressed(value.exchange);
        } else if constexpr (std::is_same_v<T, TXTRdata>) {
          for (const auto& s : value.strings) {
            DNSCUP_ASSERT(s.size() <= 255);
            writer.u8(static_cast<uint8_t>(s.size()));
            writer.bytes(
                {reinterpret_cast<const uint8_t*>(s.data()), s.size()});
          }
        } else if constexpr (std::is_same_v<T, AAAARdata>) {
          writer.bytes({value.address.data(), value.address.size()});
        } else {
          writer.bytes({value.data.data(), value.data.size()});
        }
      },
      rdata);
}

util::Result<Rdata> decode_rdata(RRType type, uint16_t rdlength,
                                 ByteReader& reader) {
  const std::size_t end = reader.offset() + rdlength;
  if (reader.remaining() < rdlength) {
    return util::make_error(util::ErrorCode::kTruncated,
                            "rdata past end of message");
  }
  if (rdlength == 0) {
    // Empty RDATA appears in RFC 2136 prerequisite/update records
    // ("RRset exists", "delete RRset"); carry it as a typed empty payload.
    return Rdata{GenericRdata{static_cast<uint16_t>(type), {}}};
  }
  auto check_consumed = [&](Rdata value) -> util::Result<Rdata> {
    if (reader.offset() != end) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "rdlength does not match rdata");
    }
    return value;
  };

  switch (type) {
    case RRType::kA: {
      DNSCUP_ASSIGN_OR_RETURN(uint32_t addr, reader.u32());
      return check_consumed(ARdata{Ipv4{addr}});
    }
    case RRType::kNS: {
      DNSCUP_ASSIGN_OR_RETURN(Name n, reader.name());
      return check_consumed(NSRdata{std::move(n)});
    }
    case RRType::kCNAME: {
      DNSCUP_ASSIGN_OR_RETURN(Name n, reader.name());
      return check_consumed(CNAMERdata{std::move(n)});
    }
    case RRType::kSOA: {
      SOARdata soa;
      DNSCUP_ASSIGN_OR_RETURN(soa.mname, reader.name());
      DNSCUP_ASSIGN_OR_RETURN(soa.rname, reader.name());
      DNSCUP_ASSIGN_OR_RETURN(soa.serial, reader.u32());
      DNSCUP_ASSIGN_OR_RETURN(soa.refresh, reader.u32());
      DNSCUP_ASSIGN_OR_RETURN(soa.retry, reader.u32());
      DNSCUP_ASSIGN_OR_RETURN(soa.expire, reader.u32());
      DNSCUP_ASSIGN_OR_RETURN(soa.minimum, reader.u32());
      return check_consumed(std::move(soa));
    }
    case RRType::kPTR: {
      DNSCUP_ASSIGN_OR_RETURN(Name n, reader.name());
      return check_consumed(PTRRdata{std::move(n)});
    }
    case RRType::kMX: {
      MXRdata mx;
      DNSCUP_ASSIGN_OR_RETURN(mx.preference, reader.u16());
      DNSCUP_ASSIGN_OR_RETURN(mx.exchange, reader.name());
      return check_consumed(std::move(mx));
    }
    case RRType::kTXT: {
      TXTRdata txt;
      while (reader.offset() < end) {
        DNSCUP_ASSIGN_OR_RETURN(uint8_t len, reader.u8());
        DNSCUP_ASSIGN_OR_RETURN(auto raw, reader.bytes(len));
        txt.strings.emplace_back(raw.begin(), raw.end());
      }
      return check_consumed(std::move(txt));
    }
    case RRType::kAAAA: {
      if (rdlength != 16) {
        return util::make_error(util::ErrorCode::kMalformed,
                                "AAAA rdlength != 16");
      }
      DNSCUP_ASSIGN_OR_RETURN(auto raw, reader.bytes(16));
      AAAARdata v;
      std::copy(raw.begin(), raw.end(), v.address.begin());
      return check_consumed(std::move(v));
    }
    default: {
      DNSCUP_ASSIGN_OR_RETURN(auto raw, reader.bytes(rdlength));
      return Rdata{GenericRdata{static_cast<uint16_t>(type),
                                std::vector<uint8_t>(raw.begin(), raw.end())}};
    }
  }
}

std::string rdata_to_string(const Rdata& rdata) {
  return std::visit(
      [](const auto& value) -> std::string {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          return value.address.to_string();
        } else if constexpr (std::is_same_v<T, NSRdata>) {
          return value.nsdname.to_string();
        } else if constexpr (std::is_same_v<T, CNAMERdata>) {
          return value.target.to_string();
        } else if constexpr (std::is_same_v<T, SOARdata>) {
          std::ostringstream os;
          os << value.mname.to_string() << ' ' << value.rname.to_string()
             << ' ' << value.serial << ' ' << value.refresh << ' '
             << value.retry << ' ' << value.expire << ' ' << value.minimum;
          return os.str();
        } else if constexpr (std::is_same_v<T, PTRRdata>) {
          return value.ptrdname.to_string();
        } else if constexpr (std::is_same_v<T, MXRdata>) {
          return std::to_string(value.preference) + " " +
                 value.exchange.to_string();
        } else if constexpr (std::is_same_v<T, TXTRdata>) {
          std::string out;
          for (const auto& s : value.strings) {
            if (!out.empty()) out += ' ';
            out += '"';
            out += s;
            out += '"';
          }
          return out;
        } else if constexpr (std::is_same_v<T, AAAARdata>) {
          char buf[40];
          char* p = buf;
          for (int i = 0; i < 16; i += 2) {
            p += std::snprintf(p, 6, i == 0 ? "%02x%02x" : ":%02x%02x",
                               value.address[static_cast<std::size_t>(i)],
                               value.address[static_cast<std::size_t>(i + 1)]);
          }
          return buf;
        } else {
          return "\\# " + std::to_string(value.data.size());
        }
      },
      rdata);
}

util::Result<Rdata> rdata_from_string(RRType type, std::string_view text) {
  const auto fields = split_ws(text);
  auto need = [&](std::size_t n) -> util::Status {
    if (fields.size() != n) {
      return util::make_error(
          util::ErrorCode::kMalformed,
          std::string("expected ") + std::to_string(n) + " fields for " +
              to_string(type) + ", got " + std::to_string(fields.size()));
    }
    return {};
  };

  switch (type) {
    case RRType::kA: {
      DNSCUP_TRY(need(1));
      DNSCUP_ASSIGN_OR_RETURN(Ipv4 a, Ipv4::parse(fields[0]));
      return Rdata{ARdata{a}};
    }
    case RRType::kNS: {
      DNSCUP_TRY(need(1));
      DNSCUP_ASSIGN_OR_RETURN(Name n, Name::parse(fields[0]));
      return Rdata{NSRdata{std::move(n)}};
    }
    case RRType::kCNAME: {
      DNSCUP_TRY(need(1));
      DNSCUP_ASSIGN_OR_RETURN(Name n, Name::parse(fields[0]));
      return Rdata{CNAMERdata{std::move(n)}};
    }
    case RRType::kSOA: {
      DNSCUP_TRY(need(7));
      SOARdata soa;
      DNSCUP_ASSIGN_OR_RETURN(soa.mname, Name::parse(fields[0]));
      DNSCUP_ASSIGN_OR_RETURN(soa.rname, Name::parse(fields[1]));
      DNSCUP_ASSIGN_OR_RETURN(soa.serial, parse_u32(fields[2]));
      DNSCUP_ASSIGN_OR_RETURN(soa.refresh, parse_u32(fields[3]));
      DNSCUP_ASSIGN_OR_RETURN(soa.retry, parse_u32(fields[4]));
      DNSCUP_ASSIGN_OR_RETURN(soa.expire, parse_u32(fields[5]));
      DNSCUP_ASSIGN_OR_RETURN(soa.minimum, parse_u32(fields[6]));
      return Rdata{std::move(soa)};
    }
    case RRType::kPTR: {
      DNSCUP_TRY(need(1));
      DNSCUP_ASSIGN_OR_RETURN(Name n, Name::parse(fields[0]));
      return Rdata{PTRRdata{std::move(n)}};
    }
    case RRType::kMX: {
      DNSCUP_TRY(need(2));
      DNSCUP_ASSIGN_OR_RETURN(uint32_t pref, parse_u32(fields[0]));
      if (pref > 0xFFFF) {
        return util::make_error(util::ErrorCode::kMalformed,
                                "MX preference out of range");
      }
      MXRdata mx;
      mx.preference = static_cast<uint16_t>(pref);
      DNSCUP_ASSIGN_OR_RETURN(mx.exchange, Name::parse(fields[1]));
      return Rdata{std::move(mx)};
    }
    case RRType::kTXT: {
      // Accept quoted or bare strings.
      TXTRdata txt;
      for (auto f : fields) {
        if (f.size() >= 2 && f.front() == '"' && f.back() == '"') {
          f = f.substr(1, f.size() - 2);
        }
        if (f.size() > 255) {
          return util::make_error(util::ErrorCode::kMalformed,
                                  "TXT string over 255 octets");
        }
        txt.strings.emplace_back(f);
      }
      if (txt.strings.empty()) {
        return util::make_error(util::ErrorCode::kMalformed,
                                "TXT needs at least one string");
      }
      return Rdata{std::move(txt)};
    }
    default:
      return util::make_error(
          util::ErrorCode::kUnsupported,
          std::string("no text form for type ") + to_string(type));
  }
}

}  // namespace dnscup::dns

// DNS messages (RFC 1035 §4) with the DNScup extension fields.
//
// DNScup (paper §5.2) adds to the classic message:
//  * opcode 6, CACHE-UPDATE — authoritative-server-initiated push carrying
//    the changed RRsets (layout identical to an UPDATE message: the zone in
//    the question slot, changed RRsets in the answer section);
//  * RRC ("recent reference counter"), a 16-bit query-rate report appended
//    to each question entry;
//  * LLT ("lease length time"), a 16-bit granted-lease duration heading the
//    answer section of a response.
//
// The extension fields are present if and only if the reserved Z bit in the
// header flags is set (the "EXT" flag below).  Extension-unaware peers are
// never sent EXT messages, so the format stays RFC 1035-compatible — the
// paper's incremental-deployment property.
//
// LLT is expressed in units of 10 seconds, so the 16-bit field covers
// leases up to ~7.6 days, enough for the paper's 6-day maximum for regular
// domains.  LLT = 0 means "no lease granted".
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "util/result.h"

namespace dnscup::dns {

enum class Opcode : uint8_t {
  kQuery = 0,
  kIQuery = 1,
  kStatus = 2,
  kNotify = 4,
  kUpdate = 5,       // RFC 2136
  kCacheUpdate = 6,  // DNScup
};

enum class Rcode : uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNXDomain = 3,
  kNotImp = 4,
  kRefused = 5,
  // RFC 2136 update result codes:
  kYXDomain = 6,
  kYXRRSet = 7,
  kNXRRSet = 8,
  kNotAuth = 9,
  kNotZone = 10,
};

const char* to_string(Opcode opcode);
const char* to_string(Rcode rcode);

struct Flags {
  bool qr = false;  ///< response
  Opcode opcode = Opcode::kQuery;
  bool aa = false;  ///< authoritative answer
  bool tc = false;  ///< truncated
  bool rd = false;  ///< recursion desired
  bool ra = false;  ///< recursion available
  bool ext = false; ///< DNScup extension fields present (reserved Z bit)
  Rcode rcode = Rcode::kNoError;

  uint16_t pack() const;
  static Flags unpack(uint16_t raw);

  bool operator==(const Flags&) const = default;
};

struct Question {
  Name qname;
  RRType qtype = RRType::kA;
  RRClass qclass = RRClass::kIN;
  /// DNScup RRC: the querying cache's recent query rate for qname, in
  /// queries per hour (saturating).  Only on the wire when flags.ext.
  uint16_t rrc = 0;

  bool operator==(const Question&) const = default;
};

/// Conversion helpers between seconds and the wire LLT unit (10 s),
/// saturating at the field maximum.
uint16_t llt_from_seconds(uint64_t seconds);
uint64_t llt_to_seconds(uint16_t llt);

/// Conversion helpers between queries/sec and the wire RRC unit
/// (queries per hour), saturating.
uint16_t rrc_from_rate(double queries_per_second);
double rrc_to_rate(uint16_t rrc);

struct Message {
  uint16_t id = 0;
  Flags flags;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authority;
  std::vector<ResourceRecord> additional;
  /// DNScup LLT; meaningful in responses when flags.ext is set.
  uint16_t llt = 0;

  std::vector<uint8_t> encode() const;

  /// Encodes into a caller-supplied writer (typically arena-backed).
  /// Calls writer.begin_message() first, so compression state is fresh and
  /// writer.message() afterwards spans exactly this message's bytes.
  void encode_into(ByteWriter& writer) const;

  static util::Result<Message> decode(std::span<const uint8_t> wire);

  /// Multi-line dig-style rendering for logs and examples.
  std::string to_string() const;

  bool operator==(const Message&) const = default;
};

/// Raw RDATA bytes as they sit in the message.  The span may contain
/// compression pointers (NS/CNAME/SOA/MX targets), so interpret it via
/// RecordView::materialize(), which decodes against the whole message.
/// Valid only while the wire buffer is — one receive batch on the hot path.
struct RdataView {
  std::size_t offset = 0;  ///< wire offset where RDATA starts
  std::span<const uint8_t> bytes;
};

/// One parsed question; qname labels point into the wire buffer.
struct QuestionView {
  NameView qname;
  std::size_t qname_offset = 0;
  RRType qtype = RRType::kA;
  RRClass qclass = RRClass::kIN;
  uint16_t rrc = 0;

  Question materialize() const;
};

/// One structurally validated record.  Stores offsets rather than an
/// inline NameView (records can be numerous; NameView is ~2 KB);
/// materialize() re-reads from the wire, which also deep-parses RDATA.
struct RecordView {
  std::size_t name_offset = 0;  ///< wire offset of NAME
  RRType type = RRType::kA;
  RRClass rrclass = RRClass::kIN;
  uint32_t ttl = 0;
  RdataView rdata;

  util::Result<ResourceRecord> materialize(
      std::span<const uint8_t> wire) const;
};

/// Span-backed decoded message: names and RDATA reference the wire buffer
/// instead of owning copies.  parse() validates structure (header,
/// name walks incl. pointer safety, section counts, RDLENGTH bounds,
/// trailing bytes); RDATA interiors are deep-parsed on materialize().
/// Message::decode() == parse() + materialize(), so views materialize
/// byte-identically to the old owning decode.
struct MessageView {
  uint16_t id = 0;
  Flags flags;
  std::vector<QuestionView> questions;
  std::vector<RecordView> answers;
  std::vector<RecordView> authority;
  std::vector<RecordView> additional;
  uint16_t llt = 0;
  std::span<const uint8_t> wire;

  static util::Result<MessageView> parse(std::span<const uint8_t> wire);

  /// Re-parses into an existing view, reusing its vectors' capacity —
  /// a warm view parses with zero heap allocations.  On error `out` is
  /// left cleared.
  static util::Status parse_into(std::span<const uint8_t> wire,
                                 MessageView& out);

  util::Result<Message> materialize() const;
};

/// Builds a response skeleton: copies id, question(s) and opcode, sets QR,
/// mirrors RD, and sets the EXT flag iff the request carried it.
Message make_response(const Message& request);

/// Maximum UDP payload the paper's prototype respects (RFC 1035 §2.3.4).
inline constexpr std::size_t kMaxUdpPayload = 512;

}  // namespace dnscup::dns

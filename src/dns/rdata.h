// Resource-record types, classes and RDATA payloads (RFC 1035 §3.2-3.4,
// RFC 3596 for AAAA).  The A record is the paper's primary subject
// (~60% of Internet lookups, §3); the others are required for a working
// hierarchy: NS/SOA for delegation and zones, CNAME for alias chains,
// PTR/MX/TXT because real caches hold them too.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.h"
#include "dns/wire.h"
#include "util/result.h"

namespace dnscup::dns {

enum class RRType : uint16_t {
  kA = 1,
  kNS = 2,
  kCNAME = 5,
  kSOA = 6,
  kPTR = 12,
  kMX = 15,
  kTXT = 16,
  kAAAA = 28,
  kOPT = 41,
  kIXFR = 251,   // QTYPE only (RFC 1995 incremental transfer)
  kAXFR = 252,   // QTYPE only
  kANY = 255,    // QTYPE only
};

enum class RRClass : uint16_t {
  kIN = 1,
  kNONE = 254,  // RFC 2136 update semantics
  kANY = 255,
};

const char* to_string(RRType type);
const char* to_string(RRClass cls);
util::Result<RRType> rrtype_from_string(std::string_view text);

/// IPv4 address stored in host byte order.
struct Ipv4 {
  uint32_t addr = 0;

  static util::Result<Ipv4> parse(std::string_view dotted);
  std::string to_string() const;
  auto operator<=>(const Ipv4&) const = default;
};

struct ARdata {
  Ipv4 address;
  bool operator==(const ARdata&) const = default;
};

struct NSRdata {
  Name nsdname;
  bool operator==(const NSRdata&) const = default;
};

struct CNAMERdata {
  Name target;
  bool operator==(const CNAMERdata&) const = default;
};

struct SOARdata {
  Name mname;    ///< primary master nameserver
  Name rname;    ///< responsible mailbox
  uint32_t serial = 0;
  uint32_t refresh = 0;
  uint32_t retry = 0;
  uint32_t expire = 0;
  uint32_t minimum = 0;  ///< negative-caching TTL (RFC 2308)
  bool operator==(const SOARdata&) const = default;
};

struct PTRRdata {
  Name ptrdname;
  bool operator==(const PTRRdata&) const = default;
};

struct MXRdata {
  uint16_t preference = 0;
  Name exchange;
  bool operator==(const MXRdata&) const = default;
};

struct TXTRdata {
  std::vector<std::string> strings;  ///< each <= 255 octets
  bool operator==(const TXTRdata&) const = default;
};

struct AAAARdata {
  std::array<uint8_t, 16> address{};
  bool operator==(const AAAARdata&) const = default;
};

/// Fallback carrier for types we do not interpret (RFC 3597 spirit).
struct GenericRdata {
  uint16_t type = 0;
  std::vector<uint8_t> data;
  bool operator==(const GenericRdata&) const = default;
};

using Rdata = std::variant<ARdata, NSRdata, CNAMERdata, SOARdata, PTRRdata,
                           MXRdata, TXTRdata, AAAARdata, GenericRdata>;

/// The RRType corresponding to the active variant alternative.
RRType rdata_type(const Rdata& rdata);

/// Encodes RDATA (without the RDLENGTH prefix).  Names inside RDATA are
/// written uncompressed so RDATA bytes are position-independent.
void encode_rdata(const Rdata& rdata, ByteWriter& writer);

/// Decodes RDATA of the given type from exactly `rdlength` bytes at the
/// reader's cursor.  Unknown types yield GenericRdata.
util::Result<Rdata> decode_rdata(RRType type, uint16_t rdlength,
                                 ByteReader& reader);

/// Zone-file presentation of the payload ("192.0.2.1",
/// "10 mail.example.com." ...).
std::string rdata_to_string(const Rdata& rdata);

/// Parses presentation RDATA for the given type (inverse of
/// rdata_to_string for all supported types).
util::Result<Rdata> rdata_from_string(RRType type, std::string_view text);

}  // namespace dnscup::dns

#include "dns/zone_text.h"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace dnscup::dns {

namespace {

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i < line.size() && line[i] == ';') break;  // comment
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t' &&
           line[j] != ';') {
      ++j;
    }
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

bool parse_u32_token(std::string_view t, uint32_t& out) {
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), out);
  return ec == std::errc() && ptr == t.data() + t.size();
}

util::Result<Name> resolve_name(std::string_view token, const Name& origin) {
  if (token == "@") return origin;
  DNSCUP_ASSIGN_OR_RETURN(Name n, Name::parse(token));
  // Names without a trailing dot are relative to the origin.
  if (!token.empty() && token.back() != '.') return n.concat(origin);
  return n;
}

util::Error at_line(std::size_t lineno, const util::Error& e) {
  return util::make_error(e.code,
                          "line " + std::to_string(lineno) + ": " + e.message);
}

}  // namespace

util::Result<Zone> parse_zone_text(std::string_view text,
                                   const Name& default_origin) {
  Name origin = default_origin;
  uint32_t default_ttl = 3600;
  std::vector<ResourceRecord> records;
  Name last_owner = origin;

  std::size_t lineno = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string_view line = text.substr(
        start, nl == std::string_view::npos ? std::string_view::npos
                                            : nl - start);
    ++lineno;
    const bool leading_ws =
        !line.empty() && (line[0] == ' ' || line[0] == '\t');
    auto tokens = tokenize(line);
    if (nl == std::string_view::npos) {
      start = text.size() + 1;
    } else {
      start = nl + 1;
    }
    if (tokens.empty()) continue;

    if (tokens[0] == "$ORIGIN") {
      if (tokens.size() != 2) {
        return util::make_error(util::ErrorCode::kMalformed,
                                "line " + std::to_string(lineno) +
                                    ": $ORIGIN needs one argument");
      }
      auto n = Name::parse(tokens[1]);
      if (!n) return at_line(lineno, n.error());
      origin = std::move(n).value();
      last_owner = origin;
      continue;
    }
    if (tokens[0] == "$TTL") {
      if (tokens.size() != 2 || !parse_u32_token(tokens[1], default_ttl)) {
        return util::make_error(util::ErrorCode::kMalformed,
                                "line " + std::to_string(lineno) +
                                    ": bad $TTL");
      }
      continue;
    }

    // Record line: [owner] [ttl] [class] type rdata...
    std::size_t idx = 0;
    Name owner = last_owner;
    if (!leading_ws) {
      auto n = resolve_name(tokens[idx], origin);
      if (!n) return at_line(lineno, n.error());
      owner = std::move(n).value();
      ++idx;
    }
    uint32_t ttl = default_ttl;
    if (idx < tokens.size()) {
      uint32_t v = 0;
      if (parse_u32_token(tokens[idx], v)) {
        ttl = v;
        ++idx;
      }
    }
    if (idx < tokens.size() && (tokens[idx] == "IN")) ++idx;
    if (idx >= tokens.size()) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "line " + std::to_string(lineno) +
                                  ": missing record type");
    }
    auto type = rrtype_from_string(tokens[idx]);
    if (!type) return at_line(lineno, type.error());
    ++idx;

    std::string rdata_text;
    for (std::size_t i = idx; i < tokens.size(); ++i) {
      if (!rdata_text.empty()) rdata_text += ' ';
      rdata_text += tokens[i];
    }
    // Resolve relative names in rdata against the origin by pre-qualifying
    // bare name fields: rdata_from_string parses names as written, so we
    // qualify here only for the common case of a single trailing name.
    auto rdata = rdata_from_string(type.value(), rdata_text);
    if (!rdata) return at_line(lineno, rdata.error());

    records.push_back(
        ResourceRecord{owner, RRClass::kIN, ttl, std::move(rdata).value()});
    last_owner = owner;
  }

  if (records.empty()) {
    return util::make_error(util::ErrorCode::kMalformed, "no records");
  }
  // Zone origin: explicit $ORIGIN/default; every record must fall inside.
  Zone zone(origin);
  for (auto& rr : records) {
    if (!zone.contains_name(rr.name)) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "record " + rr.name.to_string() +
                                  " outside zone " + origin.to_string());
    }
    zone.add_record(rr.name, rr.type(), rr.ttl, std::move(rr.rdata));
  }
  DNSCUP_TRY(zone.validate());
  return zone;
}

util::Result<Zone> load_zone_file(const std::string& path,
                                  const Name& default_origin) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::make_error(util::ErrorCode::kIo,
                            "cannot open zone file " + path);
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  auto zone = parse_zone_text(text, default_origin);
  if (!zone.ok()) {
    return util::make_error(zone.error().code,
                            path + ": " + zone.error().message);
  }
  return zone;
}

util::Status save_zone_file(const Zone& zone, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::make_error(util::ErrorCode::kIo,
                            "cannot write zone file " + path);
  }
  const std::string text = serialize_zone_text(zone);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return util::make_error(util::ErrorCode::kIo,
                            "short write to " + path);
  }
  return {};
}

std::string serialize_zone_text(const Zone& zone) {
  std::ostringstream os;
  os << "$ORIGIN " << zone.origin().to_string() << '\n';
  for (const RRset& set : zone.all_rrsets()) {
    for (const ResourceRecord& rr : set.to_records()) {
      os << rr.to_string() << '\n';
    }
  }
  return os.str();
}

}  // namespace dnscup::dns

#include "dns/message.h"

#include <cmath>
#include <sstream>

#include "dns/wire.h"
#include "util/assert.h"

namespace dnscup::dns {

namespace {
constexpr uint16_t kQrBit = 0x8000;
constexpr uint16_t kAaBit = 0x0400;
constexpr uint16_t kTcBit = 0x0200;
constexpr uint16_t kRdBit = 0x0100;
constexpr uint16_t kRaBit = 0x0080;
constexpr uint16_t kExtBit = 0x0040;  // reserved Z bit carries DNScup EXT
}  // namespace

const char* to_string(Opcode opcode) {
  switch (opcode) {
    case Opcode::kQuery: return "QUERY";
    case Opcode::kIQuery: return "IQUERY";
    case Opcode::kStatus: return "STATUS";
    case Opcode::kNotify: return "NOTIFY";
    case Opcode::kUpdate: return "UPDATE";
    case Opcode::kCacheUpdate: return "CACHE-UPDATE";
  }
  return "OPCODE?";
}

const char* to_string(Rcode rcode) {
  switch (rcode) {
    case Rcode::kNoError: return "NOERROR";
    case Rcode::kFormErr: return "FORMERR";
    case Rcode::kServFail: return "SERVFAIL";
    case Rcode::kNXDomain: return "NXDOMAIN";
    case Rcode::kNotImp: return "NOTIMP";
    case Rcode::kRefused: return "REFUSED";
    case Rcode::kYXDomain: return "YXDOMAIN";
    case Rcode::kYXRRSet: return "YXRRSET";
    case Rcode::kNXRRSet: return "NXRRSET";
    case Rcode::kNotAuth: return "NOTAUTH";
    case Rcode::kNotZone: return "NOTZONE";
  }
  return "RCODE?";
}

uint16_t Flags::pack() const {
  uint16_t raw = 0;
  if (qr) raw |= kQrBit;
  raw |= static_cast<uint16_t>((static_cast<uint16_t>(opcode) & 0xF) << 11);
  if (aa) raw |= kAaBit;
  if (tc) raw |= kTcBit;
  if (rd) raw |= kRdBit;
  if (ra) raw |= kRaBit;
  if (ext) raw |= kExtBit;
  raw |= static_cast<uint16_t>(rcode) & 0xF;
  return raw;
}

Flags Flags::unpack(uint16_t raw) {
  Flags f;
  f.qr = raw & kQrBit;
  f.opcode = static_cast<Opcode>((raw >> 11) & 0xF);
  f.aa = raw & kAaBit;
  f.tc = raw & kTcBit;
  f.rd = raw & kRdBit;
  f.ra = raw & kRaBit;
  f.ext = raw & kExtBit;
  f.rcode = static_cast<Rcode>(raw & 0xF);
  return f;
}

uint16_t llt_from_seconds(uint64_t seconds) {
  const uint64_t units = (seconds + 9) / 10;  // round up: never under-grant
  return units > 0xFFFF ? 0xFFFF : static_cast<uint16_t>(units);
}

uint64_t llt_to_seconds(uint16_t llt) { return static_cast<uint64_t>(llt) * 10; }

uint16_t rrc_from_rate(double queries_per_second) {
  if (queries_per_second <= 0.0) return 0;
  const double per_hour = queries_per_second * 3600.0;
  if (per_hour >= 65535.0) return 0xFFFF;
  const double rounded = std::ceil(per_hour);
  return static_cast<uint16_t>(rounded);
}

double rrc_to_rate(uint16_t rrc) { return static_cast<double>(rrc) / 3600.0; }

std::vector<uint8_t> Message::encode() const {
  ByteWriter w;
  encode_into(w);
  return w.take();
}

void Message::encode_into(ByteWriter& w) const {
  DNSCUP_ASSERT(questions.size() <= 0xFFFF);
  DNSCUP_ASSERT(answers.size() <= 0xFFFF);
  DNSCUP_ASSERT(authority.size() <= 0xFFFF);
  DNSCUP_ASSERT(additional.size() <= 0xFFFF);

  w.begin_message();
  w.u16(id);
  w.u16(flags.pack());
  w.u16(static_cast<uint16_t>(questions.size()));
  w.u16(static_cast<uint16_t>(answers.size()));
  w.u16(static_cast<uint16_t>(authority.size()));
  w.u16(static_cast<uint16_t>(additional.size()));

  for (const auto& q : questions) {
    w.name(q.qname);
    w.u16(static_cast<uint16_t>(q.qtype));
    w.u16(static_cast<uint16_t>(q.qclass));
    if (flags.ext) w.u16(q.rrc);
  }
  // The DNScup LLT field heads the answer section of EXT responses.
  if (flags.ext && flags.qr) w.u16(llt);
  for (const auto& rr : answers) encode_record(rr, w);
  for (const auto& rr : authority) encode_record(rr, w);
  for (const auto& rr : additional) encode_record(rr, w);
}

util::Result<Message> Message::decode(std::span<const uint8_t> wire) {
  DNSCUP_ASSIGN_OR_RETURN(MessageView view, MessageView::parse(wire));
  return view.materialize();
}

Question QuestionView::materialize() const {
  Question q;
  q.qname = qname.materialize();
  q.qtype = qtype;
  q.qclass = qclass;
  q.rrc = rrc;
  return q;
}

util::Result<ResourceRecord> RecordView::materialize(
    std::span<const uint8_t> wire) const {
  // Re-decode from the wire: decode_record is the single source of truth
  // for record semantics (incl. deep RDATA parsing and compression-pointer
  // resolution), so materialized records are byte-identical to the old
  // owning decode.
  ByteReader r(wire);
  DNSCUP_TRY(r.seek(name_offset));
  return decode_record(r);
}

namespace {

// Shared body of MessageView::parse / parse_into.  `m` arrives with empty
// (capacity-preserved) vectors; on error the caller resets it.
util::Status parse_view_body(std::span<const uint8_t> wire, MessageView& m) {
  ByteReader r(wire);
  m.wire = wire;
  DNSCUP_ASSIGN_OR_RETURN(m.id, r.u16());
  DNSCUP_ASSIGN_OR_RETURN(uint16_t raw_flags, r.u16());
  m.flags = Flags::unpack(raw_flags);
  DNSCUP_ASSIGN_OR_RETURN(uint16_t qdcount, r.u16());
  DNSCUP_ASSIGN_OR_RETURN(uint16_t ancount, r.u16());
  DNSCUP_ASSIGN_OR_RETURN(uint16_t nscount, r.u16());
  DNSCUP_ASSIGN_OR_RETURN(uint16_t arcount, r.u16());

  m.questions.reserve(qdcount);
  for (uint16_t i = 0; i < qdcount; ++i) {
    QuestionView q;
    q.qname_offset = r.offset();
    DNSCUP_TRY(r.name_view(q.qname));
    DNSCUP_ASSIGN_OR_RETURN(uint16_t qtype, r.u16());
    DNSCUP_ASSIGN_OR_RETURN(uint16_t qclass, r.u16());
    q.qtype = static_cast<RRType>(qtype);
    q.qclass = static_cast<RRClass>(qclass);
    if (m.flags.ext) {
      DNSCUP_ASSIGN_OR_RETURN(q.rrc, r.u16());
    }
    m.questions.push_back(q);
  }
  if (m.flags.ext && m.flags.qr) {
    DNSCUP_ASSIGN_OR_RETURN(m.llt, r.u16());
  }
  auto read_section = [&r](uint16_t count, std::vector<RecordView>& out)
      -> util::Status {
    out.reserve(count);
    NameView scratch;
    for (uint16_t i = 0; i < count; ++i) {
      RecordView rr;
      rr.name_offset = r.offset();
      DNSCUP_TRY(r.name_view(scratch));
      DNSCUP_ASSIGN_OR_RETURN(uint16_t type_raw, r.u16());
      DNSCUP_ASSIGN_OR_RETURN(uint16_t class_raw, r.u16());
      DNSCUP_ASSIGN_OR_RETURN(rr.ttl, r.u32());
      DNSCUP_ASSIGN_OR_RETURN(uint16_t rdlength, r.u16());
      rr.type = static_cast<RRType>(type_raw);
      rr.rrclass = static_cast<RRClass>(class_raw);
      rr.rdata.offset = r.offset();
      DNSCUP_ASSIGN_OR_RETURN(rr.rdata.bytes, r.bytes(rdlength));
      out.push_back(rr);
    }
    return {};
  };
  DNSCUP_TRY(read_section(ancount, m.answers));
  DNSCUP_TRY(read_section(nscount, m.authority));
  DNSCUP_TRY(read_section(arcount, m.additional));
  if (!r.at_end()) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "trailing bytes after message");
  }
  return {};
}

}  // namespace

util::Result<MessageView> MessageView::parse(std::span<const uint8_t> wire) {
  MessageView m;
  DNSCUP_TRY(parse_into(wire, m));
  return m;
}

util::Status MessageView::parse_into(std::span<const uint8_t> wire,
                                     MessageView& out) {
  out.questions.clear();
  out.answers.clear();
  out.authority.clear();
  out.additional.clear();
  out.llt = 0;
  const util::Status st = parse_view_body(wire, out);
  if (!st.ok()) {
    out.questions.clear();
    out.answers.clear();
    out.authority.clear();
    out.additional.clear();
    out.wire = {};
  }
  return st;
}

util::Result<Message> MessageView::materialize() const {
  Message m;
  m.id = id;
  m.flags = flags;
  m.llt = llt;
  m.questions.reserve(questions.size());
  for (const auto& q : questions) m.questions.push_back(q.materialize());
  auto fill = [this](const std::vector<RecordView>& in,
                     std::vector<ResourceRecord>& out) -> util::Status {
    out.reserve(in.size());
    for (const auto& rv : in) {
      DNSCUP_ASSIGN_OR_RETURN(ResourceRecord rr, rv.materialize(wire));
      out.push_back(std::move(rr));
    }
    return {};
  };
  DNSCUP_TRY(fill(answers, m.answers));
  DNSCUP_TRY(fill(authority, m.authority));
  DNSCUP_TRY(fill(additional, m.additional));
  return m;
}

std::string Message::to_string() const {
  std::ostringstream os;
  os << ";; id " << id << " opcode " << dns::to_string(flags.opcode)
     << " rcode " << dns::to_string(flags.rcode) << " flags";
  if (flags.qr) os << " qr";
  if (flags.aa) os << " aa";
  if (flags.tc) os << " tc";
  if (flags.rd) os << " rd";
  if (flags.ra) os << " ra";
  if (flags.ext) os << " ext";
  os << '\n';
  os << ";; QUESTION (" << questions.size() << ")\n";
  for (const auto& q : questions) {
    os << ";  " << q.qname.to_string() << ' ' << dns::to_string(q.qclass)
       << ' ' << dns::to_string(q.qtype);
    if (flags.ext) os << " rrc=" << q.rrc;
    os << '\n';
  }
  if (flags.ext && flags.qr) os << ";; LLT " << llt_to_seconds(llt) << "s\n";
  auto dump = [&os](const char* label,
                    const std::vector<ResourceRecord>& rrs) {
    os << ";; " << label << " (" << rrs.size() << ")\n";
    for (const auto& rr : rrs) os << rr.to_string() << '\n';
  };
  dump("ANSWER", answers);
  dump("AUTHORITY", authority);
  dump("ADDITIONAL", additional);
  return os.str();
}

Message make_response(const Message& request) {
  Message resp;
  resp.id = request.id;
  resp.flags.qr = true;
  resp.flags.opcode = request.flags.opcode;
  resp.flags.rd = request.flags.rd;
  resp.flags.ext = request.flags.ext;
  resp.questions = request.questions;
  return resp;
}

}  // namespace dnscup::dns

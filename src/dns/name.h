// Domain names (RFC 1035 §3.1): a sequence of labels, each 1..63 octets,
// total wire length <= 255 octets.  Names compare and hash
// case-insensitively, as required by RFC 1035 §2.3.3, but preserve the case
// they were created with.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace dnscup::dns {

class Name {
 public:
  /// The root name (zero labels, prints as ".").
  Name() = default;

  /// Parses a dotted presentation name ("www.example.com" or
  /// "www.example.com.").  Rejects empty labels, labels over 63 octets and
  /// names whose wire form would exceed 255 octets.  Backslash escapes are
  /// not supported (none of the paper's workloads need them).
  static util::Result<Name> parse(std::string_view text);

  /// Builds a name from raw labels; asserts on limit violations (callers
  /// pass trusted data; use parse() for untrusted text).
  static Name from_labels(std::vector<std::string> labels);

  static Name root() { return Name(); }

  bool is_root() const { return labels_.empty(); }
  std::size_t label_count() const { return labels_.size(); }
  const std::string& label(std::size_t i) const { return labels_[i]; }

  /// Wire-format length of this name, including the terminal root octet.
  std::size_t wire_length() const;

  /// The name with the leftmost label removed; asserts if called on root.
  Name parent() const;

  /// Prepends a single label; asserts if the result would exceed limits.
  Name prepend(std::string_view label) const;

  /// Concatenates: this name relative to the given origin
  /// ("www" + "example.com." -> "www.example.com.").
  Name concat(const Name& origin) const;

  /// True if this name equals `ancestor` or is below it.
  /// Every name is a subdomain of the root.
  bool is_subdomain_of(const Name& ancestor) const;

  /// Number of trailing labels shared with `other`.
  std::size_t common_suffix_labels(const Name& other) const;

  /// Dotted presentation form, always with a trailing dot; root is ".".
  std::string to_string() const;

  /// Case-insensitive comparisons.
  bool operator==(const Name& other) const;
  bool operator!=(const Name& other) const { return !(*this == other); }
  /// Canonical DNSSEC-style ordering (by reversed label sequence); used so
  /// names can key ordered containers.
  bool operator<(const Name& other) const;

  /// Case-insensitive hash, suitable for unordered containers.
  std::size_t hash() const;

 private:
  std::vector<std::string> labels_;
};

/// Case-insensitive label comparison (ASCII only, per RFC 4343).
bool label_equal(std::string_view a, std::string_view b);
int label_compare(std::string_view a, std::string_view b);

/// Non-owning view of a domain name: a fixed-capacity sequence of
/// string_view labels pointing into wire bytes (or any other backing
/// storage).  A NameView is only valid while the bytes it points into
/// are — on the serve hot path that is one receive batch.  Call
/// materialize() for the few owners that must outlive the buffer.
///
/// Comparisons and hashing match Name exactly (case-insensitive, same
/// FNV-1a), so a NameView can probe containers keyed by Name without
/// allocating.
class NameView {
 public:
  static constexpr std::size_t kMaxLabels = 128;

  NameView() = default;

  bool is_root() const { return count_ == 0; }
  std::size_t label_count() const { return count_; }
  std::string_view label(std::size_t i) const { return labels_[i]; }
  std::span<const std::string_view> labels() const {
    return {labels_.data(), count_};
  }

  /// Wire-format length of the (uncompressed) name, incl. the root octet.
  std::size_t wire_length() const;

  void clear() { count_ = 0; }
  /// Appends one label; asserts the capacity and label-length limits that
  /// the wire parser already enforces.
  void push_label(std::string_view label);

  /// Copies the labels into an owning Name.
  Name materialize() const;

  /// Case-insensitive equality / canonical-order comparison against an
  /// owning Name (same semantics as Name::operator== / operator<).
  bool equals(const Name& other) const;
  int compare(const Name& other) const;

  /// True if this name equals `ancestor` or is below it.
  bool is_subdomain_of(const Name& ancestor) const;

  /// Matches Name::hash() bit-for-bit so heterogeneous unordered lookups
  /// land in the same bucket.
  std::size_t hash() const;

  std::string to_string() const;

 private:
  std::array<std::string_view, kMaxLabels> labels_;
  std::size_t count_ = 0;
};

/// Canonical-order comparison of an owning Name against a raw label
/// sequence (as produced by NameView::labels()); <0 / 0 / >0 like strcmp.
/// Shared by the transparent container comparators in zone.h and
/// rate_tracker.h.
int compare_name_to_labels(const Name& a,
                           std::span<const std::string_view> b);

struct NameHash {
  std::size_t operator()(const Name& n) const { return n.hash(); }
};

}  // namespace dnscup::dns

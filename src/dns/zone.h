// Authoritative zone data (RFC 1035 §4.3.2 lookup semantics, RFC 1982
// serial arithmetic, RFC 2181 RRset rules).
//
// A Zone stores RRsets keyed by (owner name, type), provides the
// authoritative lookup algorithm (answer / CNAME / delegation referral /
// NXDOMAIN / NODATA), mutation primitives used by RFC 2136 dynamic update,
// and snapshot diffing used by the DNScup change-detection module.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "util/result.h"

namespace dnscup::dns {

/// RFC 1982 serial number arithmetic on 32-bit zone serials.
bool serial_gt(uint32_t a, uint32_t b);
uint32_t serial_add(uint32_t serial, uint32_t delta);

class Zone {
 public:
  /// Creates an empty zone; the caller must install an SOA RRset at the
  /// apex before the zone is served (checked by validate()).
  explicit Zone(Name origin) : origin_(std::move(origin)) {}

  /// Convenience factory: zone with SOA and apex NS records installed.
  static Zone make(Name origin, SOARdata soa, uint32_t soa_ttl,
                   std::vector<Name> apex_ns, uint32_t ns_ttl);

  const Name& origin() const { return origin_; }

  /// True when `name` is at or below the origin.
  bool contains_name(const Name& name) const {
    return name.is_subdomain_of(origin_);
  }
  bool contains_name(const NameView& name) const {
    return name.is_subdomain_of(origin_);
  }

  /// Zone is serveable: has an SOA RRset with exactly one rdata at apex.
  util::Status validate() const;

  const SOARdata& soa() const;
  uint32_t soa_ttl() const;
  uint32_t serial() const { return soa().serial; }

  /// Increments the SOA serial (RFC 1982 addition by 1).
  void bump_serial();

  /// Sets the SOA serial directly (zone-transfer application).
  void set_serial(uint32_t serial);

  // ---- RRset access ----------------------------------------------------

  const RRset* find(const Name& name, RRType type) const;
  std::vector<const RRset*> find_all(const Name& name) const;
  bool name_exists(const Name& name) const;

  /// Inserts or replaces a whole RRset.  Asserts the name is in-zone.
  void put(RRset rrset);

  /// Adds one record, merging into an existing RRset (the new TTL wins,
  /// per RFC 2136 §5.4 semantics).  Returns true if data changed.
  bool add_record(const Name& name, RRType type, uint32_t ttl, Rdata rdata);

  /// Removes one exact rdata; drops the RRset when it empties.
  bool remove_record(const Name& name, RRType type, const Rdata& rdata);

  /// Removes a whole RRset / every RRset at a name.  SOA and apex NS are
  /// protected from deletion, per RFC 2136 §3.4.2.3-4.
  bool remove_rrset(const Name& name, RRType type);
  bool remove_name(const Name& name);

  // ---- Authoritative lookup ---------------------------------------------

  enum class LookupStatus {
    kSuccess,     ///< rrsets holds the answer
    kCName,       ///< rrsets holds the CNAME to chase
    kDelegation,  ///< rrsets holds the NS set at the zone cut
    kNXDomain,    ///< no such name
    kNoData,      ///< name exists, no data of that type
    kNotInZone,   ///< qname is outside this zone
  };

  struct LookupResult {
    LookupStatus status = LookupStatus::kNotInZone;
    std::vector<RRset> rrsets;
    /// For kDelegation: the owner of the NS cut (may be above qname).
    Name cut;
  };

  LookupResult lookup(const Name& qname, RRType qtype) const;

  /// Allocation-free lookup for the serve hot path: the qname stays a view
  /// into the request wire bytes (heterogeneous map probes — no Name is
  /// materialized) and the answer is a pointer into zone storage instead of
  /// an RRset copy.  Semantics mirror lookup() exactly; `rrset` is set for
  /// kSuccess / kCName / kDelegation.  qtype must be a concrete type
  /// (not ANY/AXFR/IXFR — callers route those to the slow path).
  struct LookupRef {
    LookupStatus status = LookupStatus::kNotInZone;
    const RRset* rrset = nullptr;
  };
  LookupRef lookup_ref(const NameView& qname, RRType qtype) const;

  /// The apex SOA RRset without materializing a map key (allocation-free;
  /// negative answers on the serve hot path attach it).  Null only for a
  /// zone that never passed validate().
  const RRset* find_apex_soa() const;

  // ---- Enumeration -------------------------------------------------------

  /// All RRsets, SOA first then canonical name order (AXFR order).
  std::vector<RRset> all_rrsets() const;

  std::size_t rrset_count() const { return rrsets_.size(); }
  std::size_t record_count() const;

 private:
  struct Key {
    Name name;
    RRType type;
    bool operator<(const Key& other) const {
      if (name < other.name) return true;
      if (other.name < name) return false;
      return type < other.type;
    }
  };

  /// Borrowed probe key for heterogeneous lookups: the label sequence of a
  /// NameView (or any suffix of one) plus a type — no Name construction.
  struct KeyRef {
    std::span<const std::string_view> labels;
    RRType type;
  };

  struct KeyLess {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const { return a < b; }
    bool operator()(const Key& a, const KeyRef& b) const {
      const int c = compare_name_to_labels(a.name, b.labels);
      if (c != 0) return c < 0;
      return a.type < b.type;
    }
    bool operator()(const KeyRef& a, const Key& b) const {
      const int c = compare_name_to_labels(b.name, a.labels);
      if (c != 0) return c > 0;
      return a.type < b.type;
    }
  };

  const RRset* find_ref(std::span<const std::string_view> labels,
                        RRType type) const;
  bool name_exists_ref(std::span<const std::string_view> labels) const;

  Name origin_;
  std::map<Key, RRset, KeyLess> rrsets_;
};

/// One (name, type) whose data differs between two zone snapshots; used by
/// the DNScup detection module.  `before`/`after` are nullopt when the
/// RRset was added/removed respectively.
struct RRsetChange {
  Name name;
  RRType type = RRType::kA;
  std::optional<RRset> before;
  std::optional<RRset> after;
};

/// Computes data changes between two snapshots of the same zone.  TTL-only
/// differences are reported too (TTL is part of what caches hold), but SOA
/// serial-only changes are skipped: every update bumps the serial and
/// reporting it would make every diff self-triggering.
std::vector<RRsetChange> diff_zones(const Zone& before, const Zone& after);

}  // namespace dnscup::dns

// Master-file-style zone text (a practical subset of RFC 1035 §5):
// $ORIGIN / $TTL directives, '@' for the origin, relative names, ';'
// comments.  Parentheses-continuation and escapes are not supported.
//
// Example:
//   $ORIGIN example.com.
//   $TTL 3600
//   @      IN SOA ns1.example.com. admin.example.com. 1 7200 900 604800 300
//   @      IN NS  ns1.example.com.
//   ns1    IN A   192.0.2.1
//   www 60 IN A   192.0.2.80
#pragma once

#include <string>
#include <string_view>

#include "dns/zone.h"
#include "util/result.h"

namespace dnscup::dns {

/// Parses zone text into a Zone.  `default_origin` seeds the origin until a
/// $ORIGIN directive appears; errors name the offending line.
util::Result<Zone> parse_zone_text(std::string_view text,
                                   const Name& default_origin);

/// Serializes a zone back to text (fully-qualified names, explicit TTLs).
/// parse_zone_text(serialize_zone_text(z), z.origin()) reproduces z.
std::string serialize_zone_text(const Zone& zone);

/// File convenience wrappers around parse/serialize; errors carry the
/// path.  The origin defaults to the root for files with $ORIGIN.
util::Result<Zone> load_zone_file(const std::string& path,
                                  const Name& default_origin);
util::Status save_zone_file(const Zone& zone, const std::string& path);

}  // namespace dnscup::dns

#include "dns/zone.h"

#include <algorithm>
#include <array>

#include "util/assert.h"

namespace dnscup::dns {

bool serial_gt(uint32_t a, uint32_t b) {
  // RFC 1982 §3.2 with SERIAL_BITS = 32.
  return (a != b) &&
         (((a < b) && (b - a > 0x80000000u)) ||
          ((a > b) && (a - b < 0x80000000u)));
}

uint32_t serial_add(uint32_t serial, uint32_t delta) {
  DNSCUP_ASSERT(delta <= 0x7FFFFFFFu);  // RFC 1982 §3.1
  return serial + delta;                // well-defined unsigned wraparound
}

Zone Zone::make(Name origin, SOARdata soa, uint32_t soa_ttl,
                std::vector<Name> apex_ns, uint32_t ns_ttl) {
  Zone z(origin);
  RRset soa_set;
  soa_set.name = origin;
  soa_set.type = RRType::kSOA;
  soa_set.ttl = soa_ttl;
  soa_set.rdatas.push_back(std::move(soa));
  z.put(std::move(soa_set));

  if (!apex_ns.empty()) {
    RRset ns_set;
    ns_set.name = origin;
    ns_set.type = RRType::kNS;
    ns_set.ttl = ns_ttl;
    for (auto& ns : apex_ns) ns_set.rdatas.push_back(NSRdata{std::move(ns)});
    z.put(std::move(ns_set));
  }
  return z;
}

util::Status Zone::validate() const {
  const RRset* soa = find(origin_, RRType::kSOA);
  if (soa == nullptr || soa->rdatas.size() != 1) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "zone " + origin_.to_string() +
                                " lacks a single-record SOA at apex");
  }
  return {};
}

const SOARdata& Zone::soa() const {
  const RRset* soa_set = find(origin_, RRType::kSOA);
  DNSCUP_ASSERT(soa_set != nullptr && soa_set->rdatas.size() == 1);
  return std::get<SOARdata>(soa_set->rdatas.front());
}

uint32_t Zone::soa_ttl() const {
  const RRset* soa_set = find(origin_, RRType::kSOA);
  DNSCUP_ASSERT(soa_set != nullptr);
  return soa_set->ttl;
}

void Zone::bump_serial() {
  auto it = rrsets_.find(Key{origin_, RRType::kSOA});
  DNSCUP_ASSERT(it != rrsets_.end() && it->second.rdatas.size() == 1);
  auto& soa = std::get<SOARdata>(it->second.rdatas.front());
  soa.serial = serial_add(soa.serial, 1);
}

void Zone::set_serial(uint32_t serial) {
  auto it = rrsets_.find(Key{origin_, RRType::kSOA});
  DNSCUP_ASSERT(it != rrsets_.end() && it->second.rdatas.size() == 1);
  std::get<SOARdata>(it->second.rdatas.front()).serial = serial;
}

const RRset* Zone::find(const Name& name, RRType type) const {
  auto it = rrsets_.find(Key{name, type});
  return it == rrsets_.end() ? nullptr : &it->second;
}

std::vector<const RRset*> Zone::find_all(const Name& name) const {
  std::vector<const RRset*> out;
  // All types at one name are contiguous in the map (ordered by name first).
  for (auto it = rrsets_.lower_bound(Key{name, static_cast<RRType>(0)});
       it != rrsets_.end() && it->first.name == name; ++it) {
    out.push_back(&it->second);
  }
  return out;
}

bool Zone::name_exists(const Name& name) const {
  // A name exists if it owns records or is an empty non-terminal (some
  // record exists below it).
  auto it = rrsets_.lower_bound(Key{name, static_cast<RRType>(0)});
  return it != rrsets_.end() && it->first.name.is_subdomain_of(name);
}

void Zone::put(RRset rrset) {
  DNSCUP_ASSERT(contains_name(rrset.name));
  DNSCUP_ASSERT(!rrset.rdatas.empty());
  for (const auto& rd : rrset.rdatas) {
    DNSCUP_ASSERT(rdata_type(rd) == rrset.type);
  }
  Key key{rrset.name, rrset.type};
  rrsets_.insert_or_assign(std::move(key), std::move(rrset));
}

bool Zone::add_record(const Name& name, RRType type, uint32_t ttl,
                      Rdata rdata) {
  DNSCUP_ASSERT(contains_name(name));
  DNSCUP_ASSERT(rdata_type(rdata) == type);
  auto [it, inserted] = rrsets_.try_emplace(Key{name, type});
  RRset& set = it->second;
  if (inserted) {
    set.name = name;
    set.type = type;
    set.rrclass = RRClass::kIN;
  }
  // CNAME and SOA are singleton RRsets: a new record replaces the old one.
  if ((type == RRType::kCNAME || type == RRType::kSOA) && !set.rdatas.empty()) {
    const bool same = set.ttl == ttl && set.contains(rdata);
    set.rdatas.clear();
    set.rdatas.push_back(std::move(rdata));
    set.ttl = ttl;
    return !same;
  }
  bool changed = set.add(std::move(rdata));
  if (set.ttl != ttl) {
    set.ttl = ttl;
    changed = true;
  }
  return changed;
}

bool Zone::remove_record(const Name& name, RRType type, const Rdata& rdata) {
  // SOA is never deleted; the last NS at the apex is never deleted
  // (RFC 2136 §3.4.2.4).
  if (type == RRType::kSOA && name == origin_) return false;
  auto it = rrsets_.find(Key{name, type});
  if (it == rrsets_.end()) return false;
  if (type == RRType::kNS && name == origin_ && it->second.size() == 1) {
    return false;
  }
  if (!it->second.remove(rdata)) return false;
  if (it->second.empty()) rrsets_.erase(it);
  return true;
}

bool Zone::remove_rrset(const Name& name, RRType type) {
  if (name == origin_ && (type == RRType::kSOA || type == RRType::kNS)) {
    return false;
  }
  return rrsets_.erase(Key{name, type}) > 0;
}

bool Zone::remove_name(const Name& name) {
  bool removed = false;
  auto it = rrsets_.lower_bound(Key{name, static_cast<RRType>(0)});
  while (it != rrsets_.end() && it->first.name == name) {
    if (name == origin_ &&
        (it->first.type == RRType::kSOA || it->first.type == RRType::kNS)) {
      ++it;
      continue;
    }
    it = rrsets_.erase(it);
    removed = true;
  }
  return removed;
}

namespace {

/// True when `n` equals the label sequence `ancestor` or sits below it.
bool name_below_labels(const Name& n, std::span<const std::string_view> anc) {
  const std::size_t nn = n.label_count();
  const std::size_t na = anc.size();
  if (na > nn) return false;
  for (std::size_t i = 1; i <= na; ++i) {
    if (!label_equal(n.label(nn - i), anc[na - i])) return false;
  }
  return true;
}

}  // namespace

const RRset* Zone::find_ref(std::span<const std::string_view> labels,
                            RRType type) const {
  auto it = rrsets_.find(KeyRef{labels, type});
  return it == rrsets_.end() ? nullptr : &it->second;
}

const RRset* Zone::find_apex_soa() const {
  std::array<std::string_view, NameView::kMaxLabels> labels;
  const std::size_t count = origin_.label_count();
  DNSCUP_ASSERT(count <= labels.size());
  for (std::size_t i = 0; i < count; ++i) labels[i] = origin_.label(i);
  return find_ref(std::span<const std::string_view>(labels.data(), count),
                  RRType::kSOA);
}

bool Zone::name_exists_ref(std::span<const std::string_view> labels) const {
  auto it = rrsets_.lower_bound(KeyRef{labels, static_cast<RRType>(0)});
  return it != rrsets_.end() && name_below_labels(it->first.name, labels);
}

Zone::LookupRef Zone::lookup_ref(const NameView& qname, RRType qtype) const {
  DNSCUP_ASSERT(qtype != RRType::kANY && qtype != RRType::kAXFR &&
                qtype != RRType::kIXFR);
  LookupRef result;
  if (!contains_name(qname)) {
    result.status = LookupStatus::kNotInZone;
    return result;
  }

  // Zone cut strictly below the apex, at or above qname: probe each
  // ancestor as a suffix subspan of the view's labels — no Name churn.
  const std::size_t qlabels = qname.label_count();
  const std::size_t olabels = origin_.label_count();
  for (std::size_t depth = olabels + 1; depth <= qlabels; ++depth) {
    const auto candidate = qname.labels().subspan(qlabels - depth);
    if (const RRset* ns = find_ref(candidate, RRType::kNS)) {
      result.status = LookupStatus::kDelegation;
      result.rrset = ns;
      return result;
    }
  }

  if (!name_exists_ref(qname.labels())) {
    result.status = LookupStatus::kNXDomain;
    return result;
  }

  if (qtype != RRType::kCNAME) {
    if (const RRset* cname = find_ref(qname.labels(), RRType::kCNAME)) {
      result.status = LookupStatus::kCName;
      result.rrset = cname;
      return result;
    }
  }

  if (const RRset* set = find_ref(qname.labels(), qtype)) {
    result.status = LookupStatus::kSuccess;
    result.rrset = set;
    return result;
  }
  result.status = LookupStatus::kNoData;
  return result;
}

Zone::LookupResult Zone::lookup(const Name& qname, RRType qtype) const {
  LookupResult result;
  if (!contains_name(qname)) {
    result.status = LookupStatus::kNotInZone;
    return result;
  }

  // Check for a zone cut strictly below the apex, at or above qname.
  // Walk the ancestors of qname from just below the apex downwards.
  if (qname != origin_) {
    const std::size_t qlabels = qname.label_count();
    const std::size_t olabels = origin_.label_count();
    for (std::size_t depth = olabels + 1; depth <= qlabels; ++depth) {
      Name candidate = qname;
      for (std::size_t strip = qlabels; strip > depth; --strip) {
        candidate = candidate.parent();
      }
      const RRset* ns = find(candidate, RRType::kNS);
      if (ns != nullptr) {
        // Querying the NS set of the cut itself from the parent side is a
        // referral too, unless this zone is also authoritative below (we
        // model one zone per server, so any in-zone NS below apex is a cut).
        result.status = LookupStatus::kDelegation;
        result.rrsets.push_back(*ns);
        result.cut = candidate;
        return result;
      }
    }
  }

  if (!name_exists(qname)) {
    result.status = LookupStatus::kNXDomain;
    return result;
  }

  // CNAME takes precedence unless the query asks for CNAME/ANY.
  if (qtype != RRType::kCNAME && qtype != RRType::kANY) {
    if (const RRset* cname = find(qname, RRType::kCNAME)) {
      result.status = LookupStatus::kCName;
      result.rrsets.push_back(*cname);
      return result;
    }
  }

  if (qtype == RRType::kANY) {
    for (const RRset* set : find_all(qname)) result.rrsets.push_back(*set);
    result.status = result.rrsets.empty() ? LookupStatus::kNoData
                                          : LookupStatus::kSuccess;
    return result;
  }

  if (const RRset* set = find(qname, qtype)) {
    result.status = LookupStatus::kSuccess;
    result.rrsets.push_back(*set);
    return result;
  }
  result.status = LookupStatus::kNoData;
  return result;
}

std::vector<RRset> Zone::all_rrsets() const {
  std::vector<RRset> out;
  out.reserve(rrsets_.size());
  const RRset* soa = find(origin_, RRType::kSOA);
  if (soa != nullptr) out.push_back(*soa);
  for (const auto& [key, set] : rrsets_) {
    if (key.name == origin_ && key.type == RRType::kSOA) continue;
    out.push_back(set);
  }
  return out;
}

std::size_t Zone::record_count() const {
  std::size_t n = 0;
  for (const auto& [key, set] : rrsets_) n += set.size();
  return n;
}

std::vector<RRsetChange> diff_zones(const Zone& before, const Zone& after) {
  std::vector<RRsetChange> changes;
  for (const RRset& old_set : before.all_rrsets()) {
    if (old_set.type == RRType::kSOA && old_set.name == before.origin()) {
      continue;  // serial churn is not a data change
    }
    const RRset* new_set = after.find(old_set.name, old_set.type);
    if (new_set == nullptr) {
      changes.push_back({old_set.name, old_set.type, old_set, std::nullopt});
    } else if (!old_set.same_data(*new_set) || old_set.ttl != new_set->ttl) {
      changes.push_back({old_set.name, old_set.type, old_set, *new_set});
    }
  }
  for (const RRset& new_set : after.all_rrsets()) {
    if (new_set.type == RRType::kSOA && new_set.name == after.origin()) {
      continue;
    }
    if (before.find(new_set.name, new_set.type) == nullptr) {
      changes.push_back({new_set.name, new_set.type, std::nullopt, new_set});
    }
  }
  return changes;
}

}  // namespace dnscup::dns

#include "dns/wire.h"

#include <algorithm>
#include <cctype>

#include "util/assert.h"

namespace dnscup::dns {

namespace {

constexpr uint16_t kPointerMask = 0xC000;
constexpr std::size_t kMaxPointerOffset = 0x3FFF;
constexpr int kMaxPointerHops = 32;
constexpr std::size_t kMaxLabels = 128;

std::string lower_suffix_key(const Name& n, std::size_t from_label) {
  std::string key;
  for (std::size_t i = from_label; i < n.label_count(); ++i) {
    const std::string& l = n.label(i);
    for (char c : l) {
      key += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    key += '.';
  }
  return key;
}

}  // namespace

void ByteWriter::u8(uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v & 0xFF));
}

void ByteWriter::u32(uint32_t v) {
  buf_.push_back(static_cast<uint8_t>(v >> 24));
  buf_.push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
  buf_.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
  buf_.push_back(static_cast<uint8_t>(v & 0xFF));
}

void ByteWriter::bytes(std::span<const uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::name(const Name& n) {
  // For each suffix of the name, either emit a compression pointer to a
  // previous occurrence or write the label and remember this offset.
  for (std::size_t i = 0; i < n.label_count(); ++i) {
    const std::string key = lower_suffix_key(n, i);
    auto it = compression_.find(key);
    if (it != compression_.end()) {
      u16(static_cast<uint16_t>(kPointerMask | it->second));
      return;
    }
    if (buf_.size() <= kMaxPointerOffset) {
      compression_.emplace(key, static_cast<uint16_t>(buf_.size()));
    }
    const std::string& label = n.label(i);
    u8(static_cast<uint8_t>(label.size()));
    bytes({reinterpret_cast<const uint8_t*>(label.data()), label.size()});
  }
  u8(0);  // root
}

void ByteWriter::name_uncompressed(const Name& n) {
  for (std::size_t i = 0; i < n.label_count(); ++i) {
    const std::string& label = n.label(i);
    u8(static_cast<uint8_t>(label.size()));
    bytes({reinterpret_cast<const uint8_t*>(label.data()), label.size()});
  }
  u8(0);
}

void ByteWriter::patch_u16(std::size_t offset, uint16_t v) {
  DNSCUP_ASSERT(offset + 2 <= buf_.size());
  buf_[offset] = static_cast<uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<uint8_t>(v & 0xFF);
}

util::Result<uint8_t> ByteReader::u8() {
  if (remaining() < 1) {
    return util::make_error(util::ErrorCode::kTruncated, "u8 past end");
  }
  return data_[pos_++];
}

util::Result<uint16_t> ByteReader::u16() {
  if (remaining() < 2) {
    return util::make_error(util::ErrorCode::kTruncated, "u16 past end");
  }
  const uint16_t v =
      static_cast<uint16_t>(data_[pos_] << 8) | data_[pos_ + 1];
  pos_ += 2;
  return v;
}

util::Result<uint32_t> ByteReader::u32() {
  if (remaining() < 4) {
    return util::make_error(util::ErrorCode::kTruncated, "u32 past end");
  }
  const uint32_t v = (static_cast<uint32_t>(data_[pos_]) << 24) |
                     (static_cast<uint32_t>(data_[pos_ + 1]) << 16) |
                     (static_cast<uint32_t>(data_[pos_ + 2]) << 8) |
                     static_cast<uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

util::Result<std::vector<uint8_t>> ByteReader::bytes(std::size_t n) {
  if (remaining() < n) {
    return util::make_error(util::ErrorCode::kTruncated, "bytes past end");
  }
  std::vector<uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                           data_.begin() +
                               static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

util::Status ByteReader::seek(std::size_t offset) {
  if (offset > data_.size()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "seek past end");
  }
  pos_ = offset;
  return {};
}

util::Result<Name> ByteReader::name() {
  std::vector<std::string> labels;
  std::size_t cursor = pos_;
  std::size_t after_first_pointer = 0;
  bool jumped = false;
  int hops = 0;

  for (;;) {
    if (cursor >= data_.size()) {
      return util::make_error(util::ErrorCode::kTruncated,
                              "name runs past end");
    }
    const uint8_t len = data_[cursor];
    if ((len & 0xC0) == 0xC0) {
      if (cursor + 1 >= data_.size()) {
        return util::make_error(util::ErrorCode::kTruncated,
                                "pointer runs past end");
      }
      if (++hops > kMaxPointerHops) {
        return util::make_error(util::ErrorCode::kMalformed,
                                "compression pointer loop");
      }
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3F) << 8) | data_[cursor + 1];
      if (!jumped) {
        after_first_pointer = cursor + 2;
        jumped = true;
      }
      if (target >= cursor) {
        // Forward pointers are not produced by any conforming encoder and
        // enable loops; reject them outright.
        return util::make_error(util::ErrorCode::kMalformed,
                                "forward compression pointer");
      }
      cursor = target;
      continue;
    }
    if ((len & 0xC0) != 0) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "reserved label type");
    }
    if (len == 0) {
      pos_ = jumped ? after_first_pointer : cursor + 1;
      break;
    }
    if (cursor + 1 + len > data_.size()) {
      return util::make_error(util::ErrorCode::kTruncated,
                              "label runs past end");
    }
    if (labels.size() >= kMaxLabels) {
      return util::make_error(util::ErrorCode::kMalformed, "too many labels");
    }
    labels.emplace_back(reinterpret_cast<const char*>(&data_[cursor + 1]),
                        len);
    cursor += 1 + len;
  }

  std::size_t wire_len = 1;
  for (const auto& l : labels) wire_len += 1 + l.size();
  if (wire_len > 255) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "decoded name longer than 255 octets");
  }
  return Name::from_labels(std::move(labels));
}

}  // namespace dnscup::dns

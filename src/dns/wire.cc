#include "dns/wire.h"

#include <algorithm>

#include "util/assert.h"

namespace dnscup::dns {

namespace {

constexpr uint16_t kPointerMask = 0xC000;
constexpr std::size_t kMaxPointerOffset = 0x3FFF;
constexpr int kMaxPointerHops = 32;

}  // namespace

void ByteWriter::begin_message() {
  base_ = buf_->size();
  compression_count_ = 0;
}

void ByteWriter::u8(uint8_t v) { buf_->push_back(v); }

void ByteWriter::u16(uint16_t v) {
  buf_->push_back(static_cast<uint8_t>(v >> 8));
  buf_->push_back(static_cast<uint8_t>(v & 0xFF));
}

void ByteWriter::u32(uint32_t v) {
  buf_->push_back(static_cast<uint8_t>(v >> 24));
  buf_->push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
  buf_->push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
  buf_->push_back(static_cast<uint8_t>(v & 0xFF));
}

void ByteWriter::bytes(std::span<const uint8_t> data) {
  buf_->insert(buf_->end(), data.begin(), data.end());
}

bool ByteWriter::suffix_matches(uint16_t offset, const Name& n,
                                std::size_t from) const {
  // We only record offsets of names this writer emitted, so the bytes at
  // `offset` are well-formed and any pointers there point backwards.
  const std::vector<uint8_t>& b = *buf_;
  std::size_t cursor = base_ + offset;
  std::size_t i = from;
  for (;;) {
    DNSCUP_ASSERT(cursor < b.size());
    const uint8_t len = b[cursor];
    if ((len & 0xC0) == 0xC0) {
      DNSCUP_ASSERT(cursor + 1 < b.size());
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3F) << 8) | b[cursor + 1];
      cursor = base_ + target;
      continue;
    }
    if (len == 0) return i == n.label_count();
    if (i == n.label_count()) return false;
    const std::string& label = n.label(i);
    if (label.size() != len) return false;
    const std::string_view written(reinterpret_cast<const char*>(&b[cursor + 1]),
                                   len);
    if (!label_equal(written, label)) return false;
    ++i;
    cursor += 1 + len;
  }
}

void ByteWriter::record_offset(std::size_t message_relative) {
  if (message_relative <= kMaxPointerOffset &&
      compression_count_ < kCompressionSlots) {
    compression_[compression_count_++] =
        static_cast<uint16_t>(message_relative);
  }
}

void ByteWriter::name(const Name& n) {
  // For each suffix of the name, either emit a compression pointer to a
  // previous occurrence or write the label and remember this offset.
  // Offsets are scanned in insertion order, which reproduces the
  // first-occurrence-wins behaviour of the old string-keyed map.
  for (std::size_t i = 0; i < n.label_count(); ++i) {
    for (std::size_t s = 0; s < compression_count_; ++s) {
      if (suffix_matches(compression_[s], n, i)) {
        u16(static_cast<uint16_t>(kPointerMask | compression_[s]));
        return;
      }
    }
    record_offset(size());
    const std::string& label = n.label(i);
    u8(static_cast<uint8_t>(label.size()));
    bytes({reinterpret_cast<const uint8_t*>(label.data()), label.size()});
  }
  u8(0);  // root
}

void ByteWriter::name_uncompressed(const Name& n) {
  for (std::size_t i = 0; i < n.label_count(); ++i) {
    const std::string& label = n.label(i);
    u8(static_cast<uint8_t>(label.size()));
    bytes({reinterpret_cast<const uint8_t*>(label.data()), label.size()});
  }
  u8(0);
}

void ByteWriter::register_name(std::size_t offset) {
  const std::vector<uint8_t>& b = *buf_;
  std::size_t cursor = base_ + offset;
  for (;;) {
    DNSCUP_ASSERT(cursor < b.size());
    const uint8_t len = b[cursor];
    // Stop at the root octet; callers pass pointer-free names, but a
    // pointer (or reserved label) also safely ends registration.
    if (len == 0 || (len & 0xC0) != 0) return;
    DNSCUP_ASSERT(cursor + 1 + len <= b.size());
    record_offset(cursor - base_);
    cursor += 1 + len;
  }
}

void ByteWriter::patch_u16(std::size_t offset, uint16_t v) {
  DNSCUP_ASSERT(base_ + offset + 2 <= buf_->size());
  (*buf_)[base_ + offset] = static_cast<uint8_t>(v >> 8);
  (*buf_)[base_ + offset + 1] = static_cast<uint8_t>(v & 0xFF);
}

std::vector<uint8_t> ByteWriter::take() {
  DNSCUP_ASSERT(buf_ == &own_);
  return std::move(own_);
}

util::Result<uint8_t> ByteReader::u8() {
  if (remaining() < 1) {
    return util::make_error(util::ErrorCode::kTruncated, "u8 past end");
  }
  return data_[pos_++];
}

util::Result<uint16_t> ByteReader::u16() {
  if (remaining() < 2) {
    return util::make_error(util::ErrorCode::kTruncated, "u16 past end");
  }
  const uint16_t v =
      static_cast<uint16_t>(data_[pos_] << 8) | data_[pos_ + 1];
  pos_ += 2;
  return v;
}

util::Result<uint32_t> ByteReader::u32() {
  if (remaining() < 4) {
    return util::make_error(util::ErrorCode::kTruncated, "u32 past end");
  }
  const uint32_t v = (static_cast<uint32_t>(data_[pos_]) << 24) |
                     (static_cast<uint32_t>(data_[pos_ + 1]) << 16) |
                     (static_cast<uint32_t>(data_[pos_ + 2]) << 8) |
                     static_cast<uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

util::Result<std::span<const uint8_t>> ByteReader::bytes(std::size_t n) {
  if (remaining() < n) {
    return util::make_error(util::ErrorCode::kTruncated, "bytes past end");
  }
  const std::span<const uint8_t> out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

util::Status ByteReader::seek(std::size_t offset) {
  if (offset > data_.size()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "seek past end");
  }
  pos_ = offset;
  return {};
}

util::Status ByteReader::name_view(NameView& out) {
  out.clear();
  std::size_t cursor = pos_;
  std::size_t after_first_pointer = 0;
  bool jumped = false;
  int hops = 0;

  for (;;) {
    if (cursor >= data_.size()) {
      return util::make_error(util::ErrorCode::kTruncated,
                              "name runs past end");
    }
    const uint8_t len = data_[cursor];
    if ((len & 0xC0) == 0xC0) {
      if (cursor + 1 >= data_.size()) {
        return util::make_error(util::ErrorCode::kTruncated,
                                "pointer runs past end");
      }
      if (++hops > kMaxPointerHops) {
        return util::make_error(util::ErrorCode::kMalformed,
                                "compression pointer loop");
      }
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3F) << 8) | data_[cursor + 1];
      if (!jumped) {
        after_first_pointer = cursor + 2;
        jumped = true;
      }
      if (target >= cursor) {
        // Forward pointers are not produced by any conforming encoder and
        // enable loops; reject them outright.
        return util::make_error(util::ErrorCode::kMalformed,
                                "forward compression pointer");
      }
      cursor = target;
      continue;
    }
    if ((len & 0xC0) != 0) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "reserved label type");
    }
    if (len == 0) {
      pos_ = jumped ? after_first_pointer : cursor + 1;
      break;
    }
    if (cursor + 1 + len > data_.size()) {
      return util::make_error(util::ErrorCode::kTruncated,
                              "label runs past end");
    }
    if (out.label_count() >= NameView::kMaxLabels) {
      return util::make_error(util::ErrorCode::kMalformed, "too many labels");
    }
    out.push_label(std::string_view(
        reinterpret_cast<const char*>(&data_[cursor + 1]), len));
    cursor += 1 + len;
  }

  if (out.wire_length() > 255) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "decoded name longer than 255 octets");
  }
  return {};
}

util::Result<Name> ByteReader::name() {
  NameView view;
  const util::Status st = name_view(view);
  if (!st.ok()) return st.error();
  return view.materialize();
}

}  // namespace dnscup::dns

#include "dns/name.h"

#include <algorithm>
#include <cctype>

#include "util/assert.h"

namespace dnscup::dns {

namespace {

constexpr std::size_t kMaxLabelLength = 63;
constexpr std::size_t kMaxWireLength = 255;

char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::size_t wire_length_of(const std::vector<std::string>& labels) {
  std::size_t len = 1;  // terminal root octet
  for (const auto& l : labels) len += 1 + l.size();
  return len;
}

}  // namespace

bool label_equal(std::string_view a, std::string_view b) {
  return label_compare(a, b) == 0;
}

int label_compare(std::string_view a, std::string_view b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const char ca = ascii_lower(a[i]);
    const char cb = ascii_lower(b[i]);
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

util::Result<Name> Name::parse(std::string_view text) {
  if (text.empty()) {
    return util::make_error(util::ErrorCode::kMalformed, "empty name");
  }
  if (text == ".") return Name();

  // Strip one trailing dot (fully-qualified form).
  if (text.back() == '.') text.remove_suffix(1);

  std::vector<std::string> labels;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t dot = text.find('.', start);
    const std::string_view label =
        text.substr(start, dot == std::string_view::npos ? std::string_view::npos
                                                         : dot - start);
    if (label.empty()) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "empty label in '" + std::string(text) + "'");
    }
    if (label.size() > kMaxLabelLength) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "label longer than 63 octets");
    }
    labels.emplace_back(label);
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  if (wire_length_of(labels) > kMaxWireLength) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "name longer than 255 octets");
  }
  Name n;
  n.labels_ = std::move(labels);
  return n;
}

Name Name::from_labels(std::vector<std::string> labels) {
  for (const auto& l : labels) {
    DNSCUP_ASSERT(!l.empty() && l.size() <= kMaxLabelLength);
  }
  DNSCUP_ASSERT(wire_length_of(labels) <= kMaxWireLength);
  Name n;
  n.labels_ = std::move(labels);
  return n;
}

std::size_t Name::wire_length() const { return wire_length_of(labels_); }

Name Name::parent() const {
  DNSCUP_ASSERT(!is_root());
  Name n;
  n.labels_.assign(labels_.begin() + 1, labels_.end());
  return n;
}

Name Name::prepend(std::string_view label) const {
  DNSCUP_ASSERT(!label.empty() && label.size() <= kMaxLabelLength);
  Name n;
  n.labels_.reserve(labels_.size() + 1);
  n.labels_.emplace_back(label);
  n.labels_.insert(n.labels_.end(), labels_.begin(), labels_.end());
  DNSCUP_ASSERT(n.wire_length() <= kMaxWireLength);
  return n;
}

Name Name::concat(const Name& origin) const {
  Name n;
  n.labels_.reserve(labels_.size() + origin.labels_.size());
  n.labels_.insert(n.labels_.end(), labels_.begin(), labels_.end());
  n.labels_.insert(n.labels_.end(), origin.labels_.begin(),
                   origin.labels_.end());
  DNSCUP_ASSERT(n.wire_length() <= kMaxWireLength);
  return n;
}

bool Name::is_subdomain_of(const Name& ancestor) const {
  if (ancestor.labels_.size() > labels_.size()) return false;
  return common_suffix_labels(ancestor) == ancestor.labels_.size();
}

std::size_t Name::common_suffix_labels(const Name& other) const {
  std::size_t shared = 0;
  auto a = labels_.rbegin();
  auto b = other.labels_.rbegin();
  while (a != labels_.rend() && b != other.labels_.rend() &&
         label_equal(*a, *b)) {
    ++shared;
    ++a;
    ++b;
  }
  return shared;
}

std::string Name::to_string() const {
  if (is_root()) return ".";
  std::string out;
  for (const auto& l : labels_) {
    out += l;
    out += '.';
  }
  return out;
}

bool Name::operator==(const Name& other) const {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (!label_equal(labels_[i], other.labels_[i])) return false;
  }
  return true;
}

bool Name::operator<(const Name& other) const {
  auto a = labels_.rbegin();
  auto b = other.labels_.rbegin();
  while (a != labels_.rend() && b != other.labels_.rend()) {
    const int c = label_compare(*a, *b);
    if (c != 0) return c < 0;
    ++a;
    ++b;
  }
  return labels_.size() < other.labels_.size();
}

namespace {

/// FNV-1a over lowercased labels with a separator per label; Name::hash()
/// and NameView::hash() both call this so heterogeneous lookups agree.
template <typename LabelAt>
std::size_t hash_labels(std::size_t count, LabelAt&& label_at) {
  std::size_t h = 1469598103934665603ull;
  auto mix = [&h](char c) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  };
  for (std::size_t i = 0; i < count; ++i) {
    const std::string_view l = label_at(i);
    for (char c : l) mix(ascii_lower(c));
    mix('\0');
  }
  return h;
}

}  // namespace

std::size_t Name::hash() const {
  return hash_labels(labels_.size(),
                     [this](std::size_t i) -> std::string_view {
                       return labels_[i];
                     });
}

int compare_name_to_labels(const Name& a,
                           std::span<const std::string_view> b) {
  const std::size_t na = a.label_count();
  const std::size_t nb = b.size();
  const std::size_t n = std::min(na, nb);
  for (std::size_t i = 1; i <= n; ++i) {
    const int c = label_compare(a.label(na - i), b[nb - i]);
    if (c != 0) return c;
  }
  if (na == nb) return 0;
  return na < nb ? -1 : 1;
}

std::size_t NameView::wire_length() const {
  std::size_t len = 1;
  for (std::size_t i = 0; i < count_; ++i) len += 1 + labels_[i].size();
  return len;
}

void NameView::push_label(std::string_view label) {
  DNSCUP_ASSERT(count_ < kMaxLabels);
  DNSCUP_ASSERT(!label.empty() && label.size() <= kMaxLabelLength);
  labels_[count_++] = label;
}

Name NameView::materialize() const {
  std::vector<std::string> labels;
  labels.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) labels.emplace_back(labels_[i]);
  return Name::from_labels(std::move(labels));
}

bool NameView::equals(const Name& other) const {
  if (count_ != other.label_count()) return false;
  for (std::size_t i = 0; i < count_; ++i) {
    if (!label_equal(labels_[i], other.label(i))) return false;
  }
  return true;
}

int NameView::compare(const Name& other) const {
  return -compare_name_to_labels(other, labels());
}

bool NameView::is_subdomain_of(const Name& ancestor) const {
  const std::size_t nb = ancestor.label_count();
  if (nb > count_) return false;
  for (std::size_t i = 1; i <= nb; ++i) {
    if (!label_equal(labels_[count_ - i], ancestor.label(nb - i))) {
      return false;
    }
  }
  return true;
}

std::size_t NameView::hash() const {
  return hash_labels(count_, [this](std::size_t i) { return labels_[i]; });
}

std::string NameView::to_string() const {
  if (is_root()) return ".";
  std::string out;
  for (std::size_t i = 0; i < count_; ++i) {
    out += labels_[i];
    out += '.';
  }
  return out;
}

}  // namespace dnscup::dns

// Bounds-checked wire-format primitives (RFC 1035 §4): big-endian integer
// readers/writers and domain-name encoding with message compression
// (§4.1.4).  All reads come from untrusted bytes and report failures via
// util::Result; they never assert or throw on bad input.
//
// ByteWriter runs in one of two modes:
//  * owning (default constructor): the writer owns its buffer; take()
//    moves it out.  This is the legacy one-message-per-vector path.
//  * arena (explicit constructor): the writer appends into a caller-owned
//    reusable buffer.  begin_message() marks the start of a new message in
//    the arena and resets compression state; size(), patch_u16() and the
//    compression pointers are all message-relative, so several messages
//    can share one arena and the arena can be cleared and reused without
//    any per-message allocation.
//
// Name compression no longer keys a map by presentation strings: the
// writer keeps a small table of wire offsets where (suffixes of) names
// start in the output buffer and matches candidates by walking the
// already-written bytes, which is allocation-free.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "dns/name.h"
#include "util/result.h"

namespace dnscup::dns {

class ByteWriter {
 public:
  /// Owning mode: the writer allocates and owns its buffer.
  ByteWriter() : buf_(&own_) {}

  /// Arena mode: appends into `arena` starting at its current end.  The
  /// caller owns the buffer; clear it between batches to reuse capacity.
  explicit ByteWriter(std::vector<uint8_t>& arena)
      : buf_(&arena), base_(arena.size()) {}

  ByteWriter(const ByteWriter&) = delete;
  ByteWriter& operator=(const ByteWriter&) = delete;

  /// Starts a new message at the arena's current end: resets the
  /// message base offset and the compression table.
  void begin_message();

  void u8(uint8_t v);
  void u16(uint16_t v);
  void u32(uint32_t v);
  void bytes(std::span<const uint8_t> data);

  /// Writes a name with compression against earlier occurrences in this
  /// message (pointer offsets must fit 14 bits; later names simply skip
  /// compression if the target offset is too large).
  void name(const Name& n);

  /// Writes a name without compression and without registering it as a
  /// compression target (used inside RDATA types where compression is
  /// forbidden by RFC 3597 semantics).
  void name_uncompressed(const Name& n);

  /// Registers an already-written, pointer-free name (each of its label
  /// starts) as compression targets, exactly as if name() had written it.
  /// `offset` is message-relative.  Used when echoing raw question bytes
  /// so later records still compress against the qname.
  void register_name(std::size_t offset);

  /// Bytes written for the current message (message-relative).
  std::size_t size() const { return buf_->size() - base_; }

  /// Overwrites a previously written 16-bit slot (e.g. to patch RDLENGTH
  /// or section counts after the fact).  `offset` is message-relative.
  void patch_u16(std::size_t offset, uint16_t v);

  /// The current message's bytes.  The span is invalidated by any further
  /// append (the arena may reallocate).
  std::span<const uint8_t> message() const {
    return {buf_->data() + base_, buf_->size() - base_};
  }

  /// Arena offset where the current message starts.
  std::size_t message_offset() const { return base_; }

  /// The whole underlying buffer (in owning mode, exactly the message).
  const std::vector<uint8_t>& data() const { return *buf_; }

  /// Moves the buffer out; owning mode only.
  std::vector<uint8_t> take();

 private:
  /// True when the labels n.label(from..) match the name written at
  /// message-relative `offset` (following already-written pointers).
  bool suffix_matches(uint16_t offset, const Name& n, std::size_t from) const;
  void record_offset(std::size_t message_relative);

  // Compression table: message-relative wire offsets where a (suffix of
  // a) name starts.  Fixed-size — once full, later names simply stop
  // registering new targets; output stays valid, just less compressed.
  static constexpr std::size_t kCompressionSlots = 64;

  std::vector<uint8_t> own_;
  std::vector<uint8_t>* buf_;
  std::size_t base_ = 0;
  std::array<uint16_t, kCompressionSlots> compression_{};
  std::size_t compression_count_ = 0;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  util::Result<uint8_t> u8();
  util::Result<uint16_t> u16();
  util::Result<uint32_t> u32();

  /// A view of the next `n` bytes (no copy); the span aliases the
  /// reader's backing buffer.
  util::Result<std::span<const uint8_t>> bytes(std::size_t n);

  /// Reads a possibly-compressed name.  Follows pointers with a hop limit
  /// so malicious pointer loops terminate.
  util::Result<Name> name();

  /// Reads a possibly-compressed name into `out` as label views into the
  /// backing buffer — no allocation.  Identical validation and cursor
  /// semantics to name().
  util::Status name_view(NameView& out);

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

  /// Repositions the cursor (bounds-checked by callers via remaining()).
  util::Status seek(std::size_t offset);

 private:
  std::span<const uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace dnscup::dns

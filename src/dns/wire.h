// Bounds-checked wire-format primitives (RFC 1035 §4): big-endian integer
// readers/writers and domain-name encoding with message compression
// (§4.1.4).  All reads come from untrusted bytes and report failures via
// util::Result; they never assert or throw on bad input.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/name.h"
#include "util/result.h"

namespace dnscup::dns {

class ByteWriter {
 public:
  void u8(uint8_t v);
  void u16(uint16_t v);
  void u32(uint32_t v);
  void bytes(std::span<const uint8_t> data);

  /// Writes a name with compression against earlier occurrences in this
  /// message (pointer offsets must fit 14 bits; later names simply skip
  /// compression if the target offset is too large).
  void name(const Name& n);

  /// Writes a name without compression and without registering it as a
  /// compression target (used inside RDATA types where compression is
  /// forbidden by RFC 3597 semantics).
  void name_uncompressed(const Name& n);

  std::size_t size() const { return buf_.size(); }

  /// Overwrites a previously written 16-bit slot (e.g. to patch RDLENGTH
  /// or section counts after the fact).
  void patch_u16(std::size_t offset, uint16_t v);

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
  // Maps a name's presentation suffix (lowercased) to its wire offset.
  std::unordered_map<std::string, uint16_t> compression_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  util::Result<uint8_t> u8();
  util::Result<uint16_t> u16();
  util::Result<uint32_t> u32();
  util::Result<std::vector<uint8_t>> bytes(std::size_t n);

  /// Reads a possibly-compressed name.  Follows pointers with a hop limit
  /// so malicious pointer loops terminate.
  util::Result<Name> name();

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

  /// Repositions the cursor (bounds-checked by callers via remaining()).
  util::Status seek(std::size_t offset);

 private:
  std::span<const uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace dnscup::dns

#include "server/update.h"

#include <map>

#include "util/assert.h"

namespace dnscup::server {

using dns::Name;
using dns::Rcode;
using dns::Rdata;
using dns::ResourceRecord;
using dns::RRClass;
using dns::RRset;
using dns::RRType;
using dns::Zone;

Rcode check_prerequisites(const Zone& zone,
                          const std::vector<ResourceRecord>& prereqs) {
  // RFC 2136 §3.2.5: class=IN prerequisites with identical (name, type)
  // are compared as a whole RRset against the zone.
  std::map<std::pair<Name, RRType>, RRset> value_sets;

  for (const auto& rr : prereqs) {
    if (!zone.contains_name(rr.name)) return Rcode::kNotZone;
    switch (rr.rrclass) {
      case RRClass::kANY: {
        if (rr.ttl != 0) return Rcode::kFormErr;
        if (rr.type() == RRType::kANY) {
          if (!zone.name_exists(rr.name)) return Rcode::kNXDomain;
        } else {
          if (zone.find(rr.name, rr.type()) == nullptr) {
            return Rcode::kNXRRSet;
          }
        }
        break;
      }
      case RRClass::kNONE: {
        if (rr.ttl != 0) return Rcode::kFormErr;
        if (rr.type() == RRType::kANY) {
          if (zone.name_exists(rr.name)) return Rcode::kYXDomain;
        } else {
          if (zone.find(rr.name, rr.type()) != nullptr) {
            return Rcode::kYXRRSet;
          }
        }
        break;
      }
      case RRClass::kIN: {
        if (rr.ttl != 0) return Rcode::kFormErr;
        auto& set = value_sets[{rr.name, rr.type()}];
        set.name = rr.name;
        set.type = rr.type();
        set.add(rr.rdata);
        break;
      }
      default:
        return Rcode::kFormErr;
    }
  }

  for (const auto& [key, wanted] : value_sets) {
    const RRset* actual = zone.find(key.first, key.second);
    if (actual == nullptr || !actual->same_data(wanted)) {
      return Rcode::kNXRRSet;
    }
  }
  return Rcode::kNoError;
}

namespace {

/// RFC 2136 §3.4.1 pre-scan: reject malformed update records before any
/// mutation happens.
Rcode prescan(const Zone& zone, const std::vector<ResourceRecord>& updates) {
  for (const auto& rr : updates) {
    if (!zone.contains_name(rr.name)) return Rcode::kNotZone;
    switch (rr.rrclass) {
      case RRClass::kIN:
        if (rr.type() == RRType::kANY || rr.type() == RRType::kAXFR) {
          return Rcode::kFormErr;
        }
        break;
      case RRClass::kANY:
        if (rr.ttl != 0) return Rcode::kFormErr;
        break;
      case RRClass::kNONE:
        if (rr.ttl != 0 || rr.type() == RRType::kANY) return Rcode::kFormErr;
        break;
      default:
        return Rcode::kFormErr;
    }
  }
  return Rcode::kNoError;
}

}  // namespace

Rcode apply_update_section(Zone& zone,
                           const std::vector<ResourceRecord>& updates,
                           bool& changed) {
  changed = false;
  const Rcode scan = prescan(zone, updates);
  if (scan != Rcode::kNoError) return scan;

  for (const auto& rr : updates) {
    switch (rr.rrclass) {
      case RRClass::kIN:
        changed |= zone.add_record(rr.name, rr.type(), rr.ttl, rr.rdata);
        break;
      case RRClass::kANY:
        if (rr.type() == RRType::kANY) {
          changed |= zone.remove_name(rr.name);
        } else {
          changed |= zone.remove_rrset(rr.name, rr.type());
        }
        break;
      case RRClass::kNONE:
        changed |= zone.remove_record(rr.name, rr.type(), rr.rdata);
        break;
      default:
        DNSCUP_ASSERT(false && "prescan admitted bad class");
    }
  }
  return Rcode::kNoError;
}

UpdateBuilder::UpdateBuilder(Name zone) : zone_(std::move(zone)) {}

UpdateBuilder& UpdateBuilder::require_name_in_use(const Name& name) {
  ResourceRecord rr;
  rr.name = name;
  rr.rrclass = RRClass::kANY;
  rr.ttl = 0;
  rr.rdata = dns::GenericRdata{static_cast<uint16_t>(RRType::kANY), {}};
  prereqs_.push_back(std::move(rr));
  return *this;
}

UpdateBuilder& UpdateBuilder::require_name_not_in_use(const Name& name) {
  ResourceRecord rr;
  rr.name = name;
  rr.rrclass = RRClass::kNONE;
  rr.ttl = 0;
  rr.rdata = dns::GenericRdata{static_cast<uint16_t>(RRType::kANY), {}};
  prereqs_.push_back(std::move(rr));
  return *this;
}

UpdateBuilder& UpdateBuilder::require_rrset_exists(const Name& name,
                                                   RRType type) {
  ResourceRecord rr;
  rr.name = name;
  rr.rrclass = RRClass::kANY;
  rr.ttl = 0;
  rr.rdata = dns::GenericRdata{static_cast<uint16_t>(type), {}};
  prereqs_.push_back(std::move(rr));
  return *this;
}

UpdateBuilder& UpdateBuilder::require_rrset_exists_value(const Name& name,
                                                         Rdata value) {
  ResourceRecord rr;
  rr.name = name;
  rr.rrclass = RRClass::kIN;
  rr.ttl = 0;
  rr.rdata = std::move(value);
  prereqs_.push_back(std::move(rr));
  return *this;
}

UpdateBuilder& UpdateBuilder::require_rrset_absent(const Name& name,
                                                   RRType type) {
  ResourceRecord rr;
  rr.name = name;
  rr.rrclass = RRClass::kNONE;
  rr.ttl = 0;
  rr.rdata = dns::GenericRdata{static_cast<uint16_t>(type), {}};
  prereqs_.push_back(std::move(rr));
  return *this;
}

UpdateBuilder& UpdateBuilder::add(const Name& name, uint32_t ttl,
                                  Rdata value) {
  updates_.push_back(ResourceRecord{name, RRClass::kIN, ttl, std::move(value)});
  return *this;
}

UpdateBuilder& UpdateBuilder::delete_rrset(const Name& name, RRType type) {
  ResourceRecord rr;
  rr.name = name;
  rr.rrclass = RRClass::kANY;
  rr.ttl = 0;
  rr.rdata = dns::GenericRdata{static_cast<uint16_t>(type), {}};
  updates_.push_back(std::move(rr));
  return *this;
}

UpdateBuilder& UpdateBuilder::delete_name(const Name& name) {
  ResourceRecord rr;
  rr.name = name;
  rr.rrclass = RRClass::kANY;
  rr.ttl = 0;
  rr.rdata = dns::GenericRdata{static_cast<uint16_t>(RRType::kANY), {}};
  updates_.push_back(std::move(rr));
  return *this;
}

UpdateBuilder& UpdateBuilder::delete_record(const Name& name, Rdata value) {
  ResourceRecord rr;
  rr.name = name;
  rr.rrclass = RRClass::kNONE;
  rr.ttl = 0;
  rr.rdata = std::move(value);
  updates_.push_back(std::move(rr));
  return *this;
}

UpdateBuilder& UpdateBuilder::replace_a(const Name& name, uint32_t ttl,
                                        dns::Ipv4 new_address) {
  delete_rrset(name, RRType::kA);
  return add(name, ttl, dns::ARdata{new_address});
}

dns::Message UpdateBuilder::build(uint16_t id) const {
  dns::Message m;
  m.id = id;
  m.flags.opcode = dns::Opcode::kUpdate;
  dns::Question zone_q;
  zone_q.qname = zone_;
  zone_q.qtype = RRType::kSOA;
  zone_q.qclass = RRClass::kIN;
  m.questions.push_back(std::move(zone_q));
  m.answers = prereqs_;    // prerequisite section
  m.authority = updates_;  // update section
  return m;
}

}  // namespace dnscup::server

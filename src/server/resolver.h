// Caching recursive resolver — the "local DNS nameserver" of the paper.
//
// Serves stub clients over its transport, resolves misses iteratively
// through the nameserver hierarchy (root hints -> referrals -> authority),
// caches positive and negative answers by TTL, coalesces duplicate
// in-flight questions, and retries/fails over across servers on timeout.
//
// DNScup's cache-side module attaches through the Extension interface: it
// can decorate outgoing queries (EXT flag + RRC rate report), observe
// responses (granted LLT -> lease registration) and consume unsolicited
// messages (CACHE-UPDATE pushes).  With no extension installed this is a
// plain TTL resolver — the backward-compatible deployment story of §1.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "dns/message.h"
#include "net/event_loop.h"
#include "net/transport.h"
#include "server/cache.h"

namespace dnscup::server {

class CachingResolver {
 public:
  struct Config {
    int max_retries = 2;           ///< retransmissions per server
    net::Duration query_timeout = net::seconds(2);
    int max_referrals = 16;
    int max_cname_hops = 8;
    int max_indirections = 4;      ///< nested NS-address resolutions
    std::size_t cache_capacity = 0;
    uint32_t default_negative_ttl = 60;
    /// Registry for resolver_* and resolver_cache_* instruments
    /// (default_registry() when null).
    metrics::MetricsRegistry* metrics = nullptr;
    /// Storage backend factory for the cache (cache_store.h); null uses
    /// the heap store.  A persistent backend may arrive warm-loaded —
    /// its entries serve immediately.
    std::function<std::unique_ptr<CacheStoreBackend>()> cache_store;
  };

  struct Outcome {
    enum class Status { kOk, kNXDomain, kNoData, kServFail, kTimeout };
    Status status = Status::kServFail;
    dns::RRset rrset;   ///< the answer RRset when status == kOk
    std::vector<dns::ResourceRecord> cname_chain;
    bool from_cache = false;
  };
  using Callback = std::function<void(const Outcome&)>;

  struct Stats {
    uint64_t client_queries = 0;
    uint64_t upstream_queries = 0;
    uint64_t retransmissions = 0;
    uint64_t timeouts = 0;
    uint64_t servfails = 0;
    uint64_t coalesced = 0;
  };

  /// DNScup (or any protocol extension) plugs in here.
  class Extension {
   public:
    virtual ~Extension() = default;
    /// Observes every client-side question (cache hit or miss) — this is
    /// where DNScup measures the local query rate it reports as RRC.
    virtual void on_client_query(const dns::Name& qname, dns::RRType qtype) {
      (void)qname;
      (void)qtype;
    }
    /// Chance to mutate an outgoing upstream query (set EXT flag, RRC).
    virtual void on_outgoing_query(dns::Message& query) { (void)query; }
    /// Observes every upstream response after normal processing.
    virtual void on_response(const net::Endpoint& from,
                             const dns::Message& response) {
      (void)from;
      (void)response;
    }
    /// First-chance handler for unsolicited datagrams (server pushes).
    /// Return true when consumed.
    virtual bool on_unsolicited(const net::Endpoint& from,
                                const dns::Message& message) {
      (void)from;
      (void)message;
      return false;
    }
  };

  CachingResolver(net::Transport& transport, net::EventLoop& loop,
                  std::vector<net::Endpoint> root_servers, Config config);
  CachingResolver(net::Transport& transport, net::EventLoop& loop,
                  std::vector<net::Endpoint> root_servers)
      : CachingResolver(transport, loop, std::move(root_servers), Config()) {}

  /// Resolves (name, type); the callback fires exactly once, possibly
  /// synchronously on a cache hit.
  void resolve(const dns::Name& qname, dns::RRType qtype, Callback cb);

  /// Forces a network re-resolution even when the cache is fresh (the
  /// cache entry is refreshed from the response as usual).  DNScup's
  /// cache-side module uses this to re-negotiate a lease when the local
  /// query rate has drifted from what was last reported (§5.1.2).
  void refresh(const dns::Name& qname, dns::RRType qtype, Callback cb);

  ResolverCache& cache() { return cache_; }
  /// Value snapshot of the registry-backed counters.
  Stats stats() const;
  net::Transport& transport() { return *transport_; }
  net::EventLoop& loop() { return *loop_; }

  /// The extension must outlive the resolver (not owned).
  void set_extension(Extension* extension) { extension_ = extension; }

 private:
  struct Task {
    dns::Name qname;
    dns::RRType qtype;
    int depth = 0;  // combined guard for cname chasing + indirections
    std::vector<Callback> callbacks;
    std::vector<net::Endpoint> servers;
    std::size_t server_idx = 0;
    int retries_left = 0;
    int referrals = 0;
    net::TimerHandle timer;
  };

  struct TaskKey {
    dns::Name name;
    dns::RRType type;
    bool operator<(const TaskKey& other) const {
      if (name < other.name) return true;
      if (other.name < name) return false;
      return type < other.type;
    }
  };

  void on_datagram(const net::Endpoint& from, std::span<const uint8_t> data);
  void handle_client_query(const net::Endpoint& from,
                           const dns::Message& request);
  void handle_upstream_response(const net::Endpoint& from,
                                const dns::Message& response);

  void resolve_internal(const dns::Name& qname, dns::RRType qtype, int depth,
                        Callback cb);
  bool answer_from_cache(const dns::Name& qname, dns::RRType qtype, int depth,
                         const Callback& cb);
  void start_task(const dns::Name& qname, dns::RRType qtype, int depth,
                  Callback cb);
  std::vector<net::Endpoint> best_cached_servers(const dns::Name& qname);
  void send_current(uint16_t qid);
  void on_timeout(uint16_t qid);
  void advance_server(uint16_t qid);
  void finish(uint16_t qid, Outcome outcome);
  void process_answer(uint16_t qid, const dns::Message& response,
                      const std::function<void()>& notify_extension);
  void process_referral(uint16_t qid, const dns::Message& response);

  struct Instruments {
    metrics::Counter client_queries;
    metrics::Counter upstream_queries;
    metrics::Counter retransmissions;
    metrics::Counter timeouts;
    metrics::Counter servfails;
    metrics::Counter coalesced;
  };

  net::Transport* transport_;
  net::EventLoop* loop_;
  std::vector<net::Endpoint> roots_;
  Config config_;
  ResolverCache cache_;
  Extension* extension_ = nullptr;
  Instruments stats_;

  std::map<uint16_t, Task> tasks_;
  std::map<TaskKey, uint16_t> task_by_key_;
  uint16_t next_qid_ = 1;
};

}  // namespace dnscup::server

#include "server/authoritative.h"

#include <algorithm>

#include "server/update.h"
#include "util/assert.h"
#include "util/logging.h"

namespace dnscup::server {

using dns::Message;
using dns::Name;
using dns::Opcode;
using dns::Rcode;
using dns::ResourceRecord;
using dns::RRClass;
using dns::RRset;
using dns::RRType;
using dns::Zone;

AuthServer::AuthServer(net::Transport& transport, net::EventLoop& loop,
                       Role role, metrics::MetricsRegistry* metrics)
    : transport_(&transport), loop_(&loop), role_(role) {
  auto& registry = metrics::resolve(metrics);
  const metrics::Labels base{
      {"instance", registry.next_instance("auth_server")}};
  auto labeled = [&](const char* key, const char* value) {
    metrics::Labels labels = base;
    labels.emplace_back(key, value);
    return labels;
  };
  stats_.queries =
      registry.counter("auth_server_requests", labeled("op", "query"));
  stats_.updates =
      registry.counter("auth_server_requests", labeled("op", "update"));
  stats_.notifies_received =
      registry.counter("auth_server_requests", labeled("op", "notify"));
  stats_.notifies_sent = registry.counter("auth_server_notifies_sent", base);
  stats_.axfr_served = registry.counter("auth_server_transfers",
                                        labeled("kind", "axfr_served"));
  stats_.axfr_pulled = registry.counter("auth_server_transfers",
                                        labeled("kind", "axfr_pulled"));
  stats_.ixfr_served = registry.counter("auth_server_transfers",
                                        labeled("kind", "ixfr_served"));
  stats_.ixfr_fallbacks = registry.counter("auth_server_transfers",
                                           labeled("kind", "ixfr_fallback"));
  stats_.ixfr_applied = registry.counter("auth_server_transfers",
                                         labeled("kind", "ixfr_applied"));
  stats_.transfer_aborts =
      registry.counter("auth_server_transfers", labeled("kind", "abort"));
  stats_.refused =
      registry.counter("auth_server_errors", labeled("rcode", "refused"));
  stats_.formerr =
      registry.counter("auth_server_errors", labeled("rcode", "formerr"));
  transport_->set_receive_handler(
      [this](const net::Endpoint& from, std::span<const uint8_t> data) {
        on_datagram(from, data);
      });
}

AuthServer::Stats AuthServer::stats() const {
  return Stats{
      .queries = stats_.queries,
      .updates = stats_.updates,
      .notifies_sent = stats_.notifies_sent,
      .notifies_received = stats_.notifies_received,
      .axfr_served = stats_.axfr_served,
      .axfr_pulled = stats_.axfr_pulled,
      .ixfr_served = stats_.ixfr_served,
      .ixfr_fallbacks = stats_.ixfr_fallbacks,
      .ixfr_applied = stats_.ixfr_applied,
      .transfer_aborts = stats_.transfer_aborts,
      .refused = stats_.refused,
      .formerr = stats_.formerr,
  };
}

void AuthServer::add_zone(Zone zone) {
  DNSCUP_ASSERT(zone.validate().ok());
  Name origin = zone.origin();
  zones_.insert_or_assign(std::move(origin), std::move(zone));
}

std::size_t AuthServer::reload_zone(Zone zone) {
  DNSCUP_ASSERT(zone.validate().ok());
  auto it = zones_.find(zone.origin());
  if (it == zones_.end()) {
    add_zone(std::move(zone));
    return 0;
  }
  const auto changes = dns::diff_zones(it->second, zone);
  if (changes.empty()) {
    if (dns::serial_gt(zone.serial(), it->second.serial())) {
      it->second = std::move(zone);  // adopt the new serial, no data change
    }
    return 0;
  }
  if (!dns::serial_gt(zone.serial(), it->second.serial())) {
    zone.bump_serial();
  }
  record_journal(zone.origin(), it->second.serial(), zone.serial(), changes);
  it->second = std::move(zone);
  fire_change_hooks(it->second, changes);
  notify_slaves(it->second);
  return changes.size();
}

Zone* AuthServer::find_zone(const Name& name) {
  Zone* best = nullptr;
  std::size_t best_labels = 0;
  for (auto& [origin, zone] : zones_) {
    if (name.is_subdomain_of(origin) &&
        (best == nullptr || origin.label_count() >= best_labels)) {
      best = &zone;
      best_labels = origin.label_count();
    }
  }
  return best;
}

const Zone* AuthServer::find_zone(const Name& name) const {
  return const_cast<AuthServer*>(this)->find_zone(name);
}

std::vector<Name> AuthServer::zone_origins() const {
  std::vector<Name> out;
  out.reserve(zones_.size());
  for (const auto& [origin, zone] : zones_) out.push_back(origin);
  return out;
}

void AuthServer::add_slave(const net::Endpoint& slave) {
  slaves_.push_back(slave);
}

void AuthServer::set_master(const net::Endpoint& master) { master_ = master; }

void AuthServer::request_transfer(const Name& origin) {
  DNSCUP_ASSERT(master_.has_value());
  const uint16_t transfer_id = next_id_++;
  transfers_in_progress_[transfer_id] = TransferState{origin, {}, 0, 0};

  Message request;
  request.id = transfer_id;
  request.flags.opcode = Opcode::kQuery;
  auto it = zones_.find(origin);
  if (it != zones_.end()) {
    // Incremental: carry our current SOA so the master can diff from it.
    request.questions.push_back(
        dns::Question{origin, RRType::kIXFR, RRClass::kIN, 0});
    const RRset* soa = it->second.find(origin, RRType::kSOA);
    DNSCUP_ASSERT(soa != nullptr);
    for (auto& rec : soa->to_records()) {
      request.authority.push_back(std::move(rec));
    }
  } else {
    request.questions.push_back(
        dns::Question{origin, RRType::kAXFR, RRClass::kIN, 0});
  }
  transport_->send(*master_, encode_scratch(request));
}

std::size_t AuthServer::journal_size(const Name& origin) const {
  auto it = journals_.find(origin);
  return it == journals_.end() ? 0 : it->second.size();
}

void AuthServer::record_journal(const Name& origin, uint32_t from_serial,
                                uint32_t to_serial,
                                std::vector<dns::RRsetChange> changes) {
  auto& journal = journals_[origin];
  journal.push_back(JournalEntry{from_serial, to_serial, std::move(changes)});
  while (journal.size() > journal_limit_) {
    journal.erase(journal.begin());
  }
}

void AuthServer::add_change_listener(ChangeHook hook) {
  change_hooks_.push_back(std::move(hook));
}

std::span<const uint8_t> AuthServer::encode_scratch(const Message& m) {
  scratch_.clear();
  dns::ByteWriter w(scratch_);
  m.encode_into(w);
  return w.message();
}

void AuthServer::on_datagram(const net::Endpoint& from,
                             std::span<const uint8_t> data) {
  if (try_fast_query(from, data)) return;
  auto decoded = Message::decode(data);
  if (!decoded) {
    ++stats_.formerr;
    DNSCUP_LOG_DEBUG("auth %s: dropping undecodable datagram from %s (%s)",
                     transport_->local_endpoint().to_string().c_str(),
                     from.to_string().c_str(),
                     decoded.error().message.c_str());
    return;
  }
  auto response = handle(from, decoded.value());
  if (response.has_value()) {
    transport_->send(from, encode_scratch(*response));
  }
}

bool AuthServer::try_fast_query(const net::Endpoint& from,
                                std::span<const uint8_t> data) {
  // Preconditions under which the fast path is bit-for-bit equivalent to
  // decode + handle_query + encode.  Anything else falls through.
  if (round_robin_) return false;
  if (query_hook_ && !fast_query_hook_) return false;
  if (extension_handler_ && ext_consumes_queries_) return false;
  if (data.size() < 12) return false;

  const auto be16 = [&data](std::size_t i) {
    return static_cast<uint16_t>(data[i] << 8 | data[i + 1]);
  };
  const uint16_t id = be16(0);
  const dns::Flags flags = dns::Flags::unpack(be16(2));
  if (flags.qr || flags.ext || flags.opcode != Opcode::kQuery) return false;
  if (be16(4) != 1 || be16(6) != 0 || be16(8) != 0 || be16(10) != 0) {
    return false;  // exactly one question, no other sections
  }

  dns::ByteReader r(data);
  (void)r.seek(12);
  dns::NameView qname;
  if (!r.name_view(qname).ok()) return false;
  // Pointer-free qname required so the question can be byte-echoed below.
  if (r.offset() != 12 + qname.wire_length()) return false;
  const auto qtype_raw = r.u16();
  if (!qtype_raw.ok()) return false;
  if (!r.u16().ok()) return false;  // qclass (ignored by lookup, as in slow path)
  if (!r.at_end()) return false;    // trailing bytes: slow path drops as formerr
  const RRType qtype = static_cast<RRType>(qtype_raw.value());
  if (qtype == RRType::kANY || qtype == RRType::kAXFR ||
      qtype == RRType::kIXFR || qtype == RRType::kOPT) {
    return false;
  }

  // Longest-match zone, same rule as find_zone but probing with the view.
  const Zone* zone = nullptr;
  std::size_t best_labels = 0;
  for (const auto& [origin, z] : zones_) {
    if (qname.is_subdomain_of(origin) &&
        (zone == nullptr || origin.label_count() >= best_labels)) {
      zone = &z;
      best_labels = origin.label_count();
    }
  }

  const std::size_t question_len = r.offset() - 12;
  const auto send_fast = [&](const dns::Flags& rf, const RRset* answer,
                             const RRset* authority) {
    scratch_.clear();
    dns::ByteWriter w(scratch_);
    w.begin_message();
    w.u16(id);
    w.u16(rf.pack());
    w.u16(1);
    w.u16(answer != nullptr ? static_cast<uint16_t>(answer->size()) : 0);
    w.u16(authority != nullptr ? static_cast<uint16_t>(authority->size())
                               : 0);
    w.u16(0);
    // Echo the question bytes verbatim (identical to re-encoding, since the
    // qname is pointer-free) and register the qname labels as compression
    // targets so record owner names compress exactly as on the slow path.
    w.bytes(data.subspan(12, question_len));
    w.register_name(12);
    if (answer != nullptr) dns::encode_rrset(*answer, w);
    if (authority != nullptr) dns::encode_rrset(*authority, w);
    transport_->send(from, w.message());
  };

  dns::Flags rf;
  rf.qr = true;
  rf.opcode = Opcode::kQuery;
  rf.rd = flags.rd;

  if (zone == nullptr) {
    ++stats_.queries;
    ++stats_.refused;
    rf.rcode = Rcode::kRefused;
    send_fast(rf, nullptr, nullptr);
    // No hook: the slow path returns REFUSED before its QueryHook fires.
    return true;
  }

  const Zone::LookupRef result = zone->lookup_ref(qname, qtype);
  switch (result.status) {
    case Zone::LookupStatus::kSuccess:
      if (result.rrset->type == RRType::kNS ||
          result.rrset->type == RRType::kMX) {
        return false;  // answers that pull glue: slow path
      }
      ++stats_.queries;
      rf.aa = true;
      send_fast(rf, result.rrset, nullptr);
      break;
    case Zone::LookupStatus::kNXDomain:
      ++stats_.queries;
      rf.aa = true;
      rf.rcode = Rcode::kNXDomain;
      send_fast(rf, nullptr, zone->find_apex_soa());
      break;
    case Zone::LookupStatus::kNoData:
      ++stats_.queries;
      rf.aa = true;
      send_fast(rf, nullptr, zone->find_apex_soa());
      break;
    default:
      // CNAME chases, referrals, kNotInZone races: slow path.
      return false;
  }
  if (fast_query_hook_) fast_query_hook_(from, qname, qtype);
  return true;
}

std::optional<Message> AuthServer::handle(const net::Endpoint& from,
                                          const Message& request) {
  if (extension_handler_ && extension_handler_(from, request)) {
    return std::nullopt;
  }
  if (request.flags.qr) {
    // Responses: transfer chunks we are pulling, or NOTIFY acks.
    if (request.flags.opcode == Opcode::kQuery &&
        transfers_in_progress_.count(request.id) > 0) {
      handle_transfer_response(from, request);
    }
    return std::nullopt;
  }
  switch (request.flags.opcode) {
    case Opcode::kQuery:
      if (request.questions.size() == 1 &&
          request.questions[0].qtype == RRType::kAXFR) {
        serve_axfr(from, request);
        return std::nullopt;
      }
      if (request.questions.size() == 1 &&
          request.questions[0].qtype == RRType::kIXFR) {
        serve_ixfr(from, request);
        return std::nullopt;
      }
      return handle_query(from, request);
    case Opcode::kUpdate:
      return handle_update(from, request);
    case Opcode::kNotify:
      return handle_notify(from, request);
    default: {
      Message resp = make_response(request);
      resp.flags.rcode = Rcode::kNotImp;
      return resp;
    }
  }
}

namespace {

/// Adds glue A/AAAA records from the zone for every NS/MX target in
/// `sources` (RFC 1034 §4.3.2 step 6 additional-section processing).
void add_glue(const Zone& zone, const std::vector<ResourceRecord>& sources,
              std::vector<ResourceRecord>& additional) {
  for (const auto& rr : sources) {
    const Name* target = nullptr;
    if (const auto* ns = std::get_if<dns::NSRdata>(&rr.rdata)) {
      target = &ns->nsdname;
    } else if (const auto* mx = std::get_if<dns::MXRdata>(&rr.rdata)) {
      target = &mx->exchange;
    }
    if (target == nullptr || !zone.contains_name(*target)) continue;
    for (RRType t : {RRType::kA, RRType::kAAAA}) {
      if (const RRset* glue = zone.find(*target, t)) {
        for (const auto& rec : glue->to_records()) {
          // Avoid duplicate additional records.
          if (std::find(additional.begin(), additional.end(), rec) ==
              additional.end()) {
            additional.push_back(rec);
          }
        }
      }
    }
  }
}

void append_rrset(const RRset& set, std::vector<ResourceRecord>& out) {
  for (auto& rec : set.to_records()) out.push_back(std::move(rec));
}

}  // namespace

Message AuthServer::handle_query(const net::Endpoint& from,
                                 const Message& request) {
  ++stats_.queries;
  Message resp = make_response(request);
  if (request.questions.size() != 1) {
    ++stats_.formerr;
    resp.flags.rcode = Rcode::kFormErr;
    return resp;
  }
  const auto& q = request.questions[0];
  const Zone* zone = find_zone(q.qname);
  if (zone == nullptr) {
    ++stats_.refused;
    resp.flags.rcode = Rcode::kRefused;
    return resp;
  }

  Name qname = q.qname;
  int cname_hops = 0;
  for (;;) {
    const auto result = zone->lookup(qname, q.qtype);
    switch (result.status) {
      case Zone::LookupStatus::kSuccess:
        resp.flags.aa = true;
        for (const auto& set : result.rrsets) {
          const std::size_t first = resp.answers.size();
          append_rrset(set, resp.answers);
          if (round_robin_ && set.size() > 1) {
            const uint32_t shift = rotation_counters_[set.name]++;
            std::rotate(resp.answers.begin() +
                            static_cast<std::ptrdiff_t>(first),
                        resp.answers.begin() +
                            static_cast<std::ptrdiff_t>(
                                first + shift % set.size()),
                        resp.answers.end());
          }
        }
        add_glue(*zone, resp.answers, resp.additional);
        break;
      case Zone::LookupStatus::kCName: {
        resp.flags.aa = true;
        append_rrset(result.rrsets[0], resp.answers);
        const auto& target =
            std::get<dns::CNAMERdata>(result.rrsets[0].rdatas.front()).target;
        if (zone->contains_name(target) && ++cname_hops <= 8) {
          qname = target;
          continue;  // chase within our authoritative data
        }
        break;
      }
      case Zone::LookupStatus::kDelegation:
        resp.flags.aa = false;
        for (const auto& set : result.rrsets) {
          append_rrset(set, resp.authority);
        }
        add_glue(*zone, resp.authority, resp.additional);
        break;
      case Zone::LookupStatus::kNXDomain: {
        resp.flags.aa = true;
        resp.flags.rcode = Rcode::kNXDomain;
        const RRset* soa = zone->find(zone->origin(), RRType::kSOA);
        if (soa != nullptr) append_rrset(*soa, resp.authority);
        break;
      }
      case Zone::LookupStatus::kNoData: {
        resp.flags.aa = true;
        const RRset* soa = zone->find(zone->origin(), RRType::kSOA);
        if (soa != nullptr) append_rrset(*soa, resp.authority);
        break;
      }
      case Zone::LookupStatus::kNotInZone:
        ++stats_.refused;
        resp.flags.rcode = Rcode::kRefused;
        break;
    }
    break;
  }

  if (query_hook_) query_hook_(from, request, resp);
  return resp;
}

Message AuthServer::handle_update(const net::Endpoint& from,
                                  const Message& request) {
  (void)from;
  ++stats_.updates;
  Message resp = make_response(request);
  resp.answers.clear();  // update responses carry only the zone section
  resp.flags.rcode = apply_update(request);
  return resp;
}

dns::Rcode AuthServer::apply_update(const Message& update) {
  if (role_ != Role::kMaster) return Rcode::kNotAuth;
  if (update.questions.size() != 1 ||
      update.questions[0].qtype != RRType::kSOA) {
    return Rcode::kFormErr;
  }
  auto it = zones_.find(update.questions[0].qname);
  if (it == zones_.end()) return Rcode::kNotAuth;
  Zone& zone = it->second;

  const Rcode prereq = check_prerequisites(zone, update.answers);
  if (prereq != Rcode::kNoError) return prereq;

  const Zone snapshot = zone;  // for diffing
  bool changed = false;
  const Rcode rc = apply_update_section(zone, update.authority, changed);
  if (rc != Rcode::kNoError) return rc;
  if (changed) {
    zone.bump_serial();
    const auto changes = dns::diff_zones(snapshot, zone);
    record_journal(zone.origin(), snapshot.serial(), zone.serial(), changes);
    fire_change_hooks(zone, changes);
    notify_slaves(zone);
  }
  return Rcode::kNoError;
}

std::optional<Message> AuthServer::handle_notify(const net::Endpoint& from,
                                                 const Message& request) {
  ++stats_.notifies_received;
  Message resp = make_response(request);
  if (request.questions.size() != 1) {
    resp.flags.rcode = Rcode::kFormErr;
    return resp;
  }
  if (role_ != Role::kSlave || !master_.has_value() || from != *master_) {
    resp.flags.rcode = Rcode::kRefused;
    return resp;
  }
  // Pull the zone: one AXFR query to the master.
  request_transfer(request.questions[0].qname);
  return resp;
}

namespace {

/// Builds a SOA marker record for IXFR diff streams: the zone's SOA with
/// the serial overridden to mark a journal-step boundary.
ResourceRecord soa_marker(const Zone& zone, uint32_t serial) {
  const RRset* soa_set = zone.find(zone.origin(), RRType::kSOA);
  DNSCUP_ASSERT(soa_set != nullptr);
  ResourceRecord rr = soa_set->to_records().front();
  std::get<dns::SOARdata>(rr.rdata).serial = serial;
  return rr;
}

std::vector<ResourceRecord> full_zone_stream(const Zone& zone) {
  std::vector<ResourceRecord> stream;
  for (const RRset& set : zone.all_rrsets()) {
    for (auto& rec : set.to_records()) stream.push_back(std::move(rec));
  }
  DNSCUP_ASSERT(!stream.empty() && stream.front().type() == RRType::kSOA);
  stream.push_back(stream.front());  // trailing SOA
  return stream;
}

}  // namespace

void AuthServer::send_record_stream(const net::Endpoint& to,
                                    const Message& request,
                                    std::vector<ResourceRecord> stream) {
  // Chunked so every datagram fits in the 512-byte UDP limit.  Real DNS
  // transfers ride TCP, which is ordered and reliable; our UDP substitute
  // numbers the chunks (EXT flag + LLT reused as a sequence counter) so a
  // receiver can detect loss or reordering and abort instead of applying
  // a mis-framed stream.
  uint16_t seq = 0;
  auto fresh_chunk = [&request, &seq] {
    Message chunk = make_response(request);
    chunk.flags.aa = true;
    chunk.flags.ext = true;
    chunk.llt = seq++;
    return chunk;
  };
  Message chunk = fresh_chunk();
  for (auto& rec : stream) {
    chunk.answers.push_back(std::move(rec));
    if (encode_scratch(chunk).size() > dns::kMaxUdpPayload) {
      ResourceRecord overflow = std::move(chunk.answers.back());
      chunk.answers.pop_back();
      DNSCUP_ASSERT(!chunk.answers.empty() &&
                    "single record exceeds datagram size");
      transport_->send(to, encode_scratch(chunk));
      chunk = fresh_chunk();
      chunk.answers.push_back(std::move(overflow));
    }
  }
  if (!chunk.answers.empty()) transport_->send(to, encode_scratch(chunk));
}

void AuthServer::serve_axfr(const net::Endpoint& to, const Message& request) {
  const Name& origin = request.questions[0].qname;
  auto it = zones_.find(origin);
  if (it == zones_.end()) {
    Message resp = make_response(request);
    resp.flags.rcode = Rcode::kNotAuth;
    transport_->send(to, encode_scratch(resp));
    return;
  }
  ++stats_.axfr_served;
  send_record_stream(to, request, full_zone_stream(it->second));
}

void AuthServer::serve_ixfr(const net::Endpoint& to, const Message& request) {
  const Name& origin = request.questions[0].qname;
  auto it = zones_.find(origin);
  if (it == zones_.end()) {
    Message resp = make_response(request);
    resp.flags.rcode = Rcode::kNotAuth;
    transport_->send(to, encode_scratch(resp));
    return;
  }
  const Zone& zone = it->second;

  // The requester's serial rides in the authority-section SOA (RFC 1995).
  std::optional<uint32_t> client_serial;
  for (const auto& rr : request.authority) {
    if (const auto* soa = std::get_if<dns::SOARdata>(&rr.rdata)) {
      client_serial = soa->serial;
    }
  }
  if (!client_serial.has_value()) {
    ++stats_.ixfr_fallbacks;
    send_record_stream(to, request, full_zone_stream(zone));
    return;
  }
  if (*client_serial == zone.serial()) {
    // Up to date: a single SOA says so.
    ++stats_.ixfr_served;
    send_record_stream(to, request, {soa_marker(zone, zone.serial())});
    return;
  }

  // Walk the journal chain from the client's serial to the present.
  std::vector<const JournalEntry*> chain;
  uint32_t cursor = *client_serial;
  const auto journal_it = journals_.find(origin);
  if (journal_it != journals_.end()) {
    bool advanced = true;
    while (cursor != zone.serial() && advanced) {
      advanced = false;
      for (const auto& entry : journal_it->second) {
        if (entry.from_serial == cursor) {
          chain.push_back(&entry);
          cursor = entry.to_serial;
          advanced = true;
          break;
        }
      }
    }
  }
  if (cursor != zone.serial()) {
    // The journal no longer covers the requester: full transfer.
    ++stats_.ixfr_fallbacks;
    send_record_stream(to, request, full_zone_stream(zone));
    return;
  }

  // RFC 1995 diff stream:
  //   SOA(new) { SOA(old_i) deletions SOA(new_i) additions }* SOA(new)
  ++stats_.ixfr_served;
  std::vector<ResourceRecord> stream;
  stream.push_back(soa_marker(zone, zone.serial()));
  for (const JournalEntry* entry : chain) {
    stream.push_back(soa_marker(zone, entry->from_serial));
    for (const auto& change : entry->changes) {
      if (change.before.has_value()) {
        for (auto& rec : change.before->to_records()) {
          stream.push_back(std::move(rec));
        }
      }
    }
    stream.push_back(soa_marker(zone, entry->to_serial));
    for (const auto& change : entry->changes) {
      if (change.after.has_value()) {
        for (auto& rec : change.after->to_records()) {
          stream.push_back(std::move(rec));
        }
      }
    }
  }
  stream.push_back(soa_marker(zone, zone.serial()));
  send_record_stream(to, request, std::move(stream));
}

void AuthServer::handle_transfer_response(const net::Endpoint& from,
                                          const Message& response) {
  (void)from;
  auto it = transfers_in_progress_.find(response.id);
  DNSCUP_ASSERT(it != transfers_in_progress_.end());
  TransferState& state = it->second;

  // Chunk-sequence check: a lost or reordered chunk makes the remaining
  // stream unframeable — abort and let the next NOTIFY/refresh retry.
  if (!response.flags.ext || response.llt != state.next_seq) {
    transfers_in_progress_.erase(it);
    ++stats_.transfer_aborts;
    return;
  }
  ++state.next_seq;

  for (const auto& rr : response.answers) {
    const bool is_soa =
        rr.type() == RRType::kSOA && rr.name == state.origin;
    state.records.push_back(rr);
    if (!is_soa) continue;
    ++state.soa_count;
    const uint32_t serial = std::get<dns::SOARdata>(rr.rdata).serial;
    if (state.soa_count == 1) {
      state.header_serial = serial;
      // Single-SOA "you are up to date" reply.
      auto zit = zones_.find(state.origin);
      if (zit != zones_.end() && serial == zit->second.serial()) {
        transfers_in_progress_.erase(it);
        return;
      }
      continue;
    }
    // Terminal SOA: even-numbered occurrence echoing the header serial
    // (2 for a full transfer, 2k+2 for a k-step diff; old-serial markers
    // land on even positions but can never equal the header serial).
    if (state.soa_count % 2 == 0 && serial == state.header_serial) {
      std::vector<ResourceRecord> records = std::move(state.records);
      const Name origin = state.origin;
      transfers_in_progress_.erase(it);
      finish_transfer(origin, std::move(records));
      return;
    }
  }
}

void AuthServer::finish_transfer(const Name& origin,
                                 std::vector<ResourceRecord> records) {
  DNSCUP_ASSERT(records.size() >= 2);
  const bool incremental =
      records[1].type() == RRType::kSOA && records[1].name == origin &&
      records.size() > 2;
  if (incremental) {
    if (apply_ixfr_stream(origin, records)) return;
    // Diff could not be applied (serial mismatch): fall back to a full
    // transfer so the zone still converges; the current zone keeps
    // serving in the meantime.
    if (master_.has_value()) {
      const uint16_t transfer_id = next_id_++;
      transfers_in_progress_[transfer_id] = TransferState{origin, {}, 0, 0};
      Message full;
      full.id = transfer_id;
      full.flags.opcode = Opcode::kQuery;
      full.questions.push_back(
          dns::Question{origin, RRType::kAXFR, RRClass::kIN, 0});
      transport_->send(*master_, encode_scratch(full));
    }
    return;
  }

  // Full zone: rebuild and swap if newer.
  Zone incoming(origin);
  for (std::size_t i = 0; i + 1 < records.size(); ++i) {  // skip trailer
    const auto& rec = records[i];
    incoming.add_record(rec.name, rec.type(), rec.ttl, rec.rdata);
  }
  if (!incoming.validate().ok()) return;

  auto zit = zones_.find(origin);
  if (zit != zones_.end() &&
      !dns::serial_gt(incoming.serial(), zit->second.serial())) {
    return;  // not newer than what we hold
  }
  ++stats_.axfr_pulled;
  std::vector<dns::RRsetChange> changes;
  uint32_t old_serial = 0;
  if (zit != zones_.end()) {
    old_serial = zit->second.serial();
    changes = dns::diff_zones(zit->second, incoming);
    zit->second = incoming;
  } else {
    zones_.emplace(origin, incoming);
  }
  if (!changes.empty()) {
    record_journal(origin, old_serial, incoming.serial(), changes);
  }
  fire_change_hooks(zones_.at(origin), changes);
}

bool AuthServer::apply_ixfr_stream(const Name& origin,
                                   const std::vector<ResourceRecord>& records) {
  auto zit = zones_.find(origin);
  if (zit == zones_.end()) return false;
  const Zone before = zit->second;
  Zone zone = zit->second;

  // records: SOA(new) { SOA(old) dels SOA(new_i) adds }* SOA(new)
  const uint32_t target_serial =
      std::get<dns::SOARdata>(records.front().rdata).serial;
  std::size_t i = 1;
  const std::size_t end = records.size() - 1;  // trailing SOA
  while (i < end) {
    const auto* old_soa = std::get_if<dns::SOARdata>(&records[i].rdata);
    if (old_soa == nullptr || old_soa->serial != zone.serial()) {
      return false;  // chain does not start at our serial
    }
    ++i;
    std::vector<const ResourceRecord*> deletions;
    while (i < end && records[i].type() != RRType::kSOA) {
      deletions.push_back(&records[i]);
      ++i;
    }
    if (i >= end) return false;  // malformed: missing new-serial marker
    const auto* new_soa = std::get_if<dns::SOARdata>(&records[i].rdata);
    if (new_soa == nullptr) return false;
    const uint32_t step_serial = new_soa->serial;
    ++i;
    std::vector<const ResourceRecord*> additions;
    while (i < end && records[i].type() != RRType::kSOA) {
      additions.push_back(&records[i]);
      ++i;
    }

    // Apply the step per affected RRset: new set = (old − dels) ∪ adds.
    // Rewriting whole sets sidesteps ordering hazards (e.g. the apex NS
    // protection rejecting a delete-all-then-add sequence).
    std::map<std::pair<Name, RRType>, RRset> rebuilt;
    auto slot = [&](const ResourceRecord& rec) -> RRset& {
      auto [it2, inserted] =
          rebuilt.try_emplace({rec.name, rec.type()});
      if (inserted) {
        const RRset* current = zone.find(rec.name, rec.type());
        it2->second = current != nullptr
                          ? *current
                          : RRset{rec.name, rec.type(), rec.rrclass, rec.ttl,
                                  {}};
      }
      return it2->second;
    };
    for (const ResourceRecord* rec : deletions) {
      slot(*rec).remove(rec->rdata);
    }
    for (const ResourceRecord* rec : additions) {
      RRset& set = slot(*rec);
      set.add(rec->rdata);
      set.ttl = rec->ttl;
    }
    for (auto& [key, set] : rebuilt) {
      if (set.empty()) {
        zone.remove_rrset(key.first, key.second);
      } else {
        zone.put(std::move(set));
      }
    }
    zone.set_serial(step_serial);
  }
  if (zone.serial() != target_serial) return false;

  ++stats_.ixfr_applied;
  const auto changes = dns::diff_zones(before, zone);
  record_journal(origin, before.serial(), zone.serial(), changes);
  zit->second = std::move(zone);
  fire_change_hooks(zit->second, changes);
  return true;
}

void AuthServer::notify_slaves(const Zone& zone) {
  const RRset* soa = zone.find(zone.origin(), RRType::kSOA);
  for (const auto& slave : slaves_) {
    Message notify;
    notify.id = next_id_++;
    notify.flags.opcode = Opcode::kNotify;
    notify.flags.aa = true;
    notify.questions.push_back(
        dns::Question{zone.origin(), RRType::kSOA, RRClass::kIN, 0});
    if (soa != nullptr) {
      for (auto& rec : soa->to_records()) {
        notify.answers.push_back(std::move(rec));
      }
    }
    transport_->send(slave, encode_scratch(notify));
    ++stats_.notifies_sent;
  }
}

void AuthServer::fire_change_hooks(
    const Zone& zone, const std::vector<dns::RRsetChange>& changes) {
  for (const auto& hook : change_hooks_) hook(zone, changes);
}

}  // namespace dnscup::server

// Pluggable storage backend behind server::ResolverCache — the same
// extraction pattern as net::IoBackend: the cache's observable behavior
// (lookup/put/apply_update/invalidate semantics and stats) lives in
// ResolverCache, while the entry container (hash map + LRU order +
// zone-serial sidecar) is a backend that can be swapped.
//
// Two backends exist:
//  * HeapCacheStore (here) — the original unordered_map + LRU list; all
//    state is lost on process exit.
//  * cachestore::MmapCacheStore (src/cachestore) — serves from the same
//    heap structures but mirrors every committed mutation into an
//    mmap-backed file image, so a restart reloads the cache warm.
//
// The contract around mutation: ResolverCache mutates the CacheEntry
// reference returned by find()/upsert() and then calls commit(key); a
// persistent backend re-serializes the entry at commit time.  References
// stay valid until the entry is erased (they point into heap nodes, never
// into the file image).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "server/cache.h"

namespace dnscup::server {

class CacheStoreBackend {
 public:
  virtual ~CacheStoreBackend() = default;

  /// Backend identifier ("heap", "mmap") for logs and banners.
  virtual std::string_view name() const = 0;

  virtual std::size_t size() const = 0;

  /// The entry for `key`, or nullptr.  The reference stays valid until
  /// the key is erased; mutations through it must be followed by
  /// commit(key) to reach a persistent image.
  virtual CacheEntry* find(const CacheKey& key) = 0;

  /// Inserts (default-constructed) or returns the existing entry;
  /// `inserted` reports which.  A fresh insert lands at the LRU front.
  virtual CacheEntry& upsert(const CacheKey& key, bool& inserted) = 0;

  /// Re-persists an entry after in-place mutation (no-op on heap).
  virtual void commit(const CacheKey& key) { (void)key; }

  virtual bool erase(const CacheKey& key) = 0;

  /// Moves the entry to the LRU front.
  virtual void touch(const CacheKey& key) = 0;

  struct Victim {
    CacheKey key;
    bool leased = false;  ///< lease still valid at candidate time
  };
  /// The entry eviction should claim next: the least-recently-used entry
  /// without a *valid* lease at `now` (expired leases do not protect),
  /// falling back to the least-recently-used validly-leased entry when
  /// every entry is leased.  nullopt only when the store is empty.
  virtual std::optional<Victim> evict_candidate(net::SimTime now) const = 0;

  using EntryFn = std::function<void(const CacheKey&, const CacheEntry&)>;
  virtual void for_each(const EntryFn& fn) const = 0;

  // Zone-serial sidecar: the highest serial applied per zone, persisted
  // alongside the entries so a warm restart can prove its data current
  // against the authority's SUBSCRIBE_ACK inventory.
  virtual void put_zone_serial(const dns::Name& zone, uint32_t serial) = 0;
  virtual std::vector<std::pair<dns::Name, uint32_t>> zone_serials()
      const = 0;
};

/// The original concrete store: unordered_map keyed by CacheKey plus an
/// LRU list (front = most recent).  MmapCacheStore derives from this and
/// mirrors mutations into its file image.
class HeapCacheStore : public CacheStoreBackend {
 public:
  std::string_view name() const override { return "heap"; }
  std::size_t size() const override { return entries_.size(); }
  CacheEntry* find(const CacheKey& key) override;
  CacheEntry& upsert(const CacheKey& key, bool& inserted) override;
  bool erase(const CacheKey& key) override;
  void touch(const CacheKey& key) override;
  std::optional<Victim> evict_candidate(net::SimTime now) const override;
  void for_each(const EntryFn& fn) const override;
  void put_zone_serial(const dns::Name& zone, uint32_t serial) override;
  std::vector<std::pair<dns::Name, uint32_t>> zone_serials() const override;

 protected:
  struct Node {
    CacheEntry entry;
    std::list<CacheKey>::iterator lru_it;
  };

  std::unordered_map<CacheKey, Node, CacheKeyHash> entries_;
  std::list<CacheKey> lru_;  ///< front = most recent
  std::map<dns::Name, uint32_t> zone_serials_;
};

}  // namespace dnscup::server

// RFC 2136 dynamic-update semantics, factored out of AuthServer:
// prerequisite evaluation (§3.2) and update-section application (§3.4).
//
// Message layout (RFC 2136 §2): the zone goes in the question slot, the
// prerequisite records in the answer slot, and the update records in the
// authority slot.
#pragma once

#include <vector>

#include "dns/message.h"
#include "dns/zone.h"

namespace dnscup::server {

/// Evaluates all prerequisites against the zone; kNoError when satisfied.
dns::Rcode check_prerequisites(
    const dns::Zone& zone, const std::vector<dns::ResourceRecord>& prereqs);

/// Applies the update section in order.  Returns kNoError and sets
/// `changed` when the zone data was modified; kFormErr on malformed update
/// records (the zone is left in the partially-applied state only when
/// every record so far was well-formed, matching BIND's behaviour of
/// pre-scanning — we pre-scan too, so a kFormErr applies nothing).
dns::Rcode apply_update_section(
    dns::Zone& zone, const std::vector<dns::ResourceRecord>& updates,
    bool& changed);

/// Fluent builder producing RFC 2136 UPDATE messages; used by tests,
/// examples and the DNScup change-injection workloads.
class UpdateBuilder {
 public:
  explicit UpdateBuilder(dns::Name zone);

  /// Prerequisites.
  UpdateBuilder& require_name_in_use(const dns::Name& name);
  UpdateBuilder& require_name_not_in_use(const dns::Name& name);
  UpdateBuilder& require_rrset_exists(const dns::Name& name, dns::RRType type);
  UpdateBuilder& require_rrset_exists_value(const dns::Name& name,
                                            dns::Rdata value);
  UpdateBuilder& require_rrset_absent(const dns::Name& name, dns::RRType type);

  /// Updates.
  UpdateBuilder& add(const dns::Name& name, uint32_t ttl, dns::Rdata value);
  UpdateBuilder& delete_rrset(const dns::Name& name, dns::RRType type);
  UpdateBuilder& delete_name(const dns::Name& name);
  UpdateBuilder& delete_record(const dns::Name& name, dns::Rdata value);

  /// Convenience for the paper's central operation: repoint an A record
  /// (delete the old A RRset, add the new address).
  UpdateBuilder& replace_a(const dns::Name& name, uint32_t ttl,
                           dns::Ipv4 new_address);

  dns::Message build(uint16_t id) const;

 private:
  dns::Name zone_;
  std::vector<dns::ResourceRecord> prereqs_;
  std::vector<dns::ResourceRecord> updates_;
};

}  // namespace dnscup::server

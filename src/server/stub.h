// Stub resolver: the client side of the DNS (the topmost boxes of the
// paper's Figure 3).  Sends recursive-desired queries to one or more
// configured local nameservers over the transport, with per-server
// timeout/retry and failover — the behaviour of a host's resolver
// library rather than a nameserver.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "dns/message.h"
#include "net/event_loop.h"
#include "net/transport.h"
#include "util/metrics.h"

namespace dnscup::server {

class StubResolver {
 public:
  struct Config {
    int max_retries = 1;                ///< retransmissions per server
    net::Duration query_timeout = net::seconds(3);
    /// Registry for stub_* instruments (default_registry() when null).
    metrics::MetricsRegistry* metrics = nullptr;
  };

  struct Answer {
    enum class Status { kOk, kNXDomain, kNoData, kError, kTimeout };
    Status status = Status::kTimeout;
    dns::Rcode rcode = dns::Rcode::kServFail;
    std::vector<dns::ResourceRecord> records;  ///< full answer section

    /// First A address in the answer (the common case), if any.
    std::optional<dns::Ipv4> address() const;
  };
  using Callback = std::function<void(const Answer&)>;

  struct Stats {
    uint64_t queries = 0;
    uint64_t retransmissions = 0;
    uint64_t failovers = 0;  ///< switched to the next nameserver
    uint64_t timeouts = 0;
  };

  StubResolver(net::Transport& transport, net::EventLoop& loop,
               std::vector<net::Endpoint> nameservers, Config config);
  StubResolver(net::Transport& transport, net::EventLoop& loop,
               std::vector<net::Endpoint> nameservers)
      : StubResolver(transport, loop, std::move(nameservers), Config()) {}

  /// Sends one query; the callback fires exactly once.
  void query(const dns::Name& qname, dns::RRType qtype, Callback cb);

  /// Value snapshot of the registry-backed counters.
  Stats stats() const;

 private:
  struct Instruments {
    metrics::Counter queries;
    metrics::Counter retransmissions;
    metrics::Counter failovers;
    metrics::Counter timeouts;
  };

  struct Pending {
    dns::Name qname;
    dns::RRType qtype;
    Callback cb;
    std::size_t server_idx = 0;
    int retries_left = 0;
    net::TimerHandle timer;
  };

  void send(uint16_t id);
  void on_timeout(uint16_t id);
  void on_datagram(const net::Endpoint& from, std::span<const uint8_t> data);
  void finish(uint16_t id, Answer answer);

  net::Transport* transport_;
  net::EventLoop* loop_;
  std::vector<net::Endpoint> servers_;
  Config config_;
  std::map<uint16_t, Pending> pending_;
  uint16_t next_id_ = 1;
  Instruments stats_;
};

}  // namespace dnscup::server

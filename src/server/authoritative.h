// Authoritative DNS nameserver.
//
// Serves one or more zones over a Transport, implementing:
//  * QUERY  — RFC 1034 §4.3.2 answers: authoritative data, CNAME chains
//             within the zone, delegation referrals with glue, NXDOMAIN /
//             NODATA negative answers carrying the SOA;
//  * UPDATE — RFC 2136 dynamic update (master role only): prerequisite
//             checks, update application, serial bump, slave notification;
//  * NOTIFY — RFC 1996: masters push NOTIFY to slaves on change, slaves
//             respond by pulling the zone via AXFR;
//  * AXFR   — full zone transfer, chunked so every datagram stays within
//             the 512-byte UDP limit the paper's prototype respects;
//  * IXFR   — RFC 1995 incremental transfer: masters journal recent zone
//             changes and serve serial-to-serial diffs, falling back to a
//             full transfer when the journal no longer covers the
//             requester's serial.
//
// DNScup's middleware modules (paper Figure 6) attach through two hooks:
// the *listening module* observes queries and may mutate responses (to
// grant leases / set LLT), and the *detection module* subscribes to zone
// changes.  The named core ("unchanged named modules" in the figure) stays
// exactly as below.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "dns/message.h"
#include "dns/zone.h"
#include "net/event_loop.h"
#include "net/transport.h"
#include "util/metrics.h"

namespace dnscup::server {

class AuthServer {
 public:
  enum class Role { kMaster, kSlave };

  struct Stats {
    uint64_t queries = 0;
    uint64_t updates = 0;
    uint64_t notifies_sent = 0;
    uint64_t notifies_received = 0;
    uint64_t axfr_served = 0;
    uint64_t axfr_pulled = 0;
    uint64_t ixfr_served = 0;        ///< incremental diffs served
    uint64_t ixfr_fallbacks = 0;     ///< IXFR answered with a full zone
    uint64_t ixfr_applied = 0;       ///< incremental diffs applied
    uint64_t transfer_aborts = 0;    ///< streams dropped on chunk gaps
    uint64_t refused = 0;
    uint64_t formerr = 0;
  };

  /// Called with every query and the response about to be sent; the
  /// DNScup listening module grants leases here.
  using QueryHook = std::function<void(
      const net::Endpoint& from, const dns::Message& query,
      dns::Message& response)>;

  /// Called instead of QueryHook for queries answered on the zero-copy
  /// fast path (plain non-EXT single-question lookups).  The qname is a
  /// view into the request datagram — valid only for the duration of the
  /// call.  Installing this alongside a QueryHook asserts that, for plain
  /// non-EXT queries, the QueryHook never mutates the response and this
  /// hook replicates its side effects; without it, a QueryHook disables
  /// the fast path entirely.
  using FastQueryHook = std::function<void(
      const net::Endpoint& from, const dns::NameView& qname,
      dns::RRType qtype)>;

  /// Called after a zone's data changed (dynamic update or AXFR refresh),
  /// with the concrete RRset changes; the DNScup detection module and
  /// slave NOTIFY fan-out subscribe here.
  using ChangeHook = std::function<void(
      const dns::Zone& zone, const std::vector<dns::RRsetChange>& changes)>;

  AuthServer(net::Transport& transport, net::EventLoop& loop,
             Role role = Role::kMaster,
             metrics::MetricsRegistry* metrics = nullptr);

  Role role() const { return role_; }

  /// Installs a zone (replacing any zone with the same origin).
  void add_zone(dns::Zone zone);

  /// Replaces a zone with operator-edited contents (the "manual change"
  /// path of the paper): diffs against the currently served data, bumps
  /// the serial if the editor forgot to, fires change hooks and notifies
  /// slaves.  Returns the number of RRset changes detected.
  std::size_t reload_zone(dns::Zone zone);

  /// Longest-match zone for a name; nullptr when none encloses it.
  dns::Zone* find_zone(const dns::Name& name);
  const dns::Zone* find_zone(const dns::Name& name) const;

  std::vector<dns::Name> zone_origins() const;

  /// Registers a slave to NOTIFY on changes (master role).
  void add_slave(const net::Endpoint& slave);

  /// Points a slave at its master (slave role); NOTIFYs from other
  /// endpoints are refused.
  void set_master(const net::Endpoint& master);

  /// Slave-initiated zone pull (bootstrap / scheduled refresh).  Sends an
  /// IXFR query carrying the current serial when we already hold the
  /// zone, otherwise a full AXFR.
  void request_transfer(const dns::Name& origin);

  /// Journalled (from_serial -> to_serial) change step, served via IXFR.
  struct JournalEntry {
    uint32_t from_serial = 0;
    uint32_t to_serial = 0;
    std::vector<dns::RRsetChange> changes;
  };

  /// Number of journal steps retained per zone (older steps force an
  /// AXFR fallback for out-of-date slaves).
  void set_journal_limit(std::size_t limit) { journal_limit_ = limit; }
  std::size_t journal_size(const dns::Name& origin) const;

  /// First-chance dispatch for protocol extensions: returns true when the
  /// message was consumed.  The DNScup notification module receives its
  /// CACHE-UPDATE acknowledgements here.
  using ExtensionHandler =
      std::function<bool(const net::Endpoint& from, const dns::Message&)>;

  /// Round-robin rotation of multi-record answer RRsets (the classic
  /// DNS-level load-balancing CDNs use, §1): successive queries for the
  /// same name see the record order rotated by one.
  void set_round_robin(bool enabled) { round_robin_ = enabled; }

  void set_query_hook(QueryHook hook) { query_hook_ = std::move(hook); }
  void set_fast_query_hook(FastQueryHook hook) {
    fast_query_hook_ = std::move(hook);
  }
  /// `may_consume_queries` declares whether the handler can ever consume a
  /// plain (non-EXT, non-response) QUERY.  When false — e.g. the DNScup
  /// notifier, which only eats CACHE-UPDATE acknowledgements — the fast
  /// path may answer such queries without offering them to the handler.
  void set_extension_handler(ExtensionHandler handler,
                             bool may_consume_queries = true) {
    extension_handler_ = std::move(handler);
    ext_consumes_queries_ = may_consume_queries;
  }
  void add_change_listener(ChangeHook hook);

  /// Processes one request and returns the response, or nullopt when no
  /// response must be sent (e.g. a NOTIFY response we consume).  Public so
  /// tests can drive the server without a network.
  std::optional<dns::Message> handle(const net::Endpoint& from,
                                     const dns::Message& request);

  /// Applies an RFC 2136 update directly (the operator's "manual change"
  /// path from the paper).  Fires change hooks exactly like a wire update.
  dns::Rcode apply_update(const dns::Message& update);

  /// Value snapshot of the registry-backed counters.
  Stats stats() const;
  net::Transport& transport() { return *transport_; }

 private:
  struct Instruments {
    metrics::Counter queries;
    metrics::Counter updates;
    metrics::Counter notifies_sent;
    metrics::Counter notifies_received;
    metrics::Counter axfr_served;
    metrics::Counter axfr_pulled;
    metrics::Counter ixfr_served;
    metrics::Counter ixfr_fallbacks;
    metrics::Counter ixfr_applied;
    metrics::Counter transfer_aborts;
    metrics::Counter refused;
    metrics::Counter formerr;
  };

  dns::Message handle_query(const net::Endpoint& from,
                            const dns::Message& request);
  dns::Message handle_update(const net::Endpoint& from,
                             const dns::Message& request);
  std::optional<dns::Message> handle_notify(const net::Endpoint& from,
                                            const dns::Message& request);
  void handle_transfer_response(const net::Endpoint& from,
                                const dns::Message& response);
  void serve_axfr(const net::Endpoint& to, const dns::Message& request);
  void serve_ixfr(const net::Endpoint& to, const dns::Message& request);
  void send_record_stream(const net::Endpoint& to,
                          const dns::Message& request,
                          std::vector<dns::ResourceRecord> stream);
  void finish_transfer(const dns::Name& origin,
                       std::vector<dns::ResourceRecord> records);
  bool apply_ixfr_stream(const dns::Name& origin,
                         const std::vector<dns::ResourceRecord>& records);
  void record_journal(const dns::Name& origin, uint32_t from_serial,
                      uint32_t to_serial,
                      std::vector<dns::RRsetChange> changes);
  void notify_slaves(const dns::Zone& zone);
  void fire_change_hooks(const dns::Zone& zone,
                         const std::vector<dns::RRsetChange>& changes);
  void on_datagram(const net::Endpoint& from, std::span<const uint8_t> data);

  /// Zero-copy serve path: parses the request in place (NameView), looks
  /// up via Zone::lookup_ref and encodes the response into the reusable
  /// scratch arena — no heap allocation in steady state.  Returns true
  /// when the datagram was fully handled; false falls through to the
  /// owning decode/handle path (EXT queries, transfers, updates, CNAME
  /// chases, referrals, glue-bearing answers, malformed packets).
  bool try_fast_query(const net::Endpoint& from,
                      std::span<const uint8_t> data);

  /// Encodes into the reusable scratch arena; the span is valid until the
  /// next encode_scratch / try_fast_query call.
  std::span<const uint8_t> encode_scratch(const dns::Message& m);

  net::Transport* transport_;
  net::EventLoop* loop_;
  Role role_;
  std::map<dns::Name, dns::Zone> zones_;
  std::vector<net::Endpoint> slaves_;
  std::optional<net::Endpoint> master_;
  QueryHook query_hook_;
  FastQueryHook fast_query_hook_;
  ExtensionHandler extension_handler_;
  bool ext_consumes_queries_ = true;
  std::vector<ChangeHook> change_hooks_;
  Instruments stats_;
  bool round_robin_ = false;
  std::map<dns::Name, uint32_t> rotation_counters_;
  std::vector<uint8_t> scratch_;  ///< reusable tx encode arena

  // Transfer reassembly state (slave side), keyed by transfer id.  The
  // same stream carries either a full zone (AXFR) or an RFC 1995 diff
  // sequence (IXFR); the second record disambiguates.
  struct TransferState {
    dns::Name origin;
    std::vector<dns::ResourceRecord> records;
    uint32_t header_serial = 0;
    std::size_t soa_count = 0;
    uint16_t next_seq = 0;  ///< expected chunk sequence number
  };
  std::map<uint16_t, TransferState> transfers_in_progress_;
  std::map<dns::Name, std::vector<JournalEntry>> journals_;
  std::size_t journal_limit_ = 64;
  uint16_t next_id_ = 1;
};

}  // namespace dnscup::server

#include "server/resolver.h"

#include <algorithm>

#include "server/cache_store.h"
#include "util/assert.h"
#include "util/logging.h"

namespace dnscup::server {

using dns::Message;
using dns::Name;
using dns::Opcode;
using dns::Rcode;
using dns::ResourceRecord;
using dns::RRClass;
using dns::RRset;
using dns::RRType;

namespace {

/// Groups a section's records into RRsets (name/type order preserved).
std::vector<RRset> group_rrsets(const std::vector<ResourceRecord>& records) {
  std::vector<RRset> sets;
  for (const auto& rr : records) {
    RRset* target = nullptr;
    for (auto& set : sets) {
      if (set.type == rr.type() && set.name == rr.name) {
        target = &set;
        break;
      }
    }
    if (target == nullptr) {
      sets.push_back(RRset{rr.name, rr.type(), rr.rrclass, rr.ttl, {}});
      target = &sets.back();
    }
    target->add(rr.rdata);
  }
  return sets;
}

uint32_t soa_negative_ttl(const Message& response, uint32_t fallback) {
  for (const auto& rr : response.authority) {
    if (const auto* soa = std::get_if<dns::SOARdata>(&rr.rdata)) {
      return std::min(rr.ttl, soa->minimum);
    }
  }
  return fallback;
}

}  // namespace

CachingResolver::CachingResolver(net::Transport& transport,
                                 net::EventLoop& loop,
                                 std::vector<net::Endpoint> root_servers,
                                 Config config)
    : transport_(&transport),
      loop_(&loop),
      roots_(std::move(root_servers)),
      config_(config),
      cache_(config.cache_capacity, config.metrics,
             config.cache_store ? config.cache_store() : nullptr) {
  DNSCUP_ASSERT(!roots_.empty());
  auto& registry = metrics::resolve(config.metrics);
  const metrics::Labels base{
      {"instance", registry.next_instance("resolver")}};
  auto labeled = [&](const char* key, const char* value) {
    metrics::Labels labels = base;
    labels.emplace_back(key, value);
    return labels;
  };
  stats_.client_queries =
      registry.counter("resolver_queries", labeled("side", "client"));
  stats_.upstream_queries =
      registry.counter("resolver_queries", labeled("side", "upstream"));
  stats_.retransmissions = registry.counter("resolver_retransmissions", base);
  stats_.timeouts = registry.counter("resolver_timeouts", base);
  stats_.servfails = registry.counter("resolver_servfails", base);
  stats_.coalesced = registry.counter("resolver_coalesced", base);
  transport_->set_receive_handler(
      [this](const net::Endpoint& from, std::span<const uint8_t> data) {
        on_datagram(from, data);
      });
}

CachingResolver::Stats CachingResolver::stats() const {
  return Stats{
      .client_queries = stats_.client_queries,
      .upstream_queries = stats_.upstream_queries,
      .retransmissions = stats_.retransmissions,
      .timeouts = stats_.timeouts,
      .servfails = stats_.servfails,
      .coalesced = stats_.coalesced,
  };
}

void CachingResolver::on_datagram(const net::Endpoint& from,
                                  std::span<const uint8_t> data) {
  auto decoded = Message::decode(data);
  if (!decoded) {
    DNSCUP_LOG_DEBUG("resolver %s: undecodable datagram from %s",
                     transport_->local_endpoint().to_string().c_str(),
                     from.to_string().c_str());
    return;
  }
  const Message& msg = decoded.value();
  if (extension_ != nullptr && extension_->on_unsolicited(from, msg)) return;
  if (msg.flags.qr) {
    handle_upstream_response(from, msg);
    return;
  }
  if (msg.flags.opcode == Opcode::kQuery) {
    handle_client_query(from, msg);
    return;
  }
  // Anything else (UPDATE, NOTIFY at a resolver) is not implemented.
  Message resp = make_response(msg);
  resp.flags.rcode = Rcode::kNotImp;
  transport_->send(from, resp.encode());
}

void CachingResolver::handle_client_query(const net::Endpoint& from,
                                          const Message& request) {
  ++stats_.client_queries;
  if (request.questions.size() != 1) {
    Message resp = make_response(request);
    resp.flags.rcode = Rcode::kFormErr;
    transport_->send(from, resp.encode());
    return;
  }
  const auto& q = request.questions[0];
  resolve(q.qname, q.qtype, [this, from, request](const Outcome& outcome) {
    Message resp = make_response(request);
    resp.flags.ra = true;
    switch (outcome.status) {
      case Outcome::Status::kOk:
        resp.answers = outcome.cname_chain;
        for (auto& rec : outcome.rrset.to_records()) {
          resp.answers.push_back(std::move(rec));
        }
        break;
      case Outcome::Status::kNXDomain:
        resp.flags.rcode = Rcode::kNXDomain;
        break;
      case Outcome::Status::kNoData:
        break;  // NOERROR, empty answer
      case Outcome::Status::kServFail:
      case Outcome::Status::kTimeout:
        resp.flags.rcode = Rcode::kServFail;
        break;
    }
    transport_->send(from, resp.encode());
  });
}

void CachingResolver::resolve(const Name& qname, RRType qtype, Callback cb) {
  if (extension_ != nullptr) extension_->on_client_query(qname, qtype);
  resolve_internal(qname, qtype, 0, std::move(cb));
}

void CachingResolver::refresh(const Name& qname, RRType qtype, Callback cb) {
  // Straight to the network, bypassing the freshness check; coalesces
  // with any identical in-flight question.
  start_task(qname, qtype, 0, std::move(cb));
}

void CachingResolver::resolve_internal(const Name& qname, RRType qtype,
                                       int depth, Callback cb) {
  if (depth > config_.max_cname_hops + config_.max_indirections) {
    Outcome out;
    out.status = Outcome::Status::kServFail;
    ++stats_.servfails;
    cb(out);
    return;
  }
  if (answer_from_cache(qname, qtype, depth, cb)) return;
  start_task(qname, qtype, depth, std::move(cb));
}

bool CachingResolver::answer_from_cache(const Name& qname, RRType qtype,
                                        int depth, const Callback& cb) {
  const net::SimTime now = loop_->now();
  if (const CacheEntry* entry = cache_.lookup(qname, qtype, now)) {
    Outcome out;
    out.from_cache = true;
    if (entry->negative) {
      out.status = entry->negative_rcode == Rcode::kNXDomain
                       ? Outcome::Status::kNXDomain
                       : Outcome::Status::kNoData;
    } else {
      out.status = Outcome::Status::kOk;
      out.rrset = entry->rrset;
      const auto remaining = (entry->expiry - now) / net::seconds(1);
      out.rrset.ttl = remaining > 0 ? static_cast<uint32_t>(remaining) : 0;
    }
    cb(out);
    return true;
  }
  // A cached CNAME may still lead to the answer.
  if (qtype != RRType::kCNAME && qtype != RRType::kANY) {
    if (const CacheEntry* cname = cache_.lookup(qname, RRType::kCNAME, now);
        cname != nullptr && !cname->negative) {
      const auto& target =
          std::get<dns::CNAMERdata>(cname->rrset.rdatas.front()).target;
      auto link = cname->rrset.to_records();
      resolve_internal(
          target, qtype, depth + 1,
          [cb, link = std::move(link)](const Outcome& inner) {
            Outcome out = inner;
            out.cname_chain.insert(out.cname_chain.begin(), link.begin(),
                                   link.end());
            cb(out);
          });
      return true;
    }
  }
  return false;
}

void CachingResolver::start_task(const Name& qname, RRType qtype, int depth,
                                 Callback cb) {
  // Coalesce with an identical in-flight question.
  const TaskKey key{qname, qtype};
  if (auto it = task_by_key_.find(key); it != task_by_key_.end()) {
    ++stats_.coalesced;
    tasks_.at(it->second).callbacks.push_back(std::move(cb));
    return;
  }
  uint16_t qid = next_qid_++;
  if (qid == 0) qid = next_qid_++;  // id 0 is reserved for client traffic
  while (tasks_.count(qid) > 0) qid = next_qid_++;

  Task task;
  task.qname = qname;
  task.qtype = qtype;
  task.depth = depth;
  task.callbacks.push_back(std::move(cb));
  task.servers = best_cached_servers(qname);
  task.retries_left = config_.max_retries;
  tasks_.emplace(qid, std::move(task));
  task_by_key_.emplace(key, qid);
  send_current(qid);
}

std::vector<net::Endpoint> CachingResolver::best_cached_servers(
    const Name& qname) {
  // Start at the deepest ancestor whose NS set (with usable glue) is
  // cached — the standard "closest known zone cut" optimization, without
  // which every miss would hit the root.
  const net::SimTime now = loop_->now();
  Name zone = qname;
  while (!zone.is_root()) {
    if (const CacheEntry* ns = cache_.lookup(zone, RRType::kNS, now);
        ns != nullptr && !ns->negative) {
      std::vector<net::Endpoint> servers;
      for (const auto& rd : ns->rrset.rdatas) {
        const auto& ns_name = std::get<dns::NSRdata>(rd).nsdname;
        if (const CacheEntry* glue = cache_.lookup(ns_name, RRType::kA, now);
            glue != nullptr && !glue->negative) {
          for (const auto& a : glue->rrset.rdatas) {
            servers.push_back(
                net::Endpoint{std::get<dns::ARdata>(a).address.addr, 53});
          }
        }
      }
      if (!servers.empty()) return servers;
    }
    zone = zone.parent();
  }
  return roots_;
}

void CachingResolver::send_current(uint16_t qid) {
  Task& task = tasks_.at(qid);
  DNSCUP_ASSERT(task.server_idx < task.servers.size());
  Message query;
  query.id = qid;
  query.flags.opcode = Opcode::kQuery;
  query.questions.push_back(
      dns::Question{task.qname, task.qtype, RRClass::kIN, 0});
  if (extension_ != nullptr) extension_->on_outgoing_query(query);
  ++stats_.upstream_queries;
  transport_->send(task.servers[task.server_idx], query.encode());
  task.timer = loop_->schedule(config_.query_timeout,
                               [this, qid] { on_timeout(qid); });
}

void CachingResolver::on_timeout(uint16_t qid) {
  auto it = tasks_.find(qid);
  if (it == tasks_.end()) return;
  ++stats_.timeouts;
  Task& task = it->second;
  if (task.retries_left > 0) {
    --task.retries_left;
    ++stats_.retransmissions;
    send_current(qid);
    return;
  }
  advance_server(qid);
}

void CachingResolver::advance_server(uint16_t qid) {
  Task& task = tasks_.at(qid);
  ++task.server_idx;
  task.retries_left = config_.max_retries;
  if (task.server_idx >= task.servers.size()) {
    Outcome out;
    out.status = Outcome::Status::kTimeout;
    finish(qid, std::move(out));
    return;
  }
  send_current(qid);
}

void CachingResolver::finish(uint16_t qid, Outcome outcome) {
  auto it = tasks_.find(qid);
  DNSCUP_ASSERT(it != tasks_.end());
  it->second.timer.cancel();
  // Detach state before invoking callbacks: they may start new queries.
  std::vector<Callback> callbacks = std::move(it->second.callbacks);
  task_by_key_.erase(TaskKey{it->second.qname, it->second.qtype});
  tasks_.erase(it);
  if (outcome.status == Outcome::Status::kServFail) ++stats_.servfails;
  for (const auto& cb : callbacks) cb(outcome);
}

void CachingResolver::handle_upstream_response(const net::Endpoint& from,
                                               const Message& response) {
  auto it = tasks_.find(response.id);
  if (it == tasks_.end()) return;  // late or spoofed; ignore
  Task& task = it->second;
  // Accept only from the server we queried (simple spoofing guard).
  if (task.server_idx >= task.servers.size() ||
      from != task.servers[task.server_idx]) {
    return;
  }
  if (response.questions.size() != 1 ||
      !(response.questions[0].qname == task.qname) ||
      response.questions[0].qtype != task.qtype) {
    return;  // mismatched echo
  }
  task.timer.cancel();
  // The extension observes the response *after* the cache has been
  // updated from it, so lease state can attach to the fresh entries.
  const auto notify_extension = [this, &from, &response] {
    if (extension_ != nullptr) extension_->on_response(from, response);
  };

  switch (response.flags.rcode) {
    case Rcode::kNoError:
      break;
    case Rcode::kNXDomain: {
      const uint32_t ttl =
          soa_negative_ttl(response, config_.default_negative_ttl);
      cache_.put_negative(task.qname, task.qtype, Rcode::kNXDomain, ttl,
                          loop_->now());
      notify_extension();
      Outcome out;
      out.status = Outcome::Status::kNXDomain;
      finish(response.id, std::move(out));
      return;
    }
    default:
      // SERVFAIL/REFUSED/...: try the next server in the list.
      notify_extension();
      advance_server(response.id);
      return;
  }

  if (!response.answers.empty()) {
    process_answer(response.id, response, notify_extension);
    return;
  }
  if (!response.authority.empty() && !response.flags.aa) {
    notify_extension();
    process_referral(response.id, response);
    return;
  }
  // NOERROR with no answers from the authority: NODATA.
  const uint32_t ttl = soa_negative_ttl(response, config_.default_negative_ttl);
  cache_.put_negative(task.qname, task.qtype, Rcode::kNoError, ttl,
                      loop_->now());
  notify_extension();
  Outcome out;
  out.status = Outcome::Status::kNoData;
  finish(response.id, std::move(out));
}

void CachingResolver::process_answer(
    uint16_t qid, const Message& response,
    const std::function<void()>& notify_extension) {
  Task& task = tasks_.at(qid);
  const net::SimTime now = loop_->now();
  const auto sets = group_rrsets(response.answers);
  for (const auto& set : sets) cache_.put(set, now);
  notify_extension();

  // Follow the CNAME chain from qname within this answer.
  Name current = task.qname;
  std::vector<ResourceRecord> chain;
  for (int hop = 0; hop <= config_.max_cname_hops; ++hop) {
    const RRset* exact = nullptr;
    const RRset* cname = nullptr;
    for (const auto& set : sets) {
      if (!(set.name == current)) continue;
      if (set.type == task.qtype) exact = &set;
      if (set.type == RRType::kCNAME) cname = &set;
    }
    if (exact != nullptr) {
      Outcome out;
      out.status = Outcome::Status::kOk;
      out.rrset = *exact;
      out.cname_chain = std::move(chain);
      finish(qid, std::move(out));
      return;
    }
    if (cname != nullptr && task.qtype != RRType::kCNAME) {
      for (auto& rec : cname->to_records()) chain.push_back(std::move(rec));
      current = std::get<dns::CNAMERdata>(cname->rdatas.front()).target;
      continue;
    }
    break;
  }

  // The answer ended in a dangling CNAME: restart resolution at the target.
  if (!chain.empty()) {
    const int depth = task.depth + 1;
    const RRType qtype = task.qtype;
    const Name target = current;
    Outcome base;
    std::vector<Callback> callbacks = std::move(task.callbacks);
    task_by_key_.erase(TaskKey{task.qname, task.qtype});
    tasks_.erase(qid);
    resolve_internal(
        target, qtype, depth,
        [callbacks = std::move(callbacks),
         chain = std::move(chain)](const Outcome& inner) {
          Outcome out = inner;
          out.cname_chain.insert(out.cname_chain.begin(), chain.begin(),
                                 chain.end());
          for (const auto& cb : callbacks) cb(out);
        });
    return;
  }

  // Answers present but unrelated to the question: treat as failure.
  Outcome out;
  out.status = Outcome::Status::kServFail;
  finish(qid, std::move(out));
}

void CachingResolver::process_referral(uint16_t qid,
                                       const Message& response) {
  Task& task = tasks_.at(qid);
  if (++task.referrals > config_.max_referrals) {
    Outcome out;
    out.status = Outcome::Status::kServFail;
    finish(qid, std::move(out));
    return;
  }
  const net::SimTime now = loop_->now();
  // Cache the NS set and glue.
  for (const auto& set : group_rrsets(response.authority)) {
    if (set.type == RRType::kNS) cache_.put(set, now);
  }
  for (const auto& set : group_rrsets(response.additional)) {
    if (set.type == RRType::kA || set.type == RRType::kAAAA) {
      cache_.put(set, now);
    }
  }

  // Collect nameserver addresses from glue.
  std::vector<net::Endpoint> next_servers;
  std::vector<Name> ns_without_glue;
  for (const auto& rr : response.authority) {
    const auto* ns = std::get_if<dns::NSRdata>(&rr.rdata);
    if (ns == nullptr) continue;
    bool found = false;
    for (const auto& glue : response.additional) {
      if (glue.type() == RRType::kA && glue.name == ns->nsdname) {
        next_servers.push_back(
            net::Endpoint{std::get<dns::ARdata>(glue.rdata).address.addr, 53});
        found = true;
      }
    }
    if (!found) ns_without_glue.push_back(ns->nsdname);
  }

  if (!next_servers.empty()) {
    task.servers = std::move(next_servers);
    task.server_idx = 0;
    task.retries_left = config_.max_retries;
    send_current(qid);
    return;
  }

  // Glueless delegation: resolve the first NS name, then continue.
  if (!ns_without_glue.empty() &&
      task.depth < config_.max_indirections + config_.max_cname_hops) {
    const Name ns_name = ns_without_glue.front();
    const int depth = task.depth + 1;
    resolve_internal(
        ns_name, RRType::kA, depth, [this, qid](const Outcome& inner) {
          auto it = tasks_.find(qid);
          if (it == tasks_.end()) return;
          if (inner.status != Outcome::Status::kOk || inner.rrset.empty()) {
            Outcome out;
            out.status = Outcome::Status::kServFail;
            finish(qid, std::move(out));
            return;
          }
          Task& task = it->second;
          task.servers.clear();
          for (const auto& rd : inner.rrset.rdatas) {
            task.servers.push_back(
                net::Endpoint{std::get<dns::ARdata>(rd).address.addr, 53});
          }
          task.server_idx = 0;
          task.retries_left = config_.max_retries;
          send_current(qid);
        });
    return;
  }

  Outcome out;
  out.status = Outcome::Status::kServFail;
  finish(qid, std::move(out));
}

}  // namespace dnscup::server

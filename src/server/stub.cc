#include "server/stub.h"

#include "util/assert.h"

namespace dnscup::server {

using dns::Message;
using dns::Rcode;
using dns::RRType;

std::optional<dns::Ipv4> StubResolver::Answer::address() const {
  for (const auto& rr : records) {
    if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
      return a->address;
    }
  }
  return std::nullopt;
}

StubResolver::StubResolver(net::Transport& transport, net::EventLoop& loop,
                           std::vector<net::Endpoint> nameservers,
                           Config config)
    : transport_(&transport),
      loop_(&loop),
      servers_(std::move(nameservers)),
      config_(config) {
  DNSCUP_ASSERT(!servers_.empty());
  auto& registry = metrics::resolve(config.metrics);
  const metrics::Labels base{{"instance", registry.next_instance("stub")}};
  stats_.queries = registry.counter("stub_queries", base);
  stats_.retransmissions = registry.counter("stub_retransmissions", base);
  stats_.failovers = registry.counter("stub_failovers", base);
  stats_.timeouts = registry.counter("stub_timeouts", base);
  transport_->set_receive_handler(
      [this](const net::Endpoint& from, std::span<const uint8_t> data) {
        on_datagram(from, data);
      });
}

StubResolver::Stats StubResolver::stats() const {
  return Stats{
      .queries = stats_.queries,
      .retransmissions = stats_.retransmissions,
      .failovers = stats_.failovers,
      .timeouts = stats_.timeouts,
  };
}

void StubResolver::query(const dns::Name& qname, RRType qtype, Callback cb) {
  uint16_t id = next_id_++;
  while (pending_.count(id) > 0 || id == 0) id = next_id_++;
  Pending p;
  p.qname = qname;
  p.qtype = qtype;
  p.cb = std::move(cb);
  p.retries_left = config_.max_retries;
  pending_.emplace(id, std::move(p));
  ++stats_.queries;
  send(id);
}

void StubResolver::send(uint16_t id) {
  Pending& p = pending_.at(id);
  Message m;
  m.id = id;
  m.flags.rd = true;  // we want the nameserver to recurse for us
  m.questions.push_back(
      dns::Question{p.qname, p.qtype, dns::RRClass::kIN, 0});
  transport_->send(servers_[p.server_idx], m.encode());
  p.timer = loop_->schedule(config_.query_timeout,
                            [this, id] { on_timeout(id); });
}

void StubResolver::on_timeout(uint16_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (p.retries_left > 0) {
    --p.retries_left;
    ++stats_.retransmissions;
    send(id);
    return;
  }
  if (p.server_idx + 1 < servers_.size()) {
    ++p.server_idx;
    p.retries_left = config_.max_retries;
    ++stats_.failovers;
    send(id);
    return;
  }
  ++stats_.timeouts;
  finish(id, Answer{});
}

void StubResolver::on_datagram(const net::Endpoint& from,
                               std::span<const uint8_t> data) {
  auto decoded = Message::decode(data);
  if (!decoded.ok() || !decoded.value().flags.qr) return;
  const Message& m = decoded.value();
  auto it = pending_.find(m.id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (from != servers_[p.server_idx]) return;  // spoofing guard
  if (m.questions.size() != 1 || !(m.questions[0].qname == p.qname) ||
      m.questions[0].qtype != p.qtype) {
    return;
  }
  p.timer.cancel();

  Answer answer;
  answer.rcode = m.flags.rcode;
  switch (m.flags.rcode) {
    case Rcode::kNoError:
      answer.records = m.answers;
      answer.status = m.answers.empty() ? Answer::Status::kNoData
                                        : Answer::Status::kOk;
      break;
    case Rcode::kNXDomain:
      answer.status = Answer::Status::kNXDomain;
      break;
    default:
      answer.status = Answer::Status::kError;
      break;
  }
  finish(m.id, std::move(answer));
}

void StubResolver::finish(uint16_t id, Answer answer) {
  auto it = pending_.find(id);
  DNSCUP_ASSERT(it != pending_.end());
  it->second.timer.cancel();
  Callback cb = std::move(it->second.cb);
  pending_.erase(it);
  cb(answer);
}

}  // namespace dnscup::server

#include "server/cache_store.h"

namespace dnscup::server {

CacheEntry* HeapCacheStore::find(const CacheKey& key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second.entry;
}

CacheEntry& HeapCacheStore::upsert(const CacheKey& key, bool& inserted) {
  auto [it, fresh] = entries_.try_emplace(key);
  inserted = fresh;
  if (fresh) {
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
  }
  return it->second.entry;
}

bool HeapCacheStore::erase(const CacheKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  return true;
}

void HeapCacheStore::touch(const CacheKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_it);
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
}

std::optional<CacheStoreBackend::Victim> HeapCacheStore::evict_candidate(
    net::SimTime now) const {
  if (lru_.size() < 2) return std::nullopt;
  // Prefer the LRU-most entry without a valid lease; fall back to the
  // LRU-most leased entry (the caller counts that separately — the
  // authority believes we hold it, and the next query re-negotiates).
  // The MRU entry is never a candidate: it may be the insertion that
  // triggered the eviction, and callers hold a reference to it.
  std::optional<Victim> leased_fallback;
  auto stop = lru_.rend();
  --stop;  // reverse iteration ends before the LRU front (MRU entry)
  for (auto it = lru_.rbegin(); it != stop; ++it) {
    const CacheEntry& entry = entries_.at(*it).entry;
    const bool lease_valid =
        entry.lease.has_value() && now < entry.lease->expiry;
    if (!lease_valid) return Victim{*it, false};
    if (!leased_fallback.has_value()) leased_fallback = Victim{*it, true};
  }
  return leased_fallback;
}

void HeapCacheStore::for_each(const EntryFn& fn) const {
  for (const auto& [key, node] : entries_) fn(key, node.entry);
}

void HeapCacheStore::put_zone_serial(const dns::Name& zone, uint32_t serial) {
  zone_serials_[zone] = serial;
}

std::vector<std::pair<dns::Name, uint32_t>> HeapCacheStore::zone_serials()
    const {
  return {zone_serials_.begin(), zone_serials_.end()};
}

}  // namespace dnscup::server

#include "server/cache.h"

#include "server/cache_store.h"
#include "util/assert.h"

namespace dnscup::server {

ResolverCache::ResolverCache(std::size_t capacity,
                             metrics::MetricsRegistry* metrics)
    : ResolverCache(capacity, metrics, nullptr) {}

ResolverCache::ResolverCache(std::size_t capacity,
                             metrics::MetricsRegistry* metrics,
                             std::unique_ptr<CacheStoreBackend> store)
    : capacity_(capacity), store_(std::move(store)) {
  if (store_ == nullptr) store_ = std::make_unique<HeapCacheStore>();
  auto& registry = metrics::resolve(metrics);
  const metrics::Labels base{
      {"instance", registry.next_instance("resolver_cache")}};
  auto labeled = [&](const char* key, const char* value) {
    metrics::Labels labels = base;
    labels.emplace_back(key, value);
    return labels;
  };
  stats_.hits = registry.counter("resolver_cache_lookups",
                                 labeled("result", "hit"));
  stats_.misses = registry.counter("resolver_cache_lookups",
                                   labeled("result", "miss"));
  stats_.expired = registry.counter("resolver_cache_lookups",
                                    labeled("result", "expired"));
  stats_.insertions = registry.counter("resolver_cache_mutations",
                                       labeled("op", "insert"));
  stats_.invalidations = registry.counter("resolver_cache_mutations",
                                          labeled("op", "invalidate"));
  stats_.evictions = registry.counter("resolver_cache_mutations",
                                      labeled("op", "evict"));
  stats_.leased_evictions = registry.counter("resolver_cache_evictions",
                                             labeled("leased", "true"));
  stats_.unleased_evictions = registry.counter("resolver_cache_evictions",
                                               labeled("leased", "false"));
}

ResolverCache::~ResolverCache() = default;

ResolverCache::Stats ResolverCache::stats() const {
  return Stats{
      .hits = stats_.hits,
      .misses = stats_.misses,
      .expired = stats_.expired,
      .insertions = stats_.insertions,
      .invalidations = stats_.invalidations,
      .evictions = stats_.evictions,
      .leased_evictions = stats_.leased_evictions,
  };
}

std::size_t ResolverCache::size() const { return store_->size(); }

void ResolverCache::for_each_impl(
    const std::function<void(const CacheKey&, const CacheEntry&)>& fn) const {
  store_->for_each(fn);
}

const CacheEntry* ResolverCache::lookup(const dns::Name& name,
                                        dns::RRType type, net::SimTime now) {
  const CacheKey key{name, type};
  CacheEntry* entry = store_->find(key);
  if (entry == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  if (!entry->fresh(now)) {
    ++stats_.expired;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  store_->touch(key);
  return entry;
}

CacheEntry* ResolverCache::peek(const dns::Name& name, dns::RRType type) {
  return store_->find(CacheKey{name, type});
}

CacheEntry& ResolverCache::put(const dns::RRset& rrset, net::SimTime now) {
  const CacheKey key{rrset.name, rrset.type};
  bool inserted = false;
  CacheEntry& entry = store_->upsert(key, inserted);
  if (inserted) {
    ++stats_.insertions;
  } else {
    store_->touch(key);
    // Keep lease state across refreshes: a TTL refresh does not end a lease.
  }
  entry.rrset = rrset;
  entry.negative = false;
  entry.inserted_at = now;
  entry.expiry = now + net::seconds(rrset.ttl);
  store_->commit(key);
  evict_if_needed(now);
  return entry;
}

CacheEntry& ResolverCache::put_negative(const dns::Name& name,
                                        dns::RRType type, dns::Rcode rcode,
                                        uint32_t ttl, net::SimTime now) {
  const CacheKey key{name, type};
  bool inserted = false;
  CacheEntry& entry = store_->upsert(key, inserted);
  if (inserted) {
    ++stats_.insertions;
  } else {
    store_->touch(key);
  }
  entry.rrset = dns::RRset{name, type, dns::RRClass::kIN, ttl, {}};
  entry.negative = true;
  entry.negative_rcode = rcode;
  entry.inserted_at = now;
  entry.expiry = now + net::seconds(ttl);
  entry.lease.reset();
  store_->commit(key);
  evict_if_needed(now);
  return entry;
}

CacheEntry& ResolverCache::apply_update(const dns::RRset& rrset,
                                        net::SimTime now) {
  CacheEntry& entry = put(rrset, now);
  return entry;
}

bool ResolverCache::invalidate(const dns::Name& name, dns::RRType type) {
  if (!store_->erase(CacheKey{name, type})) return false;
  ++stats_.invalidations;
  return true;
}

bool ResolverCache::set_lease(const dns::Name& name, dns::RRType type,
                              const std::optional<LeaseState>& lease) {
  const CacheKey key{name, type};
  CacheEntry* entry = store_->find(key);
  if (entry == nullptr) return false;
  entry->lease = lease;
  store_->commit(key);
  return true;
}

void ResolverCache::commit(const dns::Name& name, dns::RRType type) {
  const CacheKey key{name, type};
  if (store_->find(key) != nullptr) store_->commit(key);
}

std::size_t ResolverCache::purge_expired(net::SimTime now) {
  // An entry whose TTL *and* lease have both run out is dead weight: it
  // can never be served again, only replaced.  fresh() captures exactly
  // that — an expired lease does not protect an expired entry.
  std::vector<CacheKey> doomed;
  store_->for_each([&](const CacheKey& key, const CacheEntry& entry) {
    if (!entry.fresh(now)) doomed.push_back(key);
  });
  for (const CacheKey& key : doomed) store_->erase(key);
  return doomed.size();
}

void ResolverCache::note_zone_serial(const dns::Name& zone, uint32_t serial) {
  store_->put_zone_serial(zone, serial);
}

std::vector<std::pair<dns::Name, uint32_t>> ResolverCache::zone_serials()
    const {
  return store_->zone_serials();
}

void ResolverCache::evict_if_needed(net::SimTime now) {
  if (capacity_ == 0) return;
  while (store_->size() > capacity_) {
    const auto victim = store_->evict_candidate(now);
    if (!victim.has_value()) return;
    store_->erase(victim->key);
    ++stats_.evictions;
    if (victim->leased) {
      // Last resort: the authority believes we hold this record.  The
      // eviction is observable (resolver_cache_evictions{leased=true})
      // and the next query re-negotiates the lease instead of serving
      // from a cache slot we no longer have.
      ++stats_.leased_evictions;
    } else {
      ++stats_.unleased_evictions;
    }
  }
}

}  // namespace dnscup::server

#include "server/cache.h"

#include "util/assert.h"

namespace dnscup::server {

ResolverCache::ResolverCache(std::size_t capacity,
                             metrics::MetricsRegistry* metrics)
    : capacity_(capacity) {
  auto& registry = metrics::resolve(metrics);
  const metrics::Labels base{
      {"instance", registry.next_instance("resolver_cache")}};
  auto labeled = [&](const char* key, const char* value) {
    metrics::Labels labels = base;
    labels.emplace_back(key, value);
    return labels;
  };
  stats_.hits = registry.counter("resolver_cache_lookups",
                                 labeled("result", "hit"));
  stats_.misses = registry.counter("resolver_cache_lookups",
                                   labeled("result", "miss"));
  stats_.expired = registry.counter("resolver_cache_lookups",
                                    labeled("result", "expired"));
  stats_.insertions = registry.counter("resolver_cache_mutations",
                                       labeled("op", "insert"));
  stats_.invalidations = registry.counter("resolver_cache_mutations",
                                          labeled("op", "invalidate"));
  stats_.evictions = registry.counter("resolver_cache_mutations",
                                      labeled("op", "evict"));
}

ResolverCache::Stats ResolverCache::stats() const {
  return Stats{
      .hits = stats_.hits,
      .misses = stats_.misses,
      .expired = stats_.expired,
      .insertions = stats_.insertions,
      .invalidations = stats_.invalidations,
      .evictions = stats_.evictions,
  };
}

const CacheEntry* ResolverCache::lookup(const dns::Name& name,
                                        dns::RRType type, net::SimTime now) {
  auto it = entries_.find(CacheKey{name, type});
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (!it->second.entry.fresh(now)) {
    ++stats_.expired;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  touch(it->second, it->first);
  return &it->second.entry;
}

CacheEntry* ResolverCache::peek(const dns::Name& name, dns::RRType type) {
  auto it = entries_.find(CacheKey{name, type});
  return it == entries_.end() ? nullptr : &it->second.entry;
}

CacheEntry& ResolverCache::put(const dns::RRset& rrset, net::SimTime now) {
  CacheKey key{rrset.name, rrset.type};
  auto [it, inserted] = entries_.try_emplace(key);
  Node& node = it->second;
  if (inserted) {
    lru_.push_front(key);
    node.lru_it = lru_.begin();
    ++stats_.insertions;
  } else {
    touch(node, key);
    // Keep lease state across refreshes: a TTL refresh does not end a lease.
  }
  node.entry.rrset = rrset;
  node.entry.negative = false;
  node.entry.inserted_at = now;
  node.entry.expiry = now + net::seconds(rrset.ttl);
  evict_if_needed();
  return entries_.at(key).entry;
}

CacheEntry& ResolverCache::put_negative(const dns::Name& name,
                                        dns::RRType type, dns::Rcode rcode,
                                        uint32_t ttl, net::SimTime now) {
  CacheKey key{name, type};
  auto [it, inserted] = entries_.try_emplace(key);
  Node& node = it->second;
  if (inserted) {
    lru_.push_front(key);
    node.lru_it = lru_.begin();
    ++stats_.insertions;
  } else {
    touch(node, key);
  }
  node.entry.rrset = dns::RRset{name, type, dns::RRClass::kIN, ttl, {}};
  node.entry.negative = true;
  node.entry.negative_rcode = rcode;
  node.entry.inserted_at = now;
  node.entry.expiry = now + net::seconds(ttl);
  node.entry.lease.reset();
  evict_if_needed();
  return entries_.at(key).entry;
}

CacheEntry& ResolverCache::apply_update(const dns::RRset& rrset,
                                        net::SimTime now) {
  CacheEntry& entry = put(rrset, now);
  return entry;
}

bool ResolverCache::invalidate(const dns::Name& name, dns::RRType type) {
  auto it = entries_.find(CacheKey{name, type});
  if (it == entries_.end()) return false;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  ++stats_.invalidations;
  return true;
}

std::size_t ResolverCache::purge_expired(net::SimTime now) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const CacheEntry& e = it->second.entry;
    if (!e.fresh(now)) {
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void ResolverCache::touch(Node& node, const CacheKey& key) {
  lru_.erase(node.lru_it);
  lru_.push_front(key);
  node.lru_it = lru_.begin();
}

void ResolverCache::evict_if_needed() {
  if (capacity_ == 0) return;
  while (entries_.size() > capacity_) {
    // Never evict leased entries: the authority believes we hold them.
    auto victim = lru_.end();
    for (auto it = std::prev(lru_.end());; --it) {
      const auto& entry = entries_.at(*it).entry;
      if (!entry.lease.has_value()) {
        victim = it;
        break;
      }
      if (it == lru_.begin()) break;
    }
    if (victim == lru_.end()) return;  // everything leased; allow overflow
    entries_.erase(CacheKey{*victim});
    lru_.erase(victim);
    ++stats_.evictions;
  }
}

}  // namespace dnscup::server

// TTL cache of a local DNS nameserver ("DNS cache" in the paper's
// terminology).  Entries expire by TTL — the classic *weak* consistency
// DNScup strengthens.  Each entry also carries optional lease state so the
// DNScup cache-side module can mark records as push-maintained; the cache
// itself stays oblivious to how leases are negotiated.
//
// Storage is pluggable (cache_store.h): the cache's observable behavior —
// lookup/put/apply_update/invalidate semantics, LRU eviction policy and
// the resolver_cache_* stats — lives here, while the entry container is a
// CacheStoreBackend.  The default backend is the in-process heap store;
// cachestore::MmapCacheStore adds an mmap-backed persistent image so
// dnscached restarts warm.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "dns/message.h"
#include "dns/rr.h"
#include "net/endpoint.h"
#include "net/time.h"
#include "util/hash.h"
#include "util/metrics.h"

namespace dnscup::server {

struct CacheKey {
  dns::Name name;
  dns::RRType type;

  bool operator==(const CacheKey& other) const {
    return type == other.type && name == other.name;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    // splitmix64 finalizer over the (name hash, type) pair: the same
    // full-avalanche mix the planner's demand table probes on, so the
    // heap map and the cachestore in-file open-addressed table share one
    // well-distributed hash.
    return static_cast<std::size_t>(util::splitmix64_mix(
        static_cast<uint64_t>(k.name.hash()) * 31u +
        static_cast<uint64_t>(k.type)));
  }
};

struct LeaseState {
  net::SimTime expiry = 0;        ///< lease valid until this instant
  net::Endpoint authority;        ///< grantor; only it may push updates
};

struct CacheEntry {
  dns::RRset rrset;               ///< empty for negative entries
  bool negative = false;
  dns::Rcode negative_rcode = dns::Rcode::kNXDomain;
  net::SimTime inserted_at = 0;
  net::SimTime expiry = 0;        ///< TTL expiry
  std::optional<LeaseState> lease;

  /// Usable at `now`: TTL-fresh, or covered by a still-valid lease (a
  /// leased record is authoritative until the lease expires or an update
  /// arrives — the paper's strong-consistency invariant).
  bool fresh(net::SimTime now) const {
    if (now < expiry) return true;
    return lease.has_value() && now < lease->expiry;
  }
};

class CacheStoreBackend;  // cache_store.h

class ResolverCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t expired = 0;     ///< lookups that found only a stale entry
    uint64_t insertions = 0;
    uint64_t invalidations = 0;
    uint64_t evictions = 0;
    uint64_t leased_evictions = 0;  ///< evictions of validly-leased entries
  };

  /// `capacity` bounds the entry count (LRU eviction); 0 = unbounded.
  /// Counters register in `metrics` (default_registry() when null) under
  /// resolver_cache_* with a per-instance label.  `store` selects the
  /// storage backend (null = heap); a persistent backend may already hold
  /// warm-reloaded entries, which are adopted without counting as
  /// insertions.
  explicit ResolverCache(std::size_t capacity = 0,
                         metrics::MetricsRegistry* metrics = nullptr);
  ResolverCache(std::size_t capacity, metrics::MetricsRegistry* metrics,
                std::unique_ptr<CacheStoreBackend> store);
  ~ResolverCache();

  ResolverCache(const ResolverCache&) = delete;
  ResolverCache& operator=(const ResolverCache&) = delete;

  /// Fresh entry lookup; counts hit/miss/expired.  Returns nullptr on miss.
  const CacheEntry* lookup(const dns::Name& name, dns::RRType type,
                           net::SimTime now);

  /// Non-counting peek at an entry regardless of freshness.  In-place
  /// mutations through the returned pointer reach a persistent backend
  /// only after commit() — prefer set_lease() for lease changes.
  CacheEntry* peek(const dns::Name& name, dns::RRType type);

  /// Inserts a positive entry.
  CacheEntry& put(const dns::RRset& rrset, net::SimTime now);

  /// Inserts a negative entry (RFC 2308), TTL from the zone SOA minimum.
  CacheEntry& put_negative(const dns::Name& name, dns::RRType type,
                           dns::Rcode rcode, uint32_t ttl, net::SimTime now);

  /// Applies a pushed DNScup update: replaces the entry's data in place,
  /// refreshing TTL.  Creates the entry if missing.
  CacheEntry& apply_update(const dns::RRset& rrset, net::SimTime now);

  /// Drops an entry (e.g. a pushed deletion).  Returns true if present.
  bool invalidate(const dns::Name& name, dns::RRType type);

  /// Sets or clears an entry's lease state through the storage seam, so
  /// persistent backends see the mutation.  False when nothing is cached.
  bool set_lease(const dns::Name& name, dns::RRType type,
                 const std::optional<LeaseState>& lease);

  /// Re-persists an entry after in-place mutation via peek()/put()
  /// references.  No-op on the heap backend or when the key is absent.
  void commit(const dns::Name& name, dns::RRType type);

  /// Removes every entry that is neither TTL-fresh nor covered by a valid
  /// lease at `now` (an expired lease does not keep an expired entry
  /// alive); returns count removed.
  std::size_t purge_expired(net::SimTime now);

  /// Records the highest zone serial applied (persisted by a persistent
  /// backend so a warm restart only refetches on a real serial gap).
  void note_zone_serial(const dns::Name& zone, uint32_t serial);
  std::vector<std::pair<dns::Name, uint32_t>> zone_serials() const;

  std::size_t size() const;
  /// Value snapshot of the registry-backed counters.
  Stats stats() const;

  CacheStoreBackend& store() { return *store_; }
  const CacheStoreBackend& store() const { return *store_; }

  /// Iterates all entries (tests and the DNScup lease module).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for_each_impl(
        [&fn](const CacheKey& key, const CacheEntry& entry) { fn(key, entry); });
  }

 private:
  /// Registry-backed instruments mirroring Stats field-for-field; bump
  /// sites write through these handles, stats() materializes the values.
  struct Instruments {
    metrics::Counter hits;
    metrics::Counter misses;
    metrics::Counter expired;
    metrics::Counter insertions;
    metrics::Counter invalidations;
    metrics::Counter evictions;
    metrics::Counter leased_evictions;
    metrics::Counter unleased_evictions;
  };

  void for_each_impl(
      const std::function<void(const CacheKey&, const CacheEntry&)>& fn) const;
  void evict_if_needed(net::SimTime now);

  std::size_t capacity_;
  std::unique_ptr<CacheStoreBackend> store_;
  Instruments stats_;
};

}  // namespace dnscup::server

// TTL cache of a local DNS nameserver ("DNS cache" in the paper's
// terminology).  Entries expire by TTL — the classic *weak* consistency
// DNScup strengthens.  Each entry also carries optional lease state so the
// DNScup cache-side module can mark records as push-maintained; the cache
// itself stays oblivious to how leases are negotiated.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "dns/message.h"
#include "dns/rr.h"
#include "net/endpoint.h"
#include "net/time.h"
#include "util/metrics.h"

namespace dnscup::server {

struct CacheKey {
  dns::Name name;
  dns::RRType type;

  bool operator==(const CacheKey& other) const {
    return type == other.type && name == other.name;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    return k.name.hash() * 31 + static_cast<std::size_t>(k.type);
  }
};

struct LeaseState {
  net::SimTime expiry = 0;        ///< lease valid until this instant
  net::Endpoint authority;        ///< grantor; only it may push updates
};

struct CacheEntry {
  dns::RRset rrset;               ///< empty for negative entries
  bool negative = false;
  dns::Rcode negative_rcode = dns::Rcode::kNXDomain;
  net::SimTime inserted_at = 0;
  net::SimTime expiry = 0;        ///< TTL expiry
  std::optional<LeaseState> lease;

  /// Usable at `now`: TTL-fresh, or covered by a still-valid lease (a
  /// leased record is authoritative until the lease expires or an update
  /// arrives — the paper's strong-consistency invariant).
  bool fresh(net::SimTime now) const {
    if (now < expiry) return true;
    return lease.has_value() && now < lease->expiry;
  }
};

class ResolverCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t expired = 0;     ///< lookups that found only a stale entry
    uint64_t insertions = 0;
    uint64_t invalidations = 0;
    uint64_t evictions = 0;
  };

  /// `capacity` bounds the entry count (LRU eviction); 0 = unbounded.
  /// Counters register in `metrics` (default_registry() when null) under
  /// resolver_cache_* with a per-instance label.
  explicit ResolverCache(std::size_t capacity = 0,
                         metrics::MetricsRegistry* metrics = nullptr);

  /// Fresh entry lookup; counts hit/miss/expired.  Returns nullptr on miss.
  const CacheEntry* lookup(const dns::Name& name, dns::RRType type,
                           net::SimTime now);

  /// Non-counting peek at an entry regardless of freshness.
  CacheEntry* peek(const dns::Name& name, dns::RRType type);

  /// Inserts a positive entry.
  CacheEntry& put(const dns::RRset& rrset, net::SimTime now);

  /// Inserts a negative entry (RFC 2308), TTL from the zone SOA minimum.
  CacheEntry& put_negative(const dns::Name& name, dns::RRType type,
                           dns::Rcode rcode, uint32_t ttl, net::SimTime now);

  /// Applies a pushed DNScup update: replaces the entry's data in place,
  /// refreshing TTL.  Creates the entry if missing.
  CacheEntry& apply_update(const dns::RRset& rrset, net::SimTime now);

  /// Drops an entry (e.g. a pushed deletion).  Returns true if present.
  bool invalidate(const dns::Name& name, dns::RRType type);

  /// Removes every TTL-expired, lease-less entry; returns count removed.
  std::size_t purge_expired(net::SimTime now);

  std::size_t size() const { return entries_.size(); }
  /// Value snapshot of the registry-backed counters.
  Stats stats() const;

  /// Iterates all entries (tests and the DNScup lease module).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, node] : entries_) fn(key, node.entry);
  }

 private:
  struct Node {
    CacheEntry entry;
    std::list<CacheKey>::iterator lru_it;
  };

  /// Registry-backed instruments mirroring Stats field-for-field; bump
  /// sites write through these handles, stats() materializes the values.
  struct Instruments {
    metrics::Counter hits;
    metrics::Counter misses;
    metrics::Counter expired;
    metrics::Counter insertions;
    metrics::Counter invalidations;
    metrics::Counter evictions;
  };

  void touch(Node& node, const CacheKey& key);
  void evict_if_needed();

  std::size_t capacity_;
  std::unordered_map<CacheKey, Node, CacheKeyHash> entries_;
  std::list<CacheKey> lru_;  // front = most recent
  Instruments stats_;
};

}  // namespace dnscup::server

// Cache-side push plane: one persistent TCP connection to the authority,
// owned by a small I/O thread.  On (re)connect it sends a SUBSCRIBE frame
// carrying the cache's lease identity — the UDP endpoint its lease
// queries use — so the authority re-adopts the existing lease set instead
// of treating the reconnect as a new cache.  Incoming PUSH frames carry
// encoded CACHE-UPDATE messages and are handed to the update handler;
// the SUBSCRIBE_ACK zone-serial inventory goes to the resync handler so
// a cache that missed pushes while disconnected can detect the serial
// gap and refetch.  Acks travel back over the channel (send_ack), which
// sidesteps the UDP flow-hash ambiguity entirely.
//
// Handlers run on the client's I/O thread; callers that live on an event
// loop (CacheRuntime workers) post the payload across their command
// queue.  send_ack and set_paused are thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/endpoint.h"
#include "net/time.h"
#include "net/transport.h"
#include "push/framing.h"
#include "util/metrics.h"

namespace dnscup::push {

class PushClient {
 public:
  /// Evaluated on the I/O thread at each (re)connect: the warm-reloaded
  /// leases to announce for re-adoption in the SUBSCRIBE.  An empty
  /// result (or no function) keeps the handshake on the v1 wire form.
  using SurvivorsFn = std::function<std::vector<LeaseSurvivor>()>;

  struct Config {
    net::Endpoint authority;  ///< the authority's --push-listen address
    net::Endpoint identity;   ///< lease identity announced in SUBSCRIBE
    SurvivorsFn survivors;    ///< null/empty -> plain v1 handshake
    net::Duration reconnect_min = net::milliseconds(200);
    net::Duration reconnect_max = net::seconds(5);
    net::Duration keepalive_interval = net::seconds(10);
    net::Duration idle_timeout = net::seconds(30);
    metrics::MetricsRegistry* metrics = nullptr;  ///< null -> default
  };

  /// One encoded CACHE-UPDATE arrived over the channel.
  using UpdateHandler = std::function<void(std::vector<uint8_t> message)>;
  /// The SUBSCRIBE_ACK after a (re)connect: the zone-serial inventory
  /// plus, when this connect announced survivors, the per-survivor
  /// re-adoption verdicts (`announced` indexes `ack.resumed_bits`).
  using ResyncHandler = std::function<void(
      SubscribeAck ack, std::vector<LeaseSurvivor> announced)>;

  /// Starts the I/O thread; it connects (and reconnects with backoff)
  /// until stop().  Never fails: an unreachable authority just keeps the
  /// client in its backoff loop while the UDP path carries updates.
  static std::unique_ptr<PushClient> start(Config config,
                                           UpdateHandler on_update,
                                           ResyncHandler on_resync);

  ~PushClient();
  PushClient(const PushClient&) = delete;
  PushClient& operator=(const PushClient&) = delete;

  void stop();

  /// Queues one encoded CACHE-UPDATE ack for the channel.  Thread-safe.
  /// Dropped silently when disconnected — the authority's channel-ack
  /// deadline then falls the update back to UDP, where the normal UDP
  /// ack applies.
  void send_ack(std::vector<uint8_t> message);

  /// Test/ops hook: true drops the connection and holds the client in
  /// a paused state (no reconnect) until false.  Thread-safe.
  void set_paused(bool paused);

  bool connected() const {
    return connected_.load(std::memory_order_relaxed);
  }
  uint64_t connect_count() const {
    return connects_.load(std::memory_order_relaxed);
  }

 private:
  PushClient(Config config, UpdateHandler on_update, ResyncHandler on_resync);

  void run();
  /// Blocking-with-poll connect attempt; -1 on failure.
  int connect_once();
  /// Serves one established connection until it drops or stop/pause.
  void serve(int fd);
  void wake();

  Config config_;
  UpdateHandler on_update_;
  ResyncHandler on_resync_;

  int wake_fd_ = -1;
  std::mutex tx_mu_;                 ///< guards tx_pending_
  std::vector<uint8_t> tx_pending_;  ///< framed bytes queued by send_ack

  net::PushChannelInstruments instruments_;
  std::atomic<bool> connected_{false};
  std::atomic<uint64_t> connects_{0};
  std::atomic<bool> paused_{false};
  std::atomic<bool> stop_requested_{false};
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace dnscup::push

#include "push/push_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/assert.h"
#include "util/logging.h"

namespace dnscup::push {

namespace {

constexpr uint32_t kLoopbackIp = (127u << 24) | 1u;

int64_t mono_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// True when every (name, type) in `subset` also appears in `superset`.
bool covers(
    const std::vector<std::pair<dns::Name, dns::RRType>>& superset,
    const std::vector<std::pair<dns::Name, dns::RRType>>& subset) {
  for (const auto& record : subset) {
    if (std::find(superset.begin(), superset.end(), record) ==
        superset.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

/// PushWriter adapter: binds one worker index so the server knows which
/// command queue to route resolutions back to.
class PushServer::WorkerWriter : public core::PushWriter {
 public:
  WorkerWriter(PushServer* server, int worker)
      : server_(server), worker_(worker) {}

  bool try_push(Item item) override {
    return server_->submit(worker_, std::move(item));
  }

 private:
  PushServer* server_;
  int worker_;
};

util::Result<std::unique_ptr<PushServer>> PushServer::start(
    Config config, metrics::MetricsRegistry* metrics, ResolveFn resolve) {
  DNSCUP_ASSERT(resolve != nullptr && config.workers > 0);
  auto server = std::unique_ptr<PushServer>(
      new PushServer(config, metrics, std::move(resolve)));

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) {
    return util::make_error(util::ErrorCode::kIo,
                            std::string("push socket: ") +
                                std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(kLoopbackIp);
  addr.sin_port = htons(config.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    return util::make_error(util::ErrorCode::kIo,
                            std::string("push bind: ") + std::strerror(err));
  }
  if (::listen(fd, config.backlog) != 0) {
    const int err = errno;
    ::close(fd);
    return util::make_error(util::ErrorCode::kIo,
                            std::string("push listen: ") + std::strerror(err));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    ::close(fd);
    return util::make_error(util::ErrorCode::kIo,
                            std::string("push getsockname: ") +
                                std::strerror(err));
  }
  server->listen_fd_ = fd;
  server->local_ = net::Endpoint{kLoopbackIp, ntohs(addr.sin_port)};

  server->epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  server->wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (server->epoll_fd_ < 0 || server->wake_fd_ < 0) {
    return util::make_error(util::ErrorCode::kIo,
                            std::string("push epoll/eventfd: ") +
                                std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = server->listen_fd_;
  ::epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, server->listen_fd_, &ev);
  ev.data.fd = server->wake_fd_;
  ::epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, server->wake_fd_, &ev);

  server->thread_ = std::thread([raw = server.get()] { raw->run(); });
  return server;
}

PushServer::PushServer(Config config, metrics::MetricsRegistry* metrics,
                       ResolveFn resolve)
    : config_(config), resolve_(std::move(resolve)) {
  // All instruments are created here, before the I/O thread exists — the
  // registry's instrument map is not thread-safe.
  instruments_.register_in(metrics::resolve(metrics), "server",
                           "push-listen");
  writers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w) {
    writers_.push_back(std::make_unique<WorkerWriter>(this, w));
  }
}

PushServer::~PushServer() { stop(); }

core::PushWriter* PushServer::writer_for(int worker) {
  DNSCUP_ASSERT(worker >= 0 &&
                worker < static_cast<int>(writers_.size()));
  return writers_[static_cast<std::size_t>(worker)].get();
}

void PushServer::set_zone_serial(const dns::Name& zone, uint32_t serial) {
  std::lock_guard lock(zones_mu_);
  zone_serials_[zone.to_string()] = ZoneSerial{zone, serial};
}

void PushServer::set_readopt_handler(ReadoptFn fn) {
  std::lock_guard lock(mu_);
  readopt_ = std::move(fn);
}

bool PushServer::subscribed(const net::Endpoint& holder) const {
  std::lock_guard lock(mu_);
  return subs_.count(holder) > 0;
}

std::size_t PushServer::connection_count() const { return conn_count_; }
std::size_t PushServer::subscription_count() const { return sub_count_; }

bool PushServer::submit(int worker, core::PushWriter::Item item) {
  // (worker, id) pairs whose queued updates this submission supersedes;
  // resolved *after* the lock drops — resolve_ posts into a worker queue
  // and must never run under mu_.
  std::vector<std::pair<int, uint16_t>> coalesced;
  bool accepted = false;
  bool had_channel = false;
  {
    std::lock_guard lock(mu_);
    if (!stopping_) {
      auto it = subs_.find(item.holder);
      if (it != subs_.end()) {
        had_channel = true;
        Conn* conn = it->second;
        // Full-supersede coalescing: the payload bytes are pre-encoded
        // (and possibly signed), so a queued update can only be dropped
        // when the newer serial covers every record it carried — which
        // keeps exactly the newest serial per (cache, name).
        for (auto qi = conn->queue.begin(); qi != conn->queue.end();) {
          if (qi->zone == item.zone && dns::serial_gt(item.serial, qi->serial)
              && covers(item.covered, qi->covered)) {
            coalesced.emplace_back(qi->worker, qi->id);
            qi = conn->queue.erase(qi);
          } else {
            ++qi;
          }
        }
        if (conn->queue.size() < config_.max_queue_per_conn) {
          conn->queue.push_back(Queued{worker, item.id, std::move(item.zone),
                                       item.serial, std::move(item.covered),
                                       std::move(item.message)});
          accepted = true;
        }
      }
    }
  }
  if (!coalesced.empty()) {
    instruments_.coalesced.inc(coalesced.size());
    for (const auto& [w, id] : coalesced) {
      resolve_(w, id, core::ChannelResolution::kCoalesced);
    }
  }
  std::size_t depth = queued_total_.load(std::memory_order_relaxed);
  depth += accepted ? 1 : 0;
  depth -= std::min(depth, coalesced.size());
  queued_total_.store(depth, std::memory_order_relaxed);
  instruments_.queue_depth.set(static_cast<double>(depth));
  if (accepted) {
    wake();
  } else if (had_channel) {
    // A live channel whose queue is saturated: the update rides UDP and
    // the overflow shows up in the scrape as a pacing/backpressure signal.
    instruments_.overflows.inc();
  }
  return accepted;
}

void PushServer::wake() {
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void PushServer::run() {
  epoll_event events[128];
  int64_t now = mono_now_us();
  last_pace_us_ = now;
  last_sweep_us_ = now;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // Tight timeout while updates are queued (pacing cadence), relaxed
    // when idle — keepalives only need ~second resolution.
    const bool busy = queued_total_.load(std::memory_order_relaxed) > 0;
    const int timeout_ms = busy
        ? std::max(1, static_cast<int>(config_.pace_interval / 1000))
        : 50;
    const int n = ::epoll_wait(epoll_fd_, events, 128, timeout_ms);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drain = 0;
        while (::read(wake_fd_, &drain, sizeof drain) > 0) {
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn* conn = it->second.get();
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        close_conn(conn, "socket error/hangup");
        continue;
      }
      if (events[i].events & EPOLLIN) {
        handle_read(conn);
        // handle_read may close; re-check before writing.
        if (conns_.count(fd) == 0) continue;
      }
      if (events[i].events & EPOLLOUT) write_some(conn);
    }
    now = mono_now_us();
    if (now - last_pace_us_ >= config_.pace_interval) {
      last_pace_us_ = now;
      service_queues(now);
    }
    if (now - last_sweep_us_ >= net::seconds(1)) {
      last_sweep_us_ = now;
      keepalive_sweep(now);
    }
  }
  shutdown_flush();
  while (!conns_.empty()) {
    close_conn(conns_.begin()->second.get(), "server stopping");
  }
}

void PushServer::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for epoll
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->last_rx_us = mono_now_us();
    conn->last_ping_us = conn->last_rx_us;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    conn_count_.store(conns_.size(), std::memory_order_relaxed);
    ++instruments_.accepts;
    instruments_.connections.set(static_cast<double>(conns_.size()));
  }
}

void PushServer::handle_read(Conn* conn) {
  const int fd = conn->fd;  // conn dies if a handler closes it
  uint8_t buf[16 * 1024];
  bool peer_closed = false;
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n == 0) {
      // Process the frames that arrived before the FIN below — a final
      // PUSH_ACK flushed right before the cache closed still counts.
      peer_closed = true;
      break;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(conn, "read error");
      return;
    }
    conn->reader.append(std::span<const uint8_t>(buf, static_cast<size_t>(n)));
    conn->last_rx_us = mono_now_us();
  }
  Frame frame;
  while (conn->reader.next(frame)) {
    ++instruments_.frames_received;
    handle_frame(conn, frame);
    if (conns_.count(fd) == 0) return;  // frame handler closed it
  }
  if (conn->reader.corrupt()) {
    close_conn(conn, "framing violation");
    return;
  }
  if (peer_closed) close_conn(conn, "peer closed");
}

void PushServer::handle_frame(Conn* conn, Frame& frame) {
  switch (frame.kind) {
    case FrameKind::kSubscribe:
      handle_subscribe(conn, frame.body);
      return;
    case FrameKind::kPushAck: {
      // The body is the encoded CACHE-UPDATE acknowledgement; the DNS
      // message id (header bytes 0-1) is the correlation key, and the
      // connection itself authenticates the addressee — no flow-hash
      // ambiguity as with UDP acks.
      if (frame.body.size() < 2) return;
      const uint16_t id = static_cast<uint16_t>(
          (static_cast<uint16_t>(frame.body[0]) << 8) | frame.body[1]);
      auto it = conn->unacked.find(id);
      if (it == conn->unacked.end()) return;  // duplicate/unknown: ignore
      const int worker = it->second;
      conn->unacked.erase(it);
      resolve_(worker, id, core::ChannelResolution::kAcked);
      return;
    }
    case FrameKind::kPing:
      send_frame(conn, FrameKind::kPong, {});
      return;
    case FrameKind::kPong:
      return;  // last_rx_us already refreshed
    case FrameKind::kSubscribeAck:
    case FrameKind::kPush:
      // Server-to-client frames arriving at the server: protocol abuse.
      close_conn(conn, "unexpected frame kind");
      return;
  }
  close_conn(conn, "unknown frame kind");
}

void PushServer::handle_subscribe(Conn* conn, std::span<const uint8_t> body) {
  const auto info = parse_subscribe(body);
  if (!info.has_value()) {
    close_conn(conn, "malformed SUBSCRIBE");
    return;
  }
  const net::Endpoint identity = info->identity;
  Conn* displaced = nullptr;
  ReadoptFn readopt;
  {
    std::lock_guard lock(mu_);
    readopt = readopt_;
    auto [it, inserted] = subs_.emplace(identity, conn);
    if (!inserted && it->second != conn) {
      // Reconnect re-adopting the lease identity: the fresh channel wins
      // and the stale one (often a half-dead socket we have not timed
      // out yet) is displaced.
      displaced = it->second;
      displaced->subscribed = false;
      it->second = conn;
    }
    conn->subscribed = true;
    conn->identity = identity;
    sub_count_.store(subs_.size(), std::memory_order_relaxed);
  }
  instruments_.subscriptions.set(
      static_cast<double>(sub_count_.load(std::memory_order_relaxed)));
  if (displaced != nullptr) close_conn(displaced, "identity re-adopted");

  std::vector<ZoneSerial> zones;
  {
    std::lock_guard lock(zones_mu_);
    zones.reserve(zone_serials_.size());
    for (const auto& [_, zs] : zone_serials_) zones.push_back(zs);
  }
  if (info->version >= kPushProtocolVersionReadopt) {
    // Decide the survivor inventory outside every lock: the handler may
    // block on a worker thread that is itself calling into this server.
    std::vector<bool> verdicts;
    if (readopt && !info->survivors.empty()) {
      verdicts = readopt(identity, info->survivors);
    }
    // No handler yet (or a short answer): reject — the cache demotes the
    // affected leases, which is always safe, never stale.
    verdicts.resize(info->survivors.size(), false);
    send_frame(conn, FrameKind::kSubscribeAck,
               encode_subscribe_ack(zones, verdicts));
    return;
  }
  send_frame(conn, FrameKind::kSubscribeAck, encode_subscribe_ack(zones));
}

void PushServer::service_queues(int64_t now_us) {
  (void)now_us;
  std::size_t serviced = 0;
  std::size_t moved = 0;
  // Snapshot the fds first: write_some can close (and erase) a
  // connection mid-sweep.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, _] : conns_) fds.push_back(fd);
  for (int fd : fds) {
    if (serviced >= config_.pace_burst) break;
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn* conn = it->second.get();
    const std::size_t before = conn->unacked.size();
    fill_txbuf(conn);
    const std::size_t filled = conn->unacked.size() - before;
    if (filled > 0 || conn->txbuf.size() > conn->txoff) {
      write_some(conn);
      ++serviced;
      moved += filled;
    }
  }
  if (moved > 0) {
    ++instruments_.paced_batches;
    std::size_t depth = queued_total_.load(std::memory_order_relaxed);
    depth -= std::min(depth, moved);
    queued_total_.store(depth, std::memory_order_relaxed);
    instruments_.queue_depth.set(static_cast<double>(depth));
  }
}

void PushServer::fill_txbuf(Conn* conn) {
  // Moves queued updates into the connection's write buffer until the
  // backpressure cap; runs on the I/O thread with mu_ held only for the
  // queue splice, never across the write syscall.
  std::lock_guard lock(mu_);
  while (!conn->queue.empty() &&
         conn->txbuf.size() - conn->txoff < config_.max_write_buffer) {
    Queued q = std::move(conn->queue.front());
    conn->queue.pop_front();
    encode_frame(FrameKind::kPush, q.message, conn->txbuf);
    conn->unacked[q.id] = q.worker;
    ++instruments_.frames_sent;
  }
}

void PushServer::write_some(Conn* conn) {
  while (conn->txoff < conn->txbuf.size()) {
    const ssize_t n = ::send(conn->fd, conn->txbuf.data() + conn->txoff,
                             conn->txbuf.size() - conn->txoff, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(conn, "write error");
      return;
    }
    conn->txoff += static_cast<std::size_t>(n);
  }
  if (conn->txoff == conn->txbuf.size()) {
    conn->txbuf.clear();
    conn->txoff = 0;
  } else if (conn->txoff > 64 * 1024) {
    conn->txbuf.erase(conn->txbuf.begin(),
                      conn->txbuf.begin() +
                          static_cast<std::ptrdiff_t>(conn->txoff));
    conn->txoff = 0;
  }
  update_want_write(conn);
}

void PushServer::update_want_write(Conn* conn) {
  const bool want = conn->txoff < conn->txbuf.size();
  if (want == conn->want_write) return;
  conn->want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void PushServer::keepalive_sweep(int64_t now_us) {
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, _] : conns_) fds.push_back(fd);
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;  // closed earlier in this sweep
    Conn* conn = it->second.get();
    if (now_us - conn->last_rx_us > config_.idle_timeout) {
      close_conn(conn, "idle timeout");
    } else if (now_us - conn->last_rx_us > config_.keepalive_interval &&
               now_us - conn->last_ping_us > config_.keepalive_interval) {
      conn->last_ping_us = now_us;
      send_frame(conn, FrameKind::kPing, {});  // may close on write error
    }
  }
}

void PushServer::send_frame(Conn* conn, FrameKind kind,
                            std::span<const uint8_t> body) {
  encode_frame(kind, body, conn->txbuf);
  ++instruments_.frames_sent;
  write_some(conn);
}

void PushServer::close_conn(Conn* conn, const char* reason) {
  std::deque<Queued> orphaned;
  {
    std::lock_guard lock(mu_);
    if (conn->subscribed) {
      auto it = subs_.find(conn->identity);
      if (it != subs_.end() && it->second == conn) subs_.erase(it);
      conn->subscribed = false;
    }
    orphaned = std::move(conn->queue);
    conn->queue.clear();
    sub_count_.store(subs_.size(), std::memory_order_relaxed);
  }
  if (!orphaned.empty()) {
    std::size_t depth = queued_total_.load(std::memory_order_relaxed);
    depth -= std::min(depth, orphaned.size());
    queued_total_.store(depth, std::memory_order_relaxed);
    instruments_.queue_depth.set(static_cast<double>(depth));
  }
  // Everything still owed on this channel degrades to the UDP path.
  for (const Queued& q : orphaned) {
    resolve_(q.worker, q.id, core::ChannelResolution::kFailed);
  }
  for (const auto& [id, worker] : conn->unacked) {
    resolve_(worker, id, core::ChannelResolution::kFailed);
  }
  DNSCUP_LOG_DEBUG("push: closing connection fd=%d (%s)", conn->fd, reason);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  ++instruments_.disconnects;
  instruments_.subscriptions.set(
      static_cast<double>(sub_count_.load(std::memory_order_relaxed)));
  conns_.erase(conn->fd);
  conn_count_.store(conns_.size(), std::memory_order_relaxed);
  instruments_.connections.set(static_cast<double>(conns_.size()));
}

void PushServer::shutdown_flush() {
  // Best-effort drain: move every queued update into its write buffer
  // and push bytes until done or the deadline — a daemon shutdown must
  // not strand updates that the plane already accepted.
  const int64_t deadline = mono_now_us() + config_.shutdown_flush_timeout;
  std::size_t flushed = 0;
  for (auto& [fd, conn] : conns_) {
    std::lock_guard lock(mu_);
    while (!conn->queue.empty()) {
      Queued q = std::move(conn->queue.front());
      conn->queue.pop_front();
      encode_frame(FrameKind::kPush, q.message, conn->txbuf);
      conn->unacked[q.id] = q.worker;
      ++flushed;
    }
  }
  bool pending = true;
  while (pending && mono_now_us() < deadline) {
    pending = false;
    std::vector<int> fds;
    fds.reserve(conns_.size());
    for (const auto& [fd, _] : conns_) fds.push_back(fd);
    for (int fd : fds) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // write error closed it
      Conn* conn = it->second.get();
      write_some(conn);
      if (conns_.count(fd) == 0) continue;
      if (conn->txoff < conn->txbuf.size()) pending = true;
    }
  }
  if (flushed > 0) instruments_.shutdown_flushed.inc(flushed);
  const std::size_t depth = 0;
  queued_total_.store(depth, std::memory_order_relaxed);
  instruments_.queue_depth.set(0.0);
}

void PushServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  {
    std::lock_guard lock(mu_);
    stopping_ = true;  // reject further submissions
  }
  stop_requested_.store(true, std::memory_order_release);
  wake();
  if (thread_.joinable()) thread_.join();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  epoll_fd_ = wake_fd_ = listen_fd_ = -1;
}

}  // namespace dnscup::push

#include "push/push_client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/logging.h"

namespace dnscup::push {

namespace {

int64_t mono_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::unique_ptr<PushClient> PushClient::start(Config config,
                                              UpdateHandler on_update,
                                              ResyncHandler on_resync) {
  auto client = std::unique_ptr<PushClient>(
      new PushClient(config, std::move(on_update), std::move(on_resync)));
  client->wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  client->thread_ = std::thread([raw = client.get()] { raw->run(); });
  return client;
}

PushClient::PushClient(Config config, UpdateHandler on_update,
                       ResyncHandler on_resync)
    : config_(config),
      on_update_(std::move(on_update)),
      on_resync_(std::move(on_resync)) {
  instruments_.register_in(metrics::resolve(config.metrics), "client",
                           config.identity.to_string());
}

PushClient::~PushClient() { stop(); }

void PushClient::stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_requested_.store(true, std::memory_order_release);
  wake();
  if (thread_.joinable()) thread_.join();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  wake_fd_ = -1;
}

void PushClient::wake() {
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void PushClient::send_ack(std::vector<uint8_t> message) {
  {
    std::lock_guard lock(tx_mu_);
    if (!connected_.load(std::memory_order_relaxed)) return;
    encode_frame(FrameKind::kPushAck, message, tx_pending_);
  }
  wake();
}

void PushClient::set_paused(bool paused) {
  paused_.store(paused, std::memory_order_release);
  wake();
}

void PushClient::run() {
  net::Duration backoff = config_.reconnect_min;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (paused_.load(std::memory_order_acquire)) {
      // Parked: poll only the wake fd so unpause/stop is immediate.
      pollfd pfd{wake_fd_, POLLIN, 0};
      ::poll(&pfd, 1, 100);
      uint64_t drain = 0;
      while (::read(wake_fd_, &drain, sizeof drain) > 0) {
      }
      continue;
    }
    const int fd = connect_once();
    if (fd < 0) {
      // Backoff sleep, interruptible by wake().
      pollfd pfd{wake_fd_, POLLIN, 0};
      ::poll(&pfd, 1, static_cast<int>(backoff / 1000));
      uint64_t drain = 0;
      while (::read(wake_fd_, &drain, sizeof drain) > 0) {
      }
      backoff = std::min(backoff * 2, config_.reconnect_max);
      continue;
    }
    backoff = config_.reconnect_min;
    connects_.fetch_add(1, std::memory_order_relaxed);
    ++instruments_.accepts;
    instruments_.connections.set(1.0);
    connected_.store(true, std::memory_order_release);
    serve(fd);
    connected_.store(false, std::memory_order_release);
    instruments_.connections.set(0.0);
    ++instruments_.disconnects;
    {
      // Acks queued for the dead connection are stale; the authority's
      // channel-ack deadline handles the loss.
      std::lock_guard lock(tx_mu_);
      tx_pending_.clear();
    }
    ::close(fd);
  }
}

int PushClient::connect_once() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(config_.authority.ip);
  addr.sin_port = htons(config_.authority.port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  // Wait for writability (connection established or refused), staying
  // responsive to stop()/set_paused() via the wake fd.
  const int64_t deadline = mono_now_us() + net::seconds(2);
  while (mono_now_us() < deadline) {
    if (stop_requested_.load(std::memory_order_acquire) ||
        paused_.load(std::memory_order_acquire)) {
      ::close(fd);
      return -1;
    }
    pollfd pfds[2] = {{fd, POLLOUT, 0}, {wake_fd_, POLLIN, 0}};
    const int n = ::poll(pfds, 2, 50);
    if (n < 0 && errno != EINTR) break;
    if (pfds[0].revents & (POLLOUT | POLLERR | POLLHUP)) {
      int err = 0;
      socklen_t len = sizeof err;
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) break;
      return fd;
    }
  }
  ::close(fd);
  return -1;
}

void PushClient::serve(int fd) {
  FrameReader reader;
  std::vector<uint8_t> txbuf;
  std::size_t txoff = 0;
  // Announce the lease identity first: everything else on this channel
  // only makes sense once the authority knows which cache this is.  A
  // warm restart also announces its surviving leases here, so the
  // authority re-registers them instead of treating us as a new cache.
  SubscribeInfo hello;
  hello.identity = config_.identity;
  if (config_.survivors) hello.survivors = config_.survivors();
  encode_frame(FrameKind::kSubscribe, encode_subscribe(hello), txbuf);
  ++instruments_.frames_sent;

  int64_t last_rx = mono_now_us();
  int64_t last_ping = last_rx;
  while (!stop_requested_.load(std::memory_order_acquire) &&
         !paused_.load(std::memory_order_acquire)) {
    {
      std::lock_guard lock(tx_mu_);
      if (!tx_pending_.empty()) {
        txbuf.insert(txbuf.end(), tx_pending_.begin(), tx_pending_.end());
        tx_pending_.clear();
      }
    }
    short want = POLLIN;
    if (txoff < txbuf.size()) want |= POLLOUT;
    pollfd pfds[2] = {{fd, want, 0}, {wake_fd_, POLLIN, 0}};
    const int n = ::poll(pfds, 2, 100);
    if (n < 0 && errno != EINTR) return;
    uint64_t drain = 0;
    while (::read(wake_fd_, &drain, sizeof drain) > 0) {
    }
    // Drain reads before acting on POLLERR/POLLHUP: a frame the
    // authority flushed right before closing (its shutdown drain) is
    // still sitting in the receive buffer and must not be dropped.
    bool peer_closed = false;
    if (pfds[0].revents & POLLIN) {
      uint8_t buf[16 * 1024];
      while (true) {
        const ssize_t r = ::read(fd, buf, sizeof buf);
        if (r == 0) {  // authority closed; frames already read still count
          peer_closed = true;
          break;
        }
        if (r < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          return;
        }
        reader.append(std::span<const uint8_t>(buf, static_cast<size_t>(r)));
        last_rx = mono_now_us();
      }
      Frame frame;
      while (reader.next(frame)) {
        ++instruments_.frames_received;
        switch (frame.kind) {
          case FrameKind::kPush:
            if (on_update_) on_update_(std::move(frame.body));
            break;
          case FrameKind::kSubscribeAck: {
            auto ack = parse_subscribe_ack(frame.body);
            if (ack.has_value() && on_resync_) {
              on_resync_(std::move(*ack), hello.survivors);
            }
            break;
          }
          case FrameKind::kPing:
            encode_frame(FrameKind::kPong, {}, txbuf);
            ++instruments_.frames_sent;
            break;
          case FrameKind::kPong:
            break;
          case FrameKind::kSubscribe:
          case FrameKind::kPushAck:
            return;  // client-to-server frames from the server: abuse
        }
      }
      if (reader.corrupt()) return;
    }
    if (peer_closed) return;
    if (pfds[0].revents & (POLLERR | POLLHUP)) return;
    // Write whatever is queued (subscribe, acks, pongs, pings).
    while (txoff < txbuf.size()) {
      const ssize_t w = ::send(fd, txbuf.data() + txoff, txbuf.size() - txoff,
                               MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        return;
      }
      txoff += static_cast<std::size_t>(w);
    }
    if (txoff == txbuf.size()) {
      txbuf.clear();
      txoff = 0;
    }
    const int64_t now = mono_now_us();
    if (now - last_rx > config_.idle_timeout) {
      DNSCUP_LOG_DEBUG("push client: idle timeout, reconnecting");
      return;
    }
    if (now - last_rx > config_.keepalive_interval &&
        now - last_ping > config_.keepalive_interval) {
      last_ping = now;
      encode_frame(FrameKind::kPing, {}, txbuf);
      ++instruments_.frames_sent;
    }
  }
}

}  // namespace dnscup::push

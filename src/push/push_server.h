// Authority-side push plane: an epoll-driven TCP connection manager that
// turns per-datagram CACHE-UPDATE fan-out into a subscription service.
//
// Caches connect, send one SUBSCRIBE frame carrying their lease identity
// (the UDP endpoint their track-file tuples use) and keep the connection
// open; the authority answers with its zone-serial inventory so a
// reconnecting cache can detect a serial gap and refetch.  Zone changes
// are submitted by the worker threads' NotificationModules through the
// core::PushWriter seam; the server queues them per connection (bounded,
// with full-supersede coalescing: a queued update is dropped when a newer
// serial covering all of its records is submitted — only the newest
// serial per (cache, name) survives), writes them out through a paced
// scheduler, and reports each update's fate (acked on-channel, coalesced,
// or failed) back to the owning worker.  Anything the plane cannot take —
// unsubscribed holder, saturated queue, dropped connection — falls back
// to the existing UDP+retransmit path via try_push() returning false or
// a kFailed resolution.
//
// Threading: one dedicated I/O thread owns the sockets.  Worker threads
// only touch the subscription map and the per-connection queues, both
// guarded by a single mutex that is never held across a syscall or a
// resolve callback (the callback posts into a worker's command queue and
// must not be able to deadlock against a worker blocked in try_push).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/notifier.h"
#include "net/endpoint.h"
#include "net/time.h"
#include "net/transport.h"
#include "push/framing.h"
#include "util/metrics.h"
#include "util/result.h"

namespace dnscup::push {

class PushServer {
 public:
  struct Config {
    /// TCP listen port; 0 picks an ephemeral port (tests).
    uint16_t port = 0;
    int backlog = 128;
    /// Serving-runtime worker count — resolutions are routed per worker.
    int workers = 1;
    /// Queued (accepted, unwritten) updates per connection; submissions
    /// beyond this return false and ride the UDP path.
    std::size_t max_queue_per_conn = 128;
    /// Bytes a connection may hold in its kernel-facing write buffer
    /// before the pacer stops feeding it (slow-subscriber backpressure).
    std::size_t max_write_buffer = 256 * 1024;
    /// Connections serviced per pacing tick: caps the per-tick syscall
    /// burst a 1-record change under 100k subscribers can cause.
    std::size_t pace_burst = 512;
    net::Duration pace_interval = net::milliseconds(1);
    net::Duration keepalive_interval = net::seconds(10);
    net::Duration idle_timeout = net::seconds(30);
    /// stop() drains write queues for at most this long.
    net::Duration shutdown_flush_timeout = net::milliseconds(500);
  };

  /// Reports an accepted update's fate.  Called from the I/O thread (and
  /// from submitting worker threads for coalescing), never under the
  /// server mutex; implementations route to the owning worker's loop.
  using ResolveFn = std::function<void(int worker, uint16_t id,
                                       core::ChannelResolution resolution)>;

  /// Binds, listens and starts the I/O thread.  `metrics` may be null
  /// (default registry); all instruments are created before the thread
  /// starts, per the registry's thread-safety contract.
  static util::Result<std::unique_ptr<PushServer>> start(
      Config config, metrics::MetricsRegistry* metrics, ResolveFn resolve);

  ~PushServer();
  PushServer(const PushServer&) = delete;
  PushServer& operator=(const PushServer&) = delete;

  /// Flushes write queues (bounded by shutdown_flush_timeout), closes
  /// every connection and joins the I/O thread.  Idempotent.
  void stop();

  const net::Endpoint& local_endpoint() const { return local_; }

  /// PushWriter for one worker's NotificationModule; valid for the
  /// server's lifetime.  Thread-safe to call concurrently from distinct
  /// workers (each worker gets its own adapter).
  core::PushWriter* writer_for(int worker);

  /// Publishes/updates one zone's serial in the SUBSCRIBE_ACK inventory.
  /// Thread-safe; call at startup and from reload paths.
  void set_zone_serial(const dns::Name& zone, uint32_t serial);

  /// Decides a v2 SUBSCRIBE's survivor inventory: returns one verdict per
  /// announced survivor (true = lease re-adopted).  Called from the I/O
  /// thread without the server mutex held; implementations typically
  /// block on the owning worker.  Until a handler is set, every survivor
  /// is rejected — the safe default, since the cache then demotes those
  /// leases to plain TTL entries.  Thread-safe.
  using ReadoptFn = std::function<std::vector<bool>(
      const net::Endpoint& holder, const std::vector<LeaseSurvivor>&)>;
  void set_readopt_handler(ReadoptFn fn);

  /// True when `holder` currently has a live subscribed channel.
  bool subscribed(const net::Endpoint& holder) const;

  std::size_t connection_count() const;
  std::size_t subscription_count() const;

 private:
  /// An accepted update waiting for channel capacity.
  struct Queued {
    int worker = 0;
    uint16_t id = 0;
    dns::Name zone;
    uint32_t serial = 0;
    std::vector<std::pair<dns::Name, dns::RRType>> covered;
    std::vector<uint8_t> message;  ///< encoded CACHE-UPDATE (frame body)
  };

  struct Conn {
    int fd = -1;
    bool subscribed = false;
    net::Endpoint identity{};  ///< lease identity once subscribed
    FrameReader reader;
    /// Accepted updates not yet moved to the write buffer (guard: mu_).
    std::deque<Queued> queue;
    /// Framed bytes in flight to the kernel (I/O thread only).
    std::vector<uint8_t> txbuf;
    std::size_t txoff = 0;
    /// Written updates awaiting PUSH_ACK: id -> owning worker.
    std::map<uint16_t, int> unacked;
    int64_t last_rx_us = 0;    ///< monotonic clock, I/O thread only
    int64_t last_ping_us = 0;
    bool want_write = false;   ///< EPOLLOUT currently armed
  };

  class WorkerWriter;  // PushWriter adapter binding a worker index

  PushServer(Config config, metrics::MetricsRegistry* metrics,
             ResolveFn resolve);

  bool submit(int worker, core::PushWriter::Item item);

  void run();
  void accept_ready();
  void handle_read(Conn* conn);
  void handle_frame(Conn* conn, Frame& frame);
  void handle_subscribe(Conn* conn, std::span<const uint8_t> body);
  void service_queues(int64_t now_us);
  void fill_txbuf(Conn* conn);
  void write_some(Conn* conn);
  void keepalive_sweep(int64_t now_us);
  void send_frame(Conn* conn, FrameKind kind, std::span<const uint8_t> body);
  void close_conn(Conn* conn, const char* reason);
  void shutdown_flush();
  void update_want_write(Conn* conn);
  void wake();

  Config config_;
  ResolveFn resolve_;
  net::Endpoint local_{};
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  mutable std::mutex mu_;  ///< guards subs_, Conn::queue, stopping_, readopt_
  std::map<net::Endpoint, Conn*> subs_;
  bool stopping_ = false;
  ReadoptFn readopt_;

  std::mutex zones_mu_;  ///< guards zone_serials_
  std::map<std::string, ZoneSerial> zone_serials_;

  /// I/O-thread-owned connection table (fd -> connection).
  std::map<int, std::unique_ptr<Conn>> conns_;
  int64_t last_pace_us_ = 0;
  int64_t last_sweep_us_ = 0;

  std::vector<std::unique_ptr<WorkerWriter>> writers_;
  net::PushChannelInstruments instruments_;
  std::atomic<std::size_t> queued_total_{0};
  std::atomic<std::size_t> conn_count_{0};
  std::atomic<std::size_t> sub_count_{0};

  std::atomic<bool> stop_requested_{false};
  bool stopped_ = false;  ///< stop() already completed (main thread)
  std::thread thread_;
};

}  // namespace dnscup::push

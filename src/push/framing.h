// Push-plane wire framing: DNS-over-TCP style 2-byte big-endian length
// prefix, then a 1-byte frame kind and the frame body.  The body of a
// PUSH frame is a fully encoded CACHE-UPDATE message (signed when the
// authority signs, byte-identical to what the UDP fallback would carry);
// a PUSH_ACK body is the encoded empty opcode-6 acknowledgement.  The
// SUBSCRIBE handshake carries the cache's lease identity — the UDP
// endpoint its EXT queries (and therefore its track-file tuples) use —
// so one long-lived connection re-adopts the same lease set across
// reconnects.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dns/name.h"
#include "dns/rdata.h"
#include "net/endpoint.h"

namespace dnscup::push {

enum class FrameKind : uint8_t {
  kSubscribe = 1,     ///< cache -> authority: lease identity handshake
  kSubscribeAck = 2,  ///< authority -> cache: zone serial inventory
  kPush = 3,          ///< authority -> cache: encoded CACHE-UPDATE
  kPushAck = 4,       ///< cache -> authority: encoded CACHE-UPDATE ack
  kPing = 5,          ///< either direction: liveness probe
  kPong = 6,          ///< answer to kPing
};

/// Largest frame body (the 2-byte length prefix caps it, like DNS/TCP).
inline constexpr std::size_t kMaxFrameBody = 65534;  // kind byte + body

struct Frame {
  FrameKind kind = FrameKind::kPing;
  std::vector<uint8_t> body;
};

/// Appends one framed message (length prefix + kind + body) to `out`.
/// Returns false (appending nothing) when the body exceeds kMaxFrameBody.
bool encode_frame(FrameKind kind, std::span<const uint8_t> body,
                  std::vector<uint8_t>& out);

/// Incremental decoder for a TCP byte stream: feed whatever arrived,
/// take complete frames out.  A malformed stream (zero-length frame,
/// which cannot even hold the kind byte) poisons the reader — the
/// connection should be closed.
class FrameReader {
 public:
  /// Appends raw stream bytes.
  void append(std::span<const uint8_t> data);

  /// Extracts the next complete frame; false when more bytes are needed.
  bool next(Frame& frame);

  /// True once the stream violated framing; no further frames decode.
  bool corrupt() const { return corrupt_; }

  /// Bytes buffered but not yet consumed as frames.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  std::size_t consumed_ = 0;
  bool corrupt_ = false;
};

// SUBSCRIBE body, version 1: version byte, then the lease-holder endpoint
// (4-byte IP + 2-byte port, big endian).
//
// Version 2 (warm restart) appends a survivor inventory: a 2-byte count,
// then per surviving lease a length-prefixed presentation-form name, a
// 2-byte RR type and an 8-byte remaining lease duration in microseconds.
// A warm-restarted cache announces the leases it reloaded from its
// persistent store so the authority can re-register them instead of
// treating the cache as new.  Version-1 peers still interoperate: a v1
// SUBSCRIBE is a v2 SUBSCRIBE with zero survivors, and a v1 ack simply
// carries no verdicts (the cache then demotes its survivors).
inline constexpr uint8_t kPushProtocolVersion = 1;
inline constexpr uint8_t kPushProtocolVersionReadopt = 2;

/// One warm-reloaded lease announced for re-adoption.
struct LeaseSurvivor {
  dns::Name name;
  dns::RRType type = dns::RRType::kA;
  uint64_t remaining_us = 0;  ///< lease time left at announce
};

struct SubscribeInfo {
  uint8_t version = kPushProtocolVersion;
  net::Endpoint identity{};
  std::vector<LeaseSurvivor> survivors;  ///< empty on cold connects
};

std::vector<uint8_t> encode_subscribe(const net::Endpoint& identity);
std::vector<uint8_t> encode_subscribe(const SubscribeInfo& info);
std::optional<SubscribeInfo> parse_subscribe(std::span<const uint8_t> body);

// SUBSCRIBE_ACK body, version 1: version byte, 2-byte zone count, then
// per zone a 4-byte serial and a length-prefixed presentation-form zone
// name.  The reconnecting cache compares these serials with the last
// serial it applied per zone; a gap means pushes were missed while
// disconnected and the leased records must be refetched.
//
// Version 2 (answering a v2 SUBSCRIBE) appends the re-adoption verdict:
// 4-byte resumed count, 4-byte rejected count, a 2-byte echo of the
// announced survivor count and a bitmask (bit i of byte i/8, LSB first)
// with bit i set when announced survivor i was re-adopted.  Per-survivor
// verdicts let the cache demote exactly the rejected leases — never
// serving a record as leased that the authority no longer tracks.
struct ZoneSerial {
  dns::Name zone;
  uint32_t serial = 0;
};

struct SubscribeAck {
  std::vector<ZoneSerial> zones;
  /// True for a v2 ack: resumed/rejected/resumed_bits are meaningful.
  bool has_readoption = false;
  uint32_t resumed = 0;
  uint32_t rejected = 0;
  std::vector<bool> resumed_bits;  ///< indexed like the announced survivors
};

std::vector<uint8_t> encode_subscribe_ack(const std::vector<ZoneSerial>& zones);
std::vector<uint8_t> encode_subscribe_ack(const std::vector<ZoneSerial>& zones,
                                          const std::vector<bool>& resumed_bits);
std::optional<SubscribeAck> parse_subscribe_ack(std::span<const uint8_t> body);

}  // namespace dnscup::push

#include "push/framing.h"

#include <cstring>

namespace dnscup::push {

namespace {

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v & 0xFF));
}

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  put_u16(out, static_cast<uint16_t>(v >> 16));
  put_u16(out, static_cast<uint16_t>(v & 0xFFFF));
}

class BodyReader {
 public:
  explicit BodyReader(std::span<const uint8_t> body) : body_(body) {}

  std::optional<uint8_t> u8() {
    if (pos_ + 1 > body_.size()) return std::nullopt;
    return body_[pos_++];
  }
  std::optional<uint16_t> u16() {
    if (pos_ + 2 > body_.size()) return std::nullopt;
    const uint16_t v = static_cast<uint16_t>(
        (static_cast<uint16_t>(body_[pos_]) << 8) | body_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::optional<uint32_t> u32() {
    const auto hi = u16();
    if (!hi.has_value()) return std::nullopt;
    const auto lo = u16();
    if (!lo.has_value()) return std::nullopt;
    return (static_cast<uint32_t>(*hi) << 16) | *lo;
  }
  std::optional<std::span<const uint8_t>> bytes(std::size_t n) {
    if (pos_ + n > body_.size()) return std::nullopt;
    auto view = body_.subspan(pos_, n);
    pos_ += n;
    return view;
  }
  bool exhausted() const { return pos_ == body_.size(); }

 private:
  std::span<const uint8_t> body_;
  std::size_t pos_ = 0;
};

}  // namespace

bool encode_frame(FrameKind kind, std::span<const uint8_t> body,
                  std::vector<uint8_t>& out) {
  if (body.size() > kMaxFrameBody) return false;
  const uint16_t length = static_cast<uint16_t>(body.size() + 1);
  out.reserve(out.size() + 2 + length);
  put_u16(out, length);
  out.push_back(static_cast<uint8_t>(kind));
  out.insert(out.end(), body.begin(), body.end());
  return true;
}

void FrameReader::append(std::span<const uint8_t> data) {
  if (corrupt_) return;
  // Compact lazily: drop consumed prefix once it dominates the buffer so
  // a long-lived connection does not grow its read buffer forever.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

bool FrameReader::next(Frame& frame) {
  if (corrupt_) return false;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 2) return false;
  const uint16_t length = static_cast<uint16_t>(
      (static_cast<uint16_t>(buffer_[consumed_]) << 8) |
      buffer_[consumed_ + 1]);
  if (length == 0) {
    // Cannot even hold the kind byte: the stream is not speaking our
    // protocol.
    corrupt_ = true;
    return false;
  }
  if (available < 2u + length) return false;
  frame.kind = static_cast<FrameKind>(buffer_[consumed_ + 2]);
  frame.body.assign(
      buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 3),
      buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 2 + length));
  consumed_ += 2u + length;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  return true;
}

std::vector<uint8_t> encode_subscribe(const net::Endpoint& identity) {
  std::vector<uint8_t> body;
  body.push_back(kPushProtocolVersion);
  put_u32(body, identity.ip);
  put_u16(body, identity.port);
  return body;
}

std::optional<net::Endpoint> parse_subscribe(std::span<const uint8_t> body) {
  BodyReader reader(body);
  const auto version = reader.u8();
  if (!version.has_value() || *version != kPushProtocolVersion) {
    return std::nullopt;
  }
  const auto ip = reader.u32();
  const auto port = reader.u16();
  if (!ip.has_value() || !port.has_value() || !reader.exhausted()) {
    return std::nullopt;
  }
  if (*port == 0) return std::nullopt;  // not a usable lease identity
  return net::Endpoint{*ip, *port};
}

std::vector<uint8_t> encode_subscribe_ack(
    const std::vector<ZoneSerial>& zones) {
  std::vector<uint8_t> body;
  body.push_back(kPushProtocolVersion);
  put_u16(body, static_cast<uint16_t>(zones.size()));
  for (const ZoneSerial& z : zones) {
    put_u32(body, z.serial);
    const std::string text = z.zone.to_string();
    put_u16(body, static_cast<uint16_t>(text.size()));
    body.insert(body.end(), text.begin(), text.end());
  }
  return body;
}

std::optional<std::vector<ZoneSerial>> parse_subscribe_ack(
    std::span<const uint8_t> body) {
  BodyReader reader(body);
  const auto version = reader.u8();
  if (!version.has_value() || *version != kPushProtocolVersion) {
    return std::nullopt;
  }
  const auto count = reader.u16();
  if (!count.has_value()) return std::nullopt;
  std::vector<ZoneSerial> zones;
  zones.reserve(*count);
  for (uint16_t i = 0; i < *count; ++i) {
    const auto serial = reader.u32();
    if (!serial.has_value()) return std::nullopt;
    const auto name_len = reader.u16();
    if (!name_len.has_value()) return std::nullopt;
    const auto name_bytes = reader.bytes(*name_len);
    if (!name_bytes.has_value()) return std::nullopt;
    const std::string text(reinterpret_cast<const char*>(name_bytes->data()),
                           name_bytes->size());
    auto name = dns::Name::parse(text);
    if (!name.ok()) return std::nullopt;
    zones.push_back(ZoneSerial{std::move(name).value(), *serial});
  }
  if (!reader.exhausted()) return std::nullopt;
  return zones;
}

}  // namespace dnscup::push

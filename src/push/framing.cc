#include "push/framing.h"

#include <cstring>

namespace dnscup::push {

namespace {

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v & 0xFF));
}

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  put_u16(out, static_cast<uint16_t>(v >> 16));
  put_u16(out, static_cast<uint16_t>(v & 0xFFFF));
}

void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  put_u32(out, static_cast<uint32_t>(v >> 32));
  put_u32(out, static_cast<uint32_t>(v & 0xFFFFFFFF));
}

void put_name(std::vector<uint8_t>& out, const dns::Name& name) {
  const std::string text = name.to_string();
  put_u16(out, static_cast<uint16_t>(text.size()));
  out.insert(out.end(), text.begin(), text.end());
}

class BodyReader {
 public:
  explicit BodyReader(std::span<const uint8_t> body) : body_(body) {}

  std::optional<uint8_t> u8() {
    if (pos_ + 1 > body_.size()) return std::nullopt;
    return body_[pos_++];
  }
  std::optional<uint16_t> u16() {
    if (pos_ + 2 > body_.size()) return std::nullopt;
    const uint16_t v = static_cast<uint16_t>(
        (static_cast<uint16_t>(body_[pos_]) << 8) | body_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::optional<uint32_t> u32() {
    const auto hi = u16();
    if (!hi.has_value()) return std::nullopt;
    const auto lo = u16();
    if (!lo.has_value()) return std::nullopt;
    return (static_cast<uint32_t>(*hi) << 16) | *lo;
  }
  std::optional<std::span<const uint8_t>> bytes(std::size_t n) {
    if (pos_ + n > body_.size()) return std::nullopt;
    auto view = body_.subspan(pos_, n);
    pos_ += n;
    return view;
  }
  std::optional<uint64_t> u64() {
    const auto hi = u32();
    if (!hi.has_value()) return std::nullopt;
    const auto lo = u32();
    if (!lo.has_value()) return std::nullopt;
    return (static_cast<uint64_t>(*hi) << 32) | *lo;
  }
  std::optional<dns::Name> name() {
    const auto len = u16();
    if (!len.has_value()) return std::nullopt;
    const auto text_bytes = bytes(*len);
    if (!text_bytes.has_value()) return std::nullopt;
    const std::string text(reinterpret_cast<const char*>(text_bytes->data()),
                           text_bytes->size());
    auto parsed = dns::Name::parse(text);
    if (!parsed.ok()) return std::nullopt;
    return std::move(parsed).value();
  }
  bool exhausted() const { return pos_ == body_.size(); }

 private:
  std::span<const uint8_t> body_;
  std::size_t pos_ = 0;
};

}  // namespace

bool encode_frame(FrameKind kind, std::span<const uint8_t> body,
                  std::vector<uint8_t>& out) {
  if (body.size() > kMaxFrameBody) return false;
  const uint16_t length = static_cast<uint16_t>(body.size() + 1);
  out.reserve(out.size() + 2 + length);
  put_u16(out, length);
  out.push_back(static_cast<uint8_t>(kind));
  out.insert(out.end(), body.begin(), body.end());
  return true;
}

void FrameReader::append(std::span<const uint8_t> data) {
  if (corrupt_) return;
  // Compact lazily: drop consumed prefix once it dominates the buffer so
  // a long-lived connection does not grow its read buffer forever.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

bool FrameReader::next(Frame& frame) {
  if (corrupt_) return false;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 2) return false;
  const uint16_t length = static_cast<uint16_t>(
      (static_cast<uint16_t>(buffer_[consumed_]) << 8) |
      buffer_[consumed_ + 1]);
  if (length == 0) {
    // Cannot even hold the kind byte: the stream is not speaking our
    // protocol.
    corrupt_ = true;
    return false;
  }
  if (available < 2u + length) return false;
  frame.kind = static_cast<FrameKind>(buffer_[consumed_ + 2]);
  frame.body.assign(
      buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 3),
      buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 2 + length));
  consumed_ += 2u + length;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  return true;
}

std::vector<uint8_t> encode_subscribe(const net::Endpoint& identity) {
  std::vector<uint8_t> body;
  body.push_back(kPushProtocolVersion);
  put_u32(body, identity.ip);
  put_u16(body, identity.port);
  return body;
}

std::vector<uint8_t> encode_subscribe(const SubscribeInfo& info) {
  // A connect with nothing to re-adopt stays on the v1 wire form so old
  // authorities keep accepting it unchanged.
  if (info.survivors.empty()) return encode_subscribe(info.identity);
  std::vector<uint8_t> body;
  body.push_back(kPushProtocolVersionReadopt);
  put_u32(body, info.identity.ip);
  put_u16(body, info.identity.port);
  put_u16(body, static_cast<uint16_t>(info.survivors.size()));
  for (const LeaseSurvivor& s : info.survivors) {
    put_name(body, s.name);
    put_u16(body, static_cast<uint16_t>(s.type));
    put_u64(body, s.remaining_us);
  }
  return body;
}

std::optional<SubscribeInfo> parse_subscribe(std::span<const uint8_t> body) {
  BodyReader reader(body);
  const auto version = reader.u8();
  if (!version.has_value() || (*version != kPushProtocolVersion &&
                               *version != kPushProtocolVersionReadopt)) {
    return std::nullopt;
  }
  SubscribeInfo info;
  info.version = *version;
  const auto ip = reader.u32();
  const auto port = reader.u16();
  if (!ip.has_value() || !port.has_value()) return std::nullopt;
  if (*port == 0) return std::nullopt;  // not a usable lease identity
  info.identity = net::Endpoint{*ip, *port};
  if (*version == kPushProtocolVersionReadopt) {
    const auto count = reader.u16();
    if (!count.has_value()) return std::nullopt;
    info.survivors.reserve(*count);
    for (uint16_t i = 0; i < *count; ++i) {
      LeaseSurvivor s;
      auto name = reader.name();
      if (!name.has_value()) return std::nullopt;
      s.name = std::move(*name);
      const auto type = reader.u16();
      const auto remaining = reader.u64();
      if (!type.has_value() || !remaining.has_value()) return std::nullopt;
      s.type = static_cast<dns::RRType>(*type);
      s.remaining_us = *remaining;
      info.survivors.push_back(std::move(s));
    }
  }
  if (!reader.exhausted()) return std::nullopt;
  return info;
}

namespace {

void encode_zone_list(std::vector<uint8_t>& body,
                      const std::vector<ZoneSerial>& zones) {
  put_u16(body, static_cast<uint16_t>(zones.size()));
  for (const ZoneSerial& z : zones) {
    put_u32(body, z.serial);
    put_name(body, z.zone);
  }
}

}  // namespace

std::vector<uint8_t> encode_subscribe_ack(
    const std::vector<ZoneSerial>& zones) {
  std::vector<uint8_t> body;
  body.push_back(kPushProtocolVersion);
  encode_zone_list(body, zones);
  return body;
}

std::vector<uint8_t> encode_subscribe_ack(
    const std::vector<ZoneSerial>& zones,
    const std::vector<bool>& resumed_bits) {
  std::vector<uint8_t> body;
  body.push_back(kPushProtocolVersionReadopt);
  encode_zone_list(body, zones);
  uint32_t resumed = 0;
  for (const bool bit : resumed_bits) resumed += bit ? 1 : 0;
  put_u32(body, resumed);
  put_u32(body, static_cast<uint32_t>(resumed_bits.size()) - resumed);
  put_u16(body, static_cast<uint16_t>(resumed_bits.size()));
  uint8_t acc = 0;
  for (std::size_t i = 0; i < resumed_bits.size(); ++i) {
    if (resumed_bits[i]) acc |= static_cast<uint8_t>(1u << (i % 8));
    if (i % 8 == 7 || i + 1 == resumed_bits.size()) {
      body.push_back(acc);
      acc = 0;
    }
  }
  return body;
}

std::optional<SubscribeAck> parse_subscribe_ack(
    std::span<const uint8_t> body) {
  BodyReader reader(body);
  const auto version = reader.u8();
  if (!version.has_value() || (*version != kPushProtocolVersion &&
                               *version != kPushProtocolVersionReadopt)) {
    return std::nullopt;
  }
  const auto count = reader.u16();
  if (!count.has_value()) return std::nullopt;
  SubscribeAck ack;
  ack.zones.reserve(*count);
  for (uint16_t i = 0; i < *count; ++i) {
    const auto serial = reader.u32();
    if (!serial.has_value()) return std::nullopt;
    auto name = reader.name();
    if (!name.has_value()) return std::nullopt;
    ack.zones.push_back(ZoneSerial{std::move(*name), *serial});
  }
  if (*version == kPushProtocolVersionReadopt) {
    ack.has_readoption = true;
    const auto resumed = reader.u32();
    const auto rejected = reader.u32();
    const auto survivors = reader.u16();
    if (!resumed.has_value() || !rejected.has_value() ||
        !survivors.has_value()) {
      return std::nullopt;
    }
    ack.resumed = *resumed;
    ack.rejected = *rejected;
    const auto bits = reader.bytes((*survivors + 7) / 8);
    if (!bits.has_value()) return std::nullopt;
    ack.resumed_bits.resize(*survivors);
    for (uint16_t i = 0; i < *survivors; ++i) {
      ack.resumed_bits[i] = ((*bits)[i / 8] >> (i % 8)) & 1;
    }
  }
  if (!reader.exhausted()) return std::nullopt;
  return ack;
}

}  // namespace dnscup::push

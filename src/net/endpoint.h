// Network endpoints (IPv4 address + UDP port) used as identities of
// nameservers and caches throughout the library, including as lease-holder
// keys in the DNScup track file.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace dnscup::net {

struct Endpoint {
  uint32_t ip = 0;    ///< host byte order
  uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;

  std::string to_string() const {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u", (ip >> 24) & 0xFF,
                  (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF, port);
    return buf;
  }
};

/// Convenience: builds 10.0.x.y-style simulation addresses.
constexpr uint32_t make_ip(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return (static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
         (static_cast<uint32_t>(c) << 8) | d;
}

/// Parses "a.b.c.d:port" (the form to_string() prints and every CLI tool
/// accepts).  Rejects stray characters, octets > 255 and ports outside
/// 1..65535 — including trailing garbage after the port ("127.0.0.1:53x"
/// is an error, not port 53).  When `error` is non-null a rejection
/// stores a message naming the offending input and what was wrong with
/// it, so CLI flags can report something better than "bad endpoint".
inline std::optional<Endpoint> parse_endpoint(std::string_view text,
                                              std::string* error = nullptr) {
  auto fail = [&](const char* why) -> std::optional<Endpoint> {
    if (error != nullptr) {
      *error = "bad endpoint \"" + std::string(text) + "\": " + why +
               " (want a.b.c.d:port, port 1-65535)";
    }
    return std::nullopt;
  };
  uint32_t ip = 0;
  std::size_t pos = 0;
  auto read_number = [&](uint32_t max) -> std::optional<uint32_t> {
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
      return std::nullopt;
    }
    uint32_t value = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      value = value * 10 + static_cast<uint32_t>(text[pos] - '0');
      if (value > max) return std::nullopt;
      ++pos;
    }
    return value;
  };
  for (int octet = 0; octet < 4; ++octet) {
    const auto value = read_number(255);
    if (!value.has_value()) return fail("malformed IPv4 address");
    ip = (ip << 8) | *value;
    if (octet < 3) {
      if (pos >= text.size() || text[pos] != '.') {
        return fail("malformed IPv4 address");
      }
      ++pos;
    }
  }
  if (pos >= text.size() || text[pos] != ':') {
    return fail("missing ':port'");
  }
  ++pos;
  const auto port = read_number(65535);
  if (!port.has_value()) return fail("missing or out-of-range port");
  if (*port == 0) return fail("port 0 is not addressable");
  if (pos != text.size()) return fail("trailing characters after the port");
  return Endpoint{ip, static_cast<uint16_t>(*port)};
}

struct EndpointHash {
  std::size_t operator()(const Endpoint& e) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(e.ip) << 16) | e.port);
  }
};

}  // namespace dnscup::net

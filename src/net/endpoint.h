// Network endpoints (IPv4 address + UDP port) used as identities of
// nameservers and caches throughout the library, including as lease-holder
// keys in the DNScup track file.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace dnscup::net {

struct Endpoint {
  uint32_t ip = 0;    ///< host byte order
  uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;

  std::string to_string() const {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u", (ip >> 24) & 0xFF,
                  (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF, port);
    return buf;
  }
};

/// Convenience: builds 10.0.x.y-style simulation addresses.
constexpr uint32_t make_ip(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return (static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
         (static_cast<uint32_t>(c) << 8) | d;
}

struct EndpointHash {
  std::size_t operator()(const Endpoint& e) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(e.ip) << 16) | e.port);
  }
};

}  // namespace dnscup::net

#include "net/io_backend.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "net/udp_transport.h"
#include "util/logging.h"
#ifdef DNSCUP_HAVE_IO_URING
#include "net/uring_backend.h"
#endif

namespace dnscup::net {

namespace {
constexpr uint32_t kLoopbackIp = 0x7F000001;  // 127.0.0.1
}  // namespace

std::optional<IoBackendKind> parse_io_backend_kind(std::string_view text) {
  if (text == "portable") return IoBackendKind::kPortable;
  if (text == "uring" || text == "io_uring") return IoBackendKind::kUring;
  if (text == "default") return IoBackendKind::kDefault;
  return std::nullopt;
}

const char* to_string(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kDefault:
      return "default";
    case IoBackendKind::kPortable:
      return "portable";
    case IoBackendKind::kUring:
      return "uring";
  }
  return "portable";
}

IoBackendKind resolve_io_backend_kind(IoBackendKind kind) {
  if (kind != IoBackendKind::kDefault) return kind;
  const char* env = std::getenv("DNSCUP_IO_BACKEND");
  if (env == nullptr || *env == '\0') return IoBackendKind::kPortable;
  const auto parsed = parse_io_backend_kind(env);
  if (!parsed.has_value() || *parsed == IoBackendKind::kDefault) {
    DNSCUP_LOG_WARN("DNSCUP_IO_BACKEND=%s is not a backend name; "
                    "serving with portable",
                    env);
    return IoBackendKind::kPortable;
  }
  return *parsed;
}

bool uring_compiled() {
#ifdef DNSCUP_HAVE_IO_URING
  return true;
#else
  return false;
#endif
}

#ifndef DNSCUP_HAVE_IO_URING
util::Status uring_runtime_probe() {
  return util::make_error(util::ErrorCode::kUnsupported,
                          "io_uring backend not compiled in "
                          "(<linux/io_uring.h> missing at build time)");
}
#endif

util::Result<std::unique_ptr<IoBackend>> bind_io_backend(
    IoBackendKind kind, const IoBackend::Options& options) {
  kind = resolve_io_backend_kind(kind);
#ifdef DNSCUP_HAVE_IO_URING
  if (kind == IoBackendKind::kUring) {
    auto bound = UringBackend::bind(options);
    if (bound.ok()) {
      return util::Result<std::unique_ptr<IoBackend>>(
          std::move(bound).value());
    }
    if (bound.error().code != util::ErrorCode::kUnsupported) {
      return bound.error();
    }
    DNSCUP_LOG_WARN("io_uring backend unavailable (%s); "
                    "falling back to portable",
                    bound.error().message.c_str());
  }
#else
  if (kind == IoBackendKind::kUring) {
    DNSCUP_LOG_WARN("io_uring backend not compiled in; "
                    "falling back to portable");
  }
#endif
  auto bound = UdpTransport::bind(options);
  if (!bound.ok()) return bound.error();
  return util::Result<std::unique_ptr<IoBackend>>(std::move(bound).value());
}

bool pin_current_thread_to_cpu(int cpu) {
#ifdef __linux__
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

namespace detail {

util::Result<int> open_udp_socket(const IoBackend::Options& options,
                                  Endpoint* local) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return util::make_error(util::ErrorCode::kIo,
                            std::string("socket: ") + std::strerror(errno));
  }
  if (options.reuseport) {
#ifdef SO_REUSEPORT
    const int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      const int err = errno;
      ::close(fd);
      return util::make_error(
          util::ErrorCode::kUnsupported,
          std::string("SO_REUSEPORT: ") + std::strerror(err));
    }
#else
    ::close(fd);
    return util::make_error(util::ErrorCode::kUnsupported,
                            "SO_REUSEPORT not available on this platform");
#endif
  }
  if (options.rcvbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options.rcvbuf_bytes,
                 sizeof options.rcvbuf_bytes);
  }
  if (options.sndbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options.sndbuf_bytes,
                 sizeof options.sndbuf_bytes);
  }
#ifdef SO_RXQ_OVFL
  {
    // Ask the kernel to report receive-queue drops as ancillary data so
    // the rx overflow counter reflects real loss, not just what we
    // happened to read.
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_RXQ_OVFL, &one, sizeof one);
  }
#endif
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(kLoopbackIp);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    return util::make_error(util::ErrorCode::kIo,
                            std::string("bind: ") + std::strerror(err));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    ::close(fd);
    return util::make_error(util::ErrorCode::kIo,
                            std::string("getsockname: ") + std::strerror(err));
  }
  // A short receive timeout lets blocking receivers notice shutdown.
  timeval tv{};
  tv.tv_usec = 50 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

  *local = Endpoint{kLoopbackIp, ntohs(addr.sin_port)};
  return fd;
}

}  // namespace detail
}  // namespace dnscup::net

// Single-threaded discrete-event loop.  Events fire in (time, insertion
// order) so runs are fully deterministic; this is the clock that drives
// every simulation, test and bench in the repository.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "net/time.h"
#include "util/metrics.h"

namespace dnscup::net {

class EventLoop;

namespace detail {

/// Shared between the queue entry and every TimerHandle copy.  Carries the
/// loop's live-event gauge / cancel counter so a cancel after the loop has
/// been destroyed still updates the (registry-owned) instruments exactly
/// once.
struct CancelState {
  bool cancelled = false;
  bool fired = false;  ///< guards against decrementing after the fire path
  metrics::Gauge pending_live;
  metrics::Counter cancelled_count;
};

}  // namespace detail

/// Cancellation handle for a scheduled event.  Cheap to copy; cancel() is
/// idempotent and safe after the event fired.
class TimerHandle {
 public:
  TimerHandle() = default;

  void cancel();
  bool active() const;

 private:
  friend class EventLoop;
  explicit TimerHandle(std::shared_ptr<detail::CancelState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::CancelState> state_;
};

class EventLoop : public Clock {
 public:
  EventLoop() : EventLoop(nullptr) {}
  /// Registers event_loop_* instruments in `metrics` (default_registry()
  /// when null) under a per-loop instance label.
  explicit EventLoop(metrics::MetricsRegistry* metrics);
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const override { return now_; }

  /// Schedules `fn` to run at now() + delay (delay < 0 is clamped to 0).
  TimerHandle schedule(Duration delay, std::function<void()> fn);

  /// Schedules at an absolute time (clamped to now()).
  TimerHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Runs events until the queue empties or `deadline` passes; returns the
  /// number of events fired.  The clock ends at min(deadline, last event)
  /// — or exactly deadline if any event fired at/after it.
  std::size_t run_until(SimTime deadline);

  /// Runs for a relative duration.
  std::size_t run_for(Duration duration) { return run_until(now_ + duration); }

  /// Runs until the queue is fully drained.
  std::size_t run_all();

  /// Number of queued events, including cancelled ones not yet reaped
  /// (cancelled events are discarded lazily when the loop reaches them).
  std::size_t pending() const { return queue_.size(); }

  /// Number of live (not-cancelled) queued events — the true queue depth,
  /// maintained eagerly on cancel and mirrored by the event_loop_pending
  /// gauge.
  std::size_t pending_live() const {
    return static_cast<std::size_t>(pending_live_.value());
  }

  bool empty() const { return queue_.empty(); }

  uint64_t events_fired() const { return events_fired_; }
  uint64_t timers_scheduled() const { return timers_scheduled_; }
  uint64_t timers_cancelled() const { return timers_cancelled_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<detail::CancelState> state;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  bool fire_next(SimTime deadline);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  metrics::Counter events_fired_;
  metrics::Counter timers_scheduled_;
  metrics::Counter timers_cancelled_;
  metrics::Gauge pending_live_;
  metrics::HistogramMetric schedule_latency_us_;
};

}  // namespace dnscup::net

// Single-threaded discrete-event loop.  Events fire in (time, insertion
// order) so runs are fully deterministic; this is the clock that drives
// every simulation, test and bench in the repository.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "net/time.h"

namespace dnscup::net {

class EventLoop;

/// Cancellation handle for a scheduled event.  Cheap to copy; cancel() is
/// idempotent and safe after the event fired.
class TimerHandle {
 public:
  TimerHandle() = default;

  void cancel();
  bool active() const;

 private:
  friend class EventLoop;
  explicit TimerHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class EventLoop : public Clock {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const override { return now_; }

  /// Schedules `fn` to run at now() + delay (delay < 0 is clamped to 0).
  TimerHandle schedule(Duration delay, std::function<void()> fn);

  /// Schedules at an absolute time (clamped to now()).
  TimerHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Runs events until the queue empties or `deadline` passes; returns the
  /// number of events fired.  The clock ends at min(deadline, last event)
  /// — or exactly deadline if any event fired at/after it.
  std::size_t run_until(SimTime deadline);

  /// Runs for a relative duration.
  std::size_t run_for(Duration duration) { return run_until(now_ + duration); }

  /// Runs until the queue is fully drained.
  std::size_t run_all();

  /// Number of queued events, including cancelled ones not yet reaped
  /// (cancelled events are discarded lazily when the loop reaches them).
  std::size_t pending() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  bool fire_next(SimTime deadline);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace dnscup::net

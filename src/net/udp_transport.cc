#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "util/assert.h"

namespace dnscup::net {

namespace {
constexpr uint32_t kLoopbackIp = 0x7F000001;  // 127.0.0.1
}

util::Result<std::unique_ptr<UdpTransport>> UdpTransport::bind(
    uint16_t port, metrics::MetricsRegistry* metrics) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return util::make_error(util::ErrorCode::kIo,
                            std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(kLoopbackIp);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    return util::make_error(util::ErrorCode::kIo,
                            std::string("bind: ") + std::strerror(err));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    ::close(fd);
    return util::make_error(util::ErrorCode::kIo,
                            std::string("getsockname: ") + std::strerror(err));
  }
  // A short receive timeout lets the receiver thread notice shutdown.
  timeval tv{};
  tv.tv_usec = 50 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

  Endpoint local{kLoopbackIp, ntohs(addr.sin_port)};
  return std::unique_ptr<UdpTransport>(new UdpTransport(fd, local, metrics));
}

UdpTransport::UdpTransport(int fd, Endpoint local,
                           metrics::MetricsRegistry* metrics)
    : fd_(fd), local_(local) {
  // Registration happens before the receiver thread starts, so the
  // (single-threaded) registry is never touched concurrently.
  stats_.register_in(metrics::resolve(metrics), local_.to_string());
  receiver_ = std::thread([this] { receive_loop(); });
}

TrafficStats UdpTransport::stats() const {
  std::lock_guard lock(mutex_);
  return stats_.snapshot();
}

UdpTransport::~UdpTransport() {
  stopping_.store(true);
  if (receiver_.joinable()) receiver_.join();
  ::close(fd_);
}

void UdpTransport::send(const Endpoint& to, std::span<const uint8_t> data) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(to.ip);
  addr.sin_port = htons(to.port);
  const ssize_t n =
      ::sendto(fd_, data.data(), data.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  std::lock_guard lock(mutex_);
  if (n >= 0) {
    ++stats_.packets_sent;
    stats_.bytes_sent += static_cast<uint64_t>(n);
    stats_.max_packet_bytes.set_max(static_cast<double>(data.size()));
  }
}

void UdpTransport::set_receive_handler(ReceiveHandler handler) {
  std::lock_guard lock(mutex_);
  handler_ = std::move(handler);
}

void UdpTransport::receive_loop() {
  std::array<uint8_t, 65536> buf;
  while (!stopping_.load()) {
    sockaddr_in from{};
    socklen_t from_len = sizeof from;
    const ssize_t n =
        ::recvfrom(fd_, buf.data(), buf.size(), 0,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;  // socket closed or fatal error
    }
    const Endpoint source{ntohl(from.sin_addr.s_addr), ntohs(from.sin_port)};
    ReceiveHandler handler;
    {
      std::lock_guard lock(mutex_);
      ++stats_.packets_received;
      stats_.bytes_received += static_cast<uint64_t>(n);
      handler = handler_;
    }
    if (handler) {
      handler(source, std::span<const uint8_t>(
                          buf.data(), static_cast<std::size_t>(n)));
    }
  }
}

}  // namespace dnscup::net

#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "util/assert.h"

namespace dnscup::net {

namespace {
constexpr uint32_t kLoopbackIp = 0x7F000001;  // 127.0.0.1
}

util::Result<std::unique_ptr<UdpTransport>> UdpTransport::bind(
    const Options& options) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return util::make_error(util::ErrorCode::kIo,
                            std::string("socket: ") + std::strerror(errno));
  }
  if (options.reuseport) {
#ifdef SO_REUSEPORT
    const int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      const int err = errno;
      ::close(fd);
      return util::make_error(
          util::ErrorCode::kUnsupported,
          std::string("SO_REUSEPORT: ") + std::strerror(err));
    }
#else
    ::close(fd);
    return util::make_error(util::ErrorCode::kUnsupported,
                            "SO_REUSEPORT not available on this platform");
#endif
  }
  if (options.rcvbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options.rcvbuf_bytes,
                 sizeof options.rcvbuf_bytes);
  }
  if (options.sndbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options.sndbuf_bytes,
                 sizeof options.sndbuf_bytes);
  }
#ifdef SO_RXQ_OVFL
  {
    // Ask the kernel to report receive-queue drops as ancillary data so
    // the udp_rx_overflow counter reflects real loss, not just what we
    // happened to read.
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_RXQ_OVFL, &one, sizeof one);
  }
#endif
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(kLoopbackIp);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    return util::make_error(util::ErrorCode::kIo,
                            std::string("bind: ") + std::strerror(err));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    ::close(fd);
    return util::make_error(util::ErrorCode::kIo,
                            std::string("getsockname: ") + std::strerror(err));
  }
  // A short receive timeout lets the receiver thread notice shutdown.
  timeval tv{};
  tv.tv_usec = 50 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

  Endpoint local{kLoopbackIp, ntohs(addr.sin_port)};
  return std::unique_ptr<UdpTransport>(
      new UdpTransport(fd, local, options.metrics));
}

util::Result<std::unique_ptr<UdpTransport>> UdpTransport::bind(
    uint16_t port, metrics::MetricsRegistry* metrics) {
  Options options;
  options.port = port;
  options.metrics = metrics;
  return bind(options);
}

UdpTransport::UdpTransport(int fd, Endpoint local,
                           metrics::MetricsRegistry* metrics)
    : fd_(fd), local_(local) {
  // Registration happens before the receiver thread starts, so the
  // (single-threaded) registry is never touched concurrently.
  auto& registry = metrics::resolve(metrics);
  stats_.register_in(registry, local_.to_string());
  rx_overflow_ = registry.counter("udp_rx_overflow",
                                  {{"endpoint", local_.to_string()}});
  receiver_ = std::thread([this] { receive_loop(); });
}

TrafficStats UdpTransport::stats() const { return stats_.snapshot(); }

void UdpTransport::stop_receiving() {
  stopping_.store(true);
  if (receiver_.joinable()) receiver_.join();
}

UdpTransport::~UdpTransport() {
  stop_receiving();
  ::close(fd_);
}

void UdpTransport::send(const Endpoint& to, std::span<const uint8_t> data) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(to.ip);
  addr.sin_port = htons(to.port);
  const ssize_t n =
      ::sendto(fd_, data.data(), data.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (n >= 0) {
    ++stats_.packets_sent;
    stats_.bytes_sent += static_cast<uint64_t>(n);
    stats_.max_packet_bytes.set_max(static_cast<double>(data.size()));
  }
}

void UdpTransport::set_receive_handler(ReceiveHandler handler) {
  std::lock_guard lock(handler_mutex_);
  handler_ = std::move(handler);
}

void UdpTransport::receive_loop() {
  std::array<uint8_t, 65536> buf;
  while (!stopping_.load()) {
    sockaddr_in from{};
    iovec iov{buf.data(), buf.size()};
    alignas(cmsghdr) std::array<uint8_t, 64> control;
    msghdr msg{};
    msg.msg_name = &from;
    msg.msg_namelen = sizeof from;
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = control.data();
    msg.msg_controllen = control.size();
    const ssize_t n = ::recvmsg(fd_, &msg, 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;  // socket closed or fatal error
    }
#ifdef SO_RXQ_OVFL
    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
         cmsg = CMSG_NXTHDR(&msg, cmsg)) {
      if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SO_RXQ_OVFL) {
        // The kernel reports the cumulative drop count; publish the delta.
        uint32_t dropped = 0;
        std::memcpy(&dropped, CMSG_DATA(cmsg), sizeof dropped);
        if (dropped > last_overflow_) {
          rx_overflow_ += dropped - last_overflow_;
        }
        last_overflow_ = dropped;
      }
    }
#endif
    const Endpoint source{ntohl(from.sin_addr.s_addr), ntohs(from.sin_port)};
    ++stats_.packets_received;
    stats_.bytes_received += static_cast<uint64_t>(n);
    ReceiveHandler handler;
    {
      std::lock_guard lock(handler_mutex_);
      handler = handler_;
    }
    if (handler) {
      handler(source, std::span<const uint8_t>(
                          buf.data(), static_cast<std::size_t>(n)));
    }
  }
}

}  // namespace dnscup::net

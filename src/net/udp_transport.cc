#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "util/assert.h"

namespace dnscup::net {

namespace {
/// Datagrams per sendmmsg/recvmmsg syscall.
constexpr std::size_t kBatchSlots = 64;
/// Bytes per batch receive slot — generous for this protocol, whose
/// datagrams never exceed kMaxUdpPayload; larger inbound packets are
/// dropped and counted in udp_rx_truncated.
constexpr std::size_t kRxSlotBytes = 4096;
/// EAGAIN retry budget per datagram before it is dropped as a tx error.
constexpr int kMaxEagainRetries = 8;
constexpr int kPollOutTimeoutMs = 10;

sockaddr_in make_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(ep.ip);
  addr.sin_port = htons(ep.port);
  return addr;
}
}  // namespace

util::Result<std::unique_ptr<UdpTransport>> UdpTransport::bind(
    const Options& options) {
  Endpoint local{};
  auto fd = detail::open_udp_socket(options, &local);
  if (!fd.ok()) return fd.error();
  return std::unique_ptr<UdpTransport>(
      new UdpTransport(fd.value(), local, options));
}

std::size_t UdpTransport::batch_slots() const { return kBatchSlots; }

util::Result<std::unique_ptr<UdpTransport>> UdpTransport::bind(
    uint16_t port, metrics::MetricsRegistry* metrics) {
  Options options;
  options.port = port;
  options.metrics = metrics;
  return bind(options);
}

UdpTransport::UdpTransport(int fd, Endpoint local, const Options& options)
    : fd_(fd), local_(local), pin_cpu_(options.pin_cpu) {
  // Registration happens before the receiver thread starts, so the
  // (single-threaded) registry is never touched concurrently.
  auto& registry = metrics::resolve(options.metrics);
  stats_.register_in(registry, local_.to_string(), "portable", kBatchSlots);
  const metrics::Labels ep{{"endpoint", local_.to_string()}};
  rx_overflow_ = registry.counter("udp_rx_overflow", ep);
  rx_truncated_ = registry.counter("udp_rx_truncated", ep);
  tx_eagain_ = registry.counter("udp_tx_eagain_waits", ep);
  tx_short_ = registry.counter("udp_tx_short_writes", ep);
  tx_errors_ = registry.counter("udp_tx_errors", ep);
  rx_batch_size_ = registry.histogram("udp_rx_batch_size", ep);
  tx_batch_size_ = registry.histogram("udp_tx_batch_size", ep);
  tx_flush_us_ = registry.histogram("udp_tx_flush_us", ep);
  receiver_ = std::thread([this] { receive_loop(); });
}

TrafficStats UdpTransport::stats() const { return stats_.snapshot(); }

void UdpTransport::stop_receiving() {
  stopping_.store(true);
  if (receiver_.joinable()) receiver_.join();
}

UdpTransport::~UdpTransport() {
  stop_receiving();
  ::close(fd_);
}

void UdpTransport::wait_writable() {
  pollfd p{};
  p.fd = fd_;
  p.events = POLLOUT;
  ::poll(&p, 1, kPollOutTimeoutMs);  // bounded; timeout just retries
}

void UdpTransport::count_sent(std::size_t requested, std::size_t accepted) {
  ++stats_.packets_sent;
  stats_.bytes_sent += static_cast<uint64_t>(accepted);
  stats_.max_packet_bytes.set_max(static_cast<double>(requested));
  if (accepted != requested) ++tx_short_;
}

void UdpTransport::send(const Endpoint& to, std::span<const uint8_t> data) {
  const sockaddr_in addr = make_addr(to);
  for (int attempt = 0; attempt <= kMaxEagainRetries; ++attempt) {
    const ssize_t n =
        ::sendto(fd_, data.data(), data.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    if (n >= 0) {
      count_sent(data.size(), static_cast<std::size_t>(n));
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Kernel send buffer full: wait (bounded) for room, then retry.
      ++tx_eagain_;
      wait_writable();
      continue;
    }
    ++tx_errors_;  // hard error: drop the datagram, keep serving
    return;
  }
  ++tx_errors_;  // retry budget exhausted while the buffer stayed full
}

std::size_t UdpTransport::send_batch(std::span<const TxPacket> packets) {
  if (packets.empty()) return 0;
  const auto start = std::chrono::steady_clock::now();
  std::size_t sent = 0;
#ifdef __linux__
  std::array<mmsghdr, kBatchSlots> msgs;
  std::array<iovec, kBatchSlots> iovs;
  std::array<sockaddr_in, kBatchSlots> addrs;
  std::size_t cursor = 0;
  int eagain_budget = kMaxEagainRetries;
  while (cursor < packets.size()) {
    const std::size_t n = std::min(kBatchSlots, packets.size() - cursor);
    for (std::size_t i = 0; i < n; ++i) {
      const TxPacket& p = packets[cursor + i];
      addrs[i] = make_addr(p.to);
      iovs[i] = {const_cast<uint8_t*>(p.data.data()), p.data.size()};
      msgs[i] = {};
      msgs[i].msg_hdr.msg_name = &addrs[i];
      msgs[i].msg_hdr.msg_namelen = sizeof addrs[i];
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int r = ::sendmmsg(fd_, msgs.data(), static_cast<unsigned>(n), 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) && eagain_budget-- > 0) {
        ++tx_eagain_;
        wait_writable();
        continue;
      }
      tx_errors_ += packets.size() - cursor;  // drop the rest of the batch
      break;
    }
    for (int i = 0; i < r; ++i) {
      count_sent(packets[cursor + i].data.size(), msgs[i].msg_len);
    }
    sent += static_cast<std::size_t>(r);
    cursor += static_cast<std::size_t>(r);
    // Partial acceptance (r < n) means the buffer filled mid-batch; the
    // loop re-offers the remainder, guarded by the same EAGAIN budget.
  }
#else
  for (const TxPacket& p : packets) {
    send(p.to, p.data);
    ++sent;
  }
#endif
  tx_batch_size_.add(static_cast<double>(packets.size()));
  tx_flush_us_.add(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return sent;
}

void UdpTransport::set_receive_handler(ReceiveHandler handler) {
  std::lock_guard lock(handler_mutex_);
  handler_ = std::move(handler);
}

void UdpTransport::set_batch_receive_handler(BatchReceiveHandler handler) {
  std::lock_guard lock(handler_mutex_);
  batch_handler_ = std::move(handler);
}

void UdpTransport::receive_loop() {
  pin_current_thread_to_cpu(pin_cpu_);
#ifdef __linux__
  // Batched intake: one recvmmsg drains the kernel's whole backlog (up
  // to kBatchSlots) per syscall.  MSG_WAITFORONE blocks for the first
  // datagram only — under load the syscall returns full batches, while
  // an idle socket still honours SO_RCVTIMEO so shutdown is noticed.
  struct RxSlot {
    std::array<uint8_t, kRxSlotBytes> buf;
    sockaddr_in from;
    alignas(cmsghdr) std::array<uint8_t, 64> control;
  };
  std::vector<RxSlot> slots(kBatchSlots);  // one-time setup allocation
  std::array<mmsghdr, kBatchSlots> msgs;
  std::array<iovec, kBatchSlots> iovs;
  std::vector<RxPacket> batch;
  batch.reserve(kBatchSlots);
  while (!stopping_.load()) {
    for (std::size_t i = 0; i < kBatchSlots; ++i) {
      iovs[i] = {slots[i].buf.data(), slots[i].buf.size()};
      msgs[i] = {};
      msgs[i].msg_hdr.msg_name = &slots[i].from;
      msgs[i].msg_hdr.msg_namelen = sizeof slots[i].from;
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_control = slots[i].control.data();
      msgs[i].msg_hdr.msg_controllen = slots[i].control.size();
    }
    const int r = ::recvmmsg(fd_, msgs.data(), kBatchSlots, MSG_WAITFORONE,
                             nullptr);
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;  // socket closed or fatal error
    }
    batch.clear();
    for (int i = 0; i < r; ++i) {
      const msghdr& hdr = msgs[i].msg_hdr;
#ifdef SO_RXQ_OVFL
      for (cmsghdr* cmsg = CMSG_FIRSTHDR(&hdr); cmsg != nullptr;
           cmsg = CMSG_NXTHDR(const_cast<msghdr*>(&hdr), cmsg)) {
        if (cmsg->cmsg_level == SOL_SOCKET &&
            cmsg->cmsg_type == SO_RXQ_OVFL) {
          // The kernel reports the cumulative drop count; publish the
          // delta.
          uint32_t dropped = 0;
          std::memcpy(&dropped, CMSG_DATA(cmsg), sizeof dropped);
          if (dropped > last_overflow_) {
            rx_overflow_ += dropped - last_overflow_;
          }
          last_overflow_ = dropped;
        }
      }
#endif
      if ((hdr.msg_flags & MSG_TRUNC) != 0) {
        ++rx_truncated_;  // larger than a slot: not a valid DNS datagram
        continue;
      }
      ++stats_.packets_received;
      stats_.bytes_received += msgs[i].msg_len;
      batch.push_back(RxPacket{
          Endpoint{ntohl(slots[i].from.sin_addr.s_addr),
                   ntohs(slots[i].from.sin_port)},
          std::span<const uint8_t>(slots[i].buf.data(), msgs[i].msg_len)});
    }
    if (batch.empty()) continue;
    rx_batch_size_.add(static_cast<double>(batch.size()));
    BatchReceiveHandler batch_handler;
    ReceiveHandler handler;
    {
      std::lock_guard lock(handler_mutex_);
      batch_handler = batch_handler_;
      handler = handler_;
    }
    if (batch_handler) {
      batch_handler(std::span<const RxPacket>(batch));
    } else if (handler) {
      for (const RxPacket& p : batch) handler(p.from, p.data);
    }
  }
#else
  // Portable fallback: one recvmsg per datagram.
  std::array<uint8_t, 65536> buf;
  while (!stopping_.load()) {
    sockaddr_in from{};
    iovec iov{buf.data(), buf.size()};
    alignas(cmsghdr) std::array<uint8_t, 64> control;
    msghdr msg{};
    msg.msg_name = &from;
    msg.msg_namelen = sizeof from;
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = control.data();
    msg.msg_controllen = control.size();
    const ssize_t n = ::recvmsg(fd_, &msg, 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;  // socket closed or fatal error
    }
    const Endpoint source{ntohl(from.sin_addr.s_addr), ntohs(from.sin_port)};
    ++stats_.packets_received;
    stats_.bytes_received += static_cast<uint64_t>(n);
    rx_batch_size_.add(1.0);
    BatchReceiveHandler batch_handler;
    ReceiveHandler handler;
    {
      std::lock_guard lock(handler_mutex_);
      batch_handler = batch_handler_;
      handler = handler_;
    }
    const RxPacket packet{
        source,
        std::span<const uint8_t>(buf.data(), static_cast<std::size_t>(n))};
    if (batch_handler) {
      batch_handler(std::span<const RxPacket>(&packet, 1));
    } else if (handler) {
      handler(packet.from, packet.data);
    }
  }
#endif
}

}  // namespace dnscup::net

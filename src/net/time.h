// Simulation time.  All protocol components express time as SimTime
// (microseconds since simulation start) obtained from a Clock, so the same
// code runs on the discrete-event simulator and, through a wall-clock
// adapter, on real sockets.
#pragma once

#include <cstdint>

namespace dnscup::net {

/// Microseconds since simulation start.
using SimTime = int64_t;
/// Microseconds.
using Duration = int64_t;

constexpr Duration microseconds(int64_t us) { return us; }
constexpr Duration milliseconds(int64_t ms) { return ms * 1000; }
constexpr Duration seconds(int64_t s) { return s * 1000 * 1000; }
constexpr Duration minutes(int64_t m) { return seconds(m * 60); }
constexpr Duration hours(int64_t h) { return seconds(h * 3600); }
constexpr Duration days(int64_t d) { return seconds(d * 86400); }

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / 1e6;
}
constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * 1e6);
}

/// Time source abstraction: the event loop in simulation, gettimeofday in
/// the real-socket prototype.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual SimTime now() const = 0;
};

}  // namespace dnscup::net

#include "net/sim_network.h"

#include <algorithm>

#include "util/assert.h"

namespace dnscup::net {

void SimTransport::send(const Endpoint& to, std::span<const uint8_t> data) {
  ++stats_.packets_sent;
  stats_.bytes_sent += data.size();
  stats_.max_packet_bytes = std::max(stats_.max_packet_bytes, data.size());
  network_->route(local_, to, data);
}

void SimTransport::deliver(const Endpoint& from, std::vector<uint8_t> data) {
  ++stats_.packets_received;
  stats_.bytes_received += data.size();
  if (handler_) handler_(from, data);
}

SimTransport& SimNetwork::bind(const Endpoint& endpoint) {
  auto [it, inserted] = transports_.try_emplace(endpoint, nullptr);
  DNSCUP_ASSERT(inserted && "endpoint already bound");
  it->second.reset(new SimTransport(this, endpoint));
  return *it->second;
}

void SimNetwork::set_link(const Endpoint& src, const Endpoint& dst,
                          LinkParams params) {
  link_overrides_[{src, dst}] = params;
}

void SimNetwork::partition(const Endpoint& src, const Endpoint& dst) {
  LinkParams p = link_for(src, dst);
  p.loss_probability = 1.0;
  link_overrides_[{src, dst}] = p;
}

void SimNetwork::heal(const Endpoint& src, const Endpoint& dst) {
  link_overrides_.erase({src, dst});
}

const LinkParams& SimNetwork::link_for(const Endpoint& src,
                                       const Endpoint& dst) const {
  auto it = link_overrides_.find({src, dst});
  return it == link_overrides_.end() ? default_link_ : it->second;
}

void SimNetwork::route(const Endpoint& from, const Endpoint& to,
                       std::span<const uint8_t> data) {
  max_packet_bytes_ = std::max(max_packet_bytes_, data.size());
  auto target = transports_.find(to);
  if (target == transports_.end()) {
    // No listener: the packet silently vanishes, as with real UDP.
    ++packets_dropped_;
    return;
  }
  const LinkParams& link = link_for(from, to);
  int copies = 1;
  if (rng_.chance(link.loss_probability)) copies = 0;
  if (copies == 1 && rng_.chance(link.duplicate_probability)) copies = 2;
  if (copies == 0) {
    ++packets_dropped_;
    return;
  }
  for (int i = 0; i < copies; ++i) {
    Duration delay = link.latency;
    if (link.jitter > 0) delay += rng_.uniform_int(0, link.jitter);
    // The transport object is owned by this network and outlives the loop
    // run, so capturing the raw pointer is safe.
    SimTransport* transport = target->second.get();
    loop_->schedule(delay,
                    [this, transport, from,
                     payload = std::vector<uint8_t>(data.begin(),
                                                    data.end())]() mutable {
                      ++packets_delivered_;
                      transport->deliver(from, std::move(payload));
                    });
  }
}

}  // namespace dnscup::net

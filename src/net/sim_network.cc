#include "net/sim_network.h"

#include <algorithm>

#include "util/assert.h"

namespace dnscup::net {

SimTransport::SimTransport(SimNetwork* network, Endpoint local)
    : network_(network), local_(local) {
  // The owning network's instance id disambiguates transports bound to
  // the same endpoint in different networks (common in test fixtures).
  stats_.register_in(metrics::resolve(network_->registry_),
                     network_->instance_ + "/" + local_.to_string(), "sim",
                     1);
}

void SimTransport::send(const Endpoint& to, std::span<const uint8_t> data) {
  ++stats_.packets_sent;
  stats_.bytes_sent += data.size();
  stats_.max_packet_bytes.set_max(static_cast<double>(data.size()));
  network_->route(local_, to, data);
}

void SimTransport::deliver(const Endpoint& from, std::vector<uint8_t> data) {
  ++stats_.packets_received;
  stats_.bytes_received += data.size();
  if (handler_) handler_(from, data);
}

SimNetwork::SimNetwork(EventLoop& loop, uint64_t seed,
                       metrics::MetricsRegistry* metrics)
    : loop_(&loop), rng_(seed), registry_(metrics) {
  auto& registry = metrics::resolve(metrics);
  instance_ = registry.next_instance("sim_network");
  const metrics::Labels base{{"instance", instance_}};
  auto labeled = [&](const char* reason) {
    metrics::Labels labels = base;
    labels.emplace_back("reason", reason);
    return labels;
  };
  packets_delivered_ =
      registry.counter("sim_network_packets_delivered", base);
  dropped_loss_ =
      registry.counter("sim_network_packets_dropped", labeled("loss"));
  dropped_unbound_ =
      registry.counter("sim_network_packets_dropped", labeled("unbound"));
  duplicates_ = registry.counter("sim_network_duplicates", base);
  max_packet_bytes_ = registry.gauge("sim_network_max_packet_bytes", base);
  delivery_latency_us_ =
      registry.histogram("sim_network_delivery_latency_us", base);
}

SimTransport& SimNetwork::bind(const Endpoint& endpoint) {
  auto [it, inserted] = transports_.try_emplace(endpoint, nullptr);
  DNSCUP_ASSERT(inserted && "endpoint already bound");
  it->second.reset(new SimTransport(this, endpoint));
  return *it->second;
}

void SimNetwork::set_link(const Endpoint& src, const Endpoint& dst,
                          LinkParams params) {
  link_overrides_[{src, dst}] = params;
}

void SimNetwork::partition(const Endpoint& src, const Endpoint& dst) {
  LinkParams p = link_for(src, dst);
  p.loss_probability = 1.0;
  link_overrides_[{src, dst}] = p;
}

void SimNetwork::heal(const Endpoint& src, const Endpoint& dst) {
  link_overrides_.erase({src, dst});
}

const LinkParams& SimNetwork::link_for(const Endpoint& src,
                                       const Endpoint& dst) const {
  auto it = link_overrides_.find({src, dst});
  return it == link_overrides_.end() ? default_link_ : it->second;
}

void SimNetwork::route(const Endpoint& from, const Endpoint& to,
                       std::span<const uint8_t> data) {
  max_packet_bytes_.set_max(static_cast<double>(data.size()));
  auto target = transports_.find(to);
  if (target == transports_.end()) {
    // No listener: the packet silently vanishes, as with real UDP.
    ++dropped_unbound_;
    return;
  }
  const LinkParams& link = link_for(from, to);
  int copies = 1;
  if (rng_.chance(link.loss_probability)) copies = 0;
  if (copies == 1 && rng_.chance(link.duplicate_probability)) copies = 2;
  if (copies == 0) {
    ++dropped_loss_;
    return;
  }
  if (copies == 2) ++duplicates_;
  for (int i = 0; i < copies; ++i) {
    Duration delay = link.latency;
    if (link.jitter > 0) delay += rng_.uniform_int(0, link.jitter);
    delivery_latency_us_.add(static_cast<double>(delay));
    // The transport object is owned by this network and outlives the loop
    // run, so capturing the raw pointer is safe.
    SimTransport* transport = target->second.get();
    loop_->schedule(delay,
                    [this, transport, from,
                     payload = std::vector<uint8_t>(data.begin(),
                                                    data.end())]() mutable {
                      ++packets_delivered_;
                      transport->deliver(from, std::move(payload));
                    });
  }
}

}  // namespace dnscup::net

#include "net/event_loop.h"

#include <limits>

#include "util/assert.h"

namespace dnscup::net {

void TimerHandle::cancel() {
  if (!state_ || state_->cancelled) return;
  state_->cancelled = true;
  if (state_->fired) return;  // the fire path already removed it
  state_->pending_live.add(-1.0);
  ++state_->cancelled_count;
}

bool TimerHandle::active() const { return state_ && !state_->cancelled; }

EventLoop::EventLoop(metrics::MetricsRegistry* metrics) {
  auto& registry = metrics::resolve(metrics);
  const metrics::Labels base{
      {"instance", registry.next_instance("event_loop")}};
  events_fired_ = registry.counter("event_loop_events_fired", base);
  timers_scheduled_ = registry.counter("event_loop_timers_scheduled", base);
  timers_cancelled_ = registry.counter("event_loop_timers_cancelled", base);
  pending_live_ = registry.gauge("event_loop_pending", base);
  schedule_latency_us_ =
      registry.histogram("event_loop_schedule_latency_us", base);
}

TimerHandle EventLoop::schedule(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

TimerHandle EventLoop::schedule_at(SimTime when, std::function<void()> fn) {
  DNSCUP_ASSERT(fn != nullptr);
  if (when < now_) when = now_;
  auto state = std::make_shared<detail::CancelState>();
  state->pending_live = pending_live_;
  state->cancelled_count = timers_cancelled_;
  ++timers_scheduled_;
  pending_live_.add(1.0);
  // Events fire exactly at `when`, so the fire-time latency equals the
  // scheduling delay; recording here keeps the histogram deterministic
  // even for events still queued at snapshot time.
  schedule_latency_us_.add(static_cast<double>(when - now_));
  queue_.push(Event{when, next_seq_++, std::move(fn), state});
  return TimerHandle(std::move(state));
}

bool EventLoop::fire_next(SimTime deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.state->cancelled) {
      // Lazily reaped; pending_live_ was already decremented on cancel.
      queue_.pop();
      continue;
    }
    if (top.when > deadline) return false;
    // Move the event out before firing: the callback may schedule more.
    Event ev = std::move(const_cast<Event&>(top));
    queue_.pop();
    now_ = ev.when;
    ev.state->fired = true;
    pending_live_.add(-1.0);
    ++events_fired_;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t EventLoop::run_until(SimTime deadline) {
  std::size_t fired = 0;
  while (fire_next(deadline)) ++fired;
  if (now_ < deadline) now_ = deadline;
  return fired;
}

std::size_t EventLoop::run_all() {
  // Unlike run_until, the clock ends at the last event's time rather than
  // jumping to an artificial deadline.
  std::size_t fired = 0;
  while (fire_next(std::numeric_limits<SimTime>::max())) ++fired;
  return fired;
}

}  // namespace dnscup::net

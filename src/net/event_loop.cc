#include "net/event_loop.h"

#include <limits>

#include "util/assert.h"

namespace dnscup::net {

void TimerHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool TimerHandle::active() const { return cancelled_ && !*cancelled_; }

TimerHandle EventLoop::schedule(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

TimerHandle EventLoop::schedule_at(SimTime when, std::function<void()> fn) {
  DNSCUP_ASSERT(fn != nullptr);
  if (when < now_) when = now_;
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  return TimerHandle(cancelled);
}

bool EventLoop::fire_next(SimTime deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (*top.cancelled) {
      queue_.pop();
      continue;
    }
    if (top.when > deadline) return false;
    // Move the event out before firing: the callback may schedule more.
    Event ev = std::move(const_cast<Event&>(top));
    queue_.pop();
    now_ = ev.when;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t EventLoop::run_until(SimTime deadline) {
  std::size_t fired = 0;
  while (fire_next(deadline)) ++fired;
  if (now_ < deadline) now_ = deadline;
  return fired;
}

std::size_t EventLoop::run_all() {
  // Unlike run_until, the clock ends at the last event's time rather than
  // jumping to an artificial deadline.
  std::size_t fired = 0;
  while (fire_next(std::numeric_limits<SimTime>::max())) ++fired;
  return fired;
}

}  // namespace dnscup::net

// Real-socket UDP transport.  A background thread blocks on recvmsg and
// hands datagrams to the receive handler; the handler pointer is the only
// state behind the mutex.  Traffic counters are registry-backed atomics,
// so send() is lock-free — protocol code may send from inside a receive
// callback (the DNScup authority answers queries exactly there) without
// serializing against stats reads.
//
// The sharded runtime (src/runtime) binds one such transport per worker
// with SO_REUSEPORT so the kernel spreads query flows across workers;
// everything deterministic still runs on SimNetwork.
#pragma once

#include <atomic>
#include <mutex>
#include <thread>

#include "net/transport.h"
#include "util/result.h"

namespace dnscup::net {

class UdpTransport final : public Transport {
 public:
  struct Options {
    uint16_t port = 0;       ///< 0 lets the OS pick (see local_endpoint())
    /// Join a SO_REUSEPORT group: several transports bind the same port
    /// and the kernel hashes query flows across them.  bind() fails with
    /// kUnsupported on kernels without it so callers can fall back to
    /// per-worker ports.
    bool reuseport = false;
    /// Socket buffer sizes in bytes; 0 keeps the OS default.  An honest
    /// load test needs a known rx buffer plus the overflow counter below.
    int rcvbuf_bytes = 0;
    int sndbuf_bytes = 0;
    /// Traffic counters register here (default_registry() when null),
    /// labeled with the local endpoint.
    metrics::MetricsRegistry* metrics = nullptr;
  };

  /// Binds a UDP socket on 127.0.0.1 with the given options.
  static util::Result<std::unique_ptr<UdpTransport>> bind(
      const Options& options);

  /// Binds a UDP socket on 127.0.0.1.  Port 0 lets the OS pick; the chosen
  /// port is reflected in local_endpoint().  Traffic counters register in
  /// `metrics` (default_registry() when null) labeled with the endpoint.
  static util::Result<std::unique_ptr<UdpTransport>> bind(
      uint16_t port, metrics::MetricsRegistry* metrics = nullptr);

  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  const Endpoint& local_endpoint() const override { return local_; }
  void send(const Endpoint& to, std::span<const uint8_t> data) override;
  void set_receive_handler(ReceiveHandler handler) override;

  /// Joins the receiver thread; the socket stays open for send().  Used
  /// by the runtime's drain sequence (stop intake, keep answering) and
  /// idempotent — the destructor calls it too.
  void stop_receiving();

  /// Value snapshot of the traffic counters (atomics — no lock taken).
  TrafficStats stats() const;

  /// Datagrams the kernel dropped because the socket's receive queue was
  /// full (SO_RXQ_OVFL ancillary data; stays 0 where unsupported).
  uint64_t rx_overflow() const { return rx_overflow_.value(); }

 private:
  UdpTransport(int fd, Endpoint local, metrics::MetricsRegistry* metrics);
  void receive_loop();

  int fd_;
  Endpoint local_;
  std::atomic<bool> stopping_{false};
  mutable std::mutex handler_mutex_;  // guards handler_ only
  ReceiveHandler handler_;
  TrafficInstruments stats_;
  metrics::Counter rx_overflow_;
  uint32_t last_overflow_ = 0;  ///< receiver-thread-only cumulative mark
  std::thread receiver_;
};

}  // namespace dnscup::net

// Portable datagram I/O backend (the "portable" IoBackend): a background
// thread blocks on recvmmsg/recvmsg and hands whole kernel bursts to the
// batch receive handler; sends leave via sendto/sendmmsg.  Works on every
// kernel and is the fallback every other backend degrades to.
//
// The handler pointer is the only state behind the mutex.  Traffic
// counters are registry-backed atomics, so send() is lock-free — protocol
// code may send from inside a receive callback (the DNScup authority
// answers queries exactly there) without serializing against stats reads.
//
// The sharded runtimes (src/runtime, src/cachert) bind one backend per
// worker with SO_REUSEPORT so the kernel spreads query flows across
// workers; everything deterministic still runs on SimNetwork.
#pragma once

#include <atomic>
#include <mutex>
#include <thread>

#include "net/io_backend.h"
#include "util/result.h"

namespace dnscup::net {

class UdpTransport final : public IoBackend {
 public:
  using Options = IoBackend::Options;

  /// Binds a UDP socket on 127.0.0.1 with the given options.
  static util::Result<std::unique_ptr<UdpTransport>> bind(
      const Options& options);

  /// Binds a UDP socket on 127.0.0.1.  Port 0 lets the OS pick; the chosen
  /// port is reflected in local_endpoint().  Traffic counters register in
  /// `metrics` (default_registry() when null) labeled with the endpoint.
  static util::Result<std::unique_ptr<UdpTransport>> bind(
      uint16_t port, metrics::MetricsRegistry* metrics = nullptr);

  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  // Aliases kept from before the IoBackend extraction; the packet types
  // now live at net:: scope, shared by every backend.
  using TxPacket = net::TxPacket;
  using RxPacket = net::RxPacket;

  const Endpoint& local_endpoint() const override { return local_; }
  std::string_view backend_name() const override { return "portable"; }
  std::size_t batch_slots() const override;

  /// Single-datagram send with explicit failure handling: EAGAIN waits
  /// (bounded) for POLLOUT and retries, short writes and hard errors are
  /// counted (udp_tx_short_writes / udp_tx_errors) and the datagram is
  /// dropped — UDP semantics, but observable ones.
  void send(const Endpoint& to, std::span<const uint8_t> data) override;

  /// Sends the whole batch with as few syscalls as the platform allows
  /// (sendmmsg on Linux in chunks of 64, a sendto loop elsewhere).
  /// Returns the number of datagrams handed to the kernel; the shortfall
  /// is counted in udp_tx_errors.  Batch size and flush latency feed the
  /// udp_tx_batch_size / udp_tx_flush_us histograms.
  std::size_t send_batch(std::span<const TxPacket> packets) override;

  void set_receive_handler(ReceiveHandler handler) override;

  /// Batch intake: when set, the receiver thread delivers whole kernel
  /// bursts (recvmmsg with MSG_WAITFORONE on Linux) through this handler
  /// instead of the per-packet one.  Burst sizes feed udp_rx_batch_size.
  void set_batch_receive_handler(BatchReceiveHandler handler) override;

  /// Joins the receiver thread; the socket stays open for send().  Used
  /// by the runtime's drain sequence (stop intake, keep answering) and
  /// idempotent — the destructor calls it too.
  void stop_receiving() override;

  /// Value snapshot of the traffic counters (atomics — no lock taken).
  TrafficStats stats() const override;

  /// Datagrams the kernel dropped because the socket's receive queue was
  /// full (SO_RXQ_OVFL ancillary data; stays 0 where unsupported).
  uint64_t rx_overflow() const { return rx_overflow_.value(); }

  /// Sends that hit EAGAIN and waited for POLLOUT.
  uint64_t tx_eagain_waits() const { return tx_eagain_.value(); }
  /// Sends where the kernel accepted fewer bytes than the datagram.
  uint64_t tx_short_writes() const { return tx_short_.value(); }
  /// Datagrams dropped on a hard send error (or an exhausted EAGAIN
  /// retry budget).
  uint64_t tx_errors() const { return tx_errors_.value(); }
  /// Inbound datagrams larger than a receive slot, dropped (Linux batch
  /// path only; the fallback path's 64 KiB buffer never truncates).
  uint64_t rx_truncated() const { return rx_truncated_.value(); }

 private:
  UdpTransport(int fd, Endpoint local, const Options& options);
  void receive_loop();
  /// Blocks (bounded) until the socket is writable after EAGAIN.
  void wait_writable();
  void count_sent(std::size_t requested, std::size_t accepted);

  int fd_;
  Endpoint local_;
  int pin_cpu_ = -1;
  std::atomic<bool> stopping_{false};
  mutable std::mutex handler_mutex_;  // guards handler_ / batch_handler_
  ReceiveHandler handler_;
  BatchReceiveHandler batch_handler_;
  TrafficInstruments stats_;
  metrics::Counter rx_overflow_;
  metrics::Counter rx_truncated_;
  metrics::Counter tx_eagain_;
  metrics::Counter tx_short_;
  metrics::Counter tx_errors_;
  metrics::HistogramMetric rx_batch_size_;
  metrics::HistogramMetric tx_batch_size_;
  metrics::HistogramMetric tx_flush_us_;
  uint32_t last_overflow_ = 0;  ///< receiver-thread-only cumulative mark
  std::thread receiver_;
};

}  // namespace dnscup::net

// Real-socket UDP transport (loopback prototype).  A background thread
// blocks on recvfrom and hands datagrams to the receive handler under a
// mutex, so a single protocol object is never entered concurrently.
// Used by the prototype example and socket smoke tests; everything else
// runs on SimNetwork.
#pragma once

#include <atomic>
#include <mutex>
#include <thread>

#include "net/transport.h"
#include "util/result.h"

namespace dnscup::net {

class UdpTransport final : public Transport {
 public:
  /// Binds a UDP socket on 127.0.0.1.  Port 0 lets the OS pick; the chosen
  /// port is reflected in local_endpoint().  Traffic counters register in
  /// `metrics` (default_registry() when null) labeled with the endpoint.
  static util::Result<std::unique_ptr<UdpTransport>> bind(
      uint16_t port, metrics::MetricsRegistry* metrics = nullptr);

  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  const Endpoint& local_endpoint() const override { return local_; }
  void send(const Endpoint& to, std::span<const uint8_t> data) override;
  void set_receive_handler(ReceiveHandler handler) override;

  /// Value snapshot of the traffic counters (taken under the mutex).
  TrafficStats stats() const;

 private:
  UdpTransport(int fd, Endpoint local, metrics::MetricsRegistry* metrics);
  void receive_loop();

  int fd_;
  Endpoint local_;
  std::atomic<bool> stopping_{false};
  mutable std::mutex mutex_;  // guards handler_ and stats_
  ReceiveHandler handler_;
  TrafficInstruments stats_;
  std::thread receiver_;
};

}  // namespace dnscup::net

// Deterministic simulated UDP network over the discrete-event loop.
//
// Replaces the paper's physical testbed (Figure 7: six Pentium III hosts on
// 100 Mbps Ethernet).  Each SimTransport is bound to an Endpoint; the
// network delivers datagrams after a configurable latency with optional
// loss, duplication and jitter — fault injection the real testbed could not
// do reproducibly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/endpoint.h"
#include "net/event_loop.h"
#include "net/transport.h"
#include "util/rng.h"

namespace dnscup::net {

/// Per-path link behaviour.
struct LinkParams {
  Duration latency = milliseconds(1);
  Duration jitter = 0;          ///< uniform in [0, jitter] added to latency
  double loss_probability = 0.0;
  double duplicate_probability = 0.0;
};

class SimNetwork;

class SimTransport final : public Transport {
 public:
  const Endpoint& local_endpoint() const override { return local_; }
  void send(const Endpoint& to, std::span<const uint8_t> data) override;
  void set_receive_handler(ReceiveHandler handler) override {
    handler_ = std::move(handler);
  }

  /// Value snapshot of the registry-backed traffic counters.
  TrafficStats stats() const { return stats_.snapshot(); }

 private:
  friend class SimNetwork;
  SimTransport(SimNetwork* network, Endpoint local);

  void deliver(const Endpoint& from, std::vector<uint8_t> data);

  SimNetwork* network_;
  Endpoint local_;
  ReceiveHandler handler_;
  TrafficInstruments stats_;
};

class SimNetwork {
 public:
  /// `metrics` receives the sim_network_* and per-transport transport_*
  /// instruments (default_registry() when null).
  SimNetwork(EventLoop& loop, uint64_t seed,
             metrics::MetricsRegistry* metrics = nullptr);

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Binds a transport to the endpoint.  Each endpoint binds at most once;
  /// the returned transport lives as long as the network.
  SimTransport& bind(const Endpoint& endpoint);

  /// Default link behaviour for all paths without an override.
  void set_default_link(LinkParams params) { default_link_ = params; }

  /// Overrides behaviour for the directed path src -> dst.
  void set_link(const Endpoint& src, const Endpoint& dst, LinkParams params);

  /// Drops every packet on the directed path (a partition in one
  /// direction); set both directions for a full partition.
  void partition(const Endpoint& src, const Endpoint& dst);
  void heal(const Endpoint& src, const Endpoint& dst);

  /// Network-wide counters (delivered + dropped across all paths).
  uint64_t packets_delivered() const { return packets_delivered_; }
  /// Total drops: random loss plus packets sent to unbound endpoints.
  uint64_t packets_dropped() const {
    return dropped_loss_.value() + dropped_unbound_.value();
  }
  uint64_t packets_duplicated() const { return duplicates_; }
  std::size_t max_packet_bytes() const {
    return static_cast<std::size_t>(max_packet_bytes_.value());
  }

  EventLoop& loop() { return *loop_; }

 private:
  friend class SimTransport;
  void route(const Endpoint& from, const Endpoint& to,
             std::span<const uint8_t> data);
  const LinkParams& link_for(const Endpoint& src, const Endpoint& dst) const;

  EventLoop* loop_;
  util::Rng rng_;
  metrics::MetricsRegistry* registry_;
  std::string instance_;
  LinkParams default_link_;
  std::map<std::pair<Endpoint, Endpoint>, LinkParams> link_overrides_;
  std::map<Endpoint, std::unique_ptr<SimTransport>> transports_;
  metrics::Counter packets_delivered_;
  metrics::Counter dropped_loss_;
  metrics::Counter dropped_unbound_;
  metrics::Counter duplicates_;
  metrics::Gauge max_packet_bytes_;
  metrics::HistogramMetric delivery_latency_us_;
};

}  // namespace dnscup::net

// Deterministic simulated UDP network over the discrete-event loop.
//
// Replaces the paper's physical testbed (Figure 7: six Pentium III hosts on
// 100 Mbps Ethernet).  Each SimTransport is bound to an Endpoint; the
// network delivers datagrams after a configurable latency with optional
// loss, duplication and jitter — fault injection the real testbed could not
// do reproducibly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/endpoint.h"
#include "net/event_loop.h"
#include "net/transport.h"
#include "util/rng.h"

namespace dnscup::net {

/// Per-path link behaviour.
struct LinkParams {
  Duration latency = milliseconds(1);
  Duration jitter = 0;          ///< uniform in [0, jitter] added to latency
  double loss_probability = 0.0;
  double duplicate_probability = 0.0;
};

class SimNetwork;

class SimTransport final : public Transport {
 public:
  const Endpoint& local_endpoint() const override { return local_; }
  void send(const Endpoint& to, std::span<const uint8_t> data) override;
  void set_receive_handler(ReceiveHandler handler) override {
    handler_ = std::move(handler);
  }

  const TrafficStats& stats() const { return stats_; }

 private:
  friend class SimNetwork;
  SimTransport(SimNetwork* network, Endpoint local)
      : network_(network), local_(local) {}

  void deliver(const Endpoint& from, std::vector<uint8_t> data);

  SimNetwork* network_;
  Endpoint local_;
  ReceiveHandler handler_;
  TrafficStats stats_;
};

class SimNetwork {
 public:
  SimNetwork(EventLoop& loop, uint64_t seed)
      : loop_(&loop), rng_(seed) {}

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Binds a transport to the endpoint.  Each endpoint binds at most once;
  /// the returned transport lives as long as the network.
  SimTransport& bind(const Endpoint& endpoint);

  /// Default link behaviour for all paths without an override.
  void set_default_link(LinkParams params) { default_link_ = params; }

  /// Overrides behaviour for the directed path src -> dst.
  void set_link(const Endpoint& src, const Endpoint& dst, LinkParams params);

  /// Drops every packet on the directed path (a partition in one
  /// direction); set both directions for a full partition.
  void partition(const Endpoint& src, const Endpoint& dst);
  void heal(const Endpoint& src, const Endpoint& dst);

  /// Network-wide counters (delivered + dropped across all paths).
  uint64_t packets_delivered() const { return packets_delivered_; }
  uint64_t packets_dropped() const { return packets_dropped_; }
  std::size_t max_packet_bytes() const { return max_packet_bytes_; }

  EventLoop& loop() { return *loop_; }

 private:
  friend class SimTransport;
  void route(const Endpoint& from, const Endpoint& to,
             std::span<const uint8_t> data);
  const LinkParams& link_for(const Endpoint& src, const Endpoint& dst) const;

  EventLoop* loop_;
  util::Rng rng_;
  LinkParams default_link_;
  std::map<std::pair<Endpoint, Endpoint>, LinkParams> link_overrides_;
  std::map<Endpoint, std::unique_ptr<SimTransport>> transports_;
  uint64_t packets_delivered_ = 0;
  uint64_t packets_dropped_ = 0;
  std::size_t max_packet_bytes_ = 0;
};

}  // namespace dnscup::net

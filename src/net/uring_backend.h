// io_uring datagram backend (the "uring" IoBackend).
//
// Receive path: one multishot IORING_OP_RECVMSG stays armed on the
// socket; the kernel picks destination buffers from a registered
// provided-buffer group whose slots are sized exactly like the
// runtime's BufferPool slots (2 KiB), writes each datagram straight
// into the slab and posts one CQE per datagram.  The receiver thread
// drains the CQ in bursts, hands the whole burst to the batch handler
// as spans into the registered slab (the handler's copy into its
// worker's pool slot is the only copy on the path, same as the portable
// backend — but the kernel side needs no per-datagram syscall and no
// buffer repointing), then recycles the buffers with coalesced
// IORING_OP_PROVIDE_BUFFERS submissions (consecutive slot runs collapse
// into one SQE).  The classic provided-buffer group is used instead of
// the newer IORING_REGISTER_PBUF_RING ring: kernels exist (observed in
// this project's CI image) that accept the ring registration yet never
// serve buffers from it — every buffer-select receive fails ENOBUFS —
// while the classic group works everywhere multishot recvmsg does.
// Waits are bounded (50 ms, IORING_ENTER_EXT_ARG) so shutdown is
// prompt.
//
// Send path: a second, mutex-guarded ring.  send_batch() fills one
// IORING_OP_SENDMSG SQE per datagram and issues a single
// submit-and-wait io_uring_enter for the whole batch — the datagram
// spans are only borrowed until send_batch returns, so the call waits
// for the kernel's completions (UDP sendmsg completes inline; the wait
// is the same syscall that submits).  EAGAIN retries are bounded and
// counted exactly like the portable backend's.
//
// Everything is raw syscalls (io_uring_setup/enter/register) against
// <linux/io_uring.h>; the build gates this file on that header
// (DNSCUP_HAVE_IO_URING) and bind() degrades to kUnsupported — which
// the factory turns into a portable fallback — when the running kernel
// refuses the ring, the buffer provisioning, or multishot recvmsg.
#pragma once

#ifdef DNSCUP_HAVE_IO_URING

#include <linux/io_uring.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "net/io_backend.h"
#include "util/result.h"

namespace dnscup::net {

class UringBackend final : public IoBackend {
 public:
  /// Datagram capacity of one ring submission (tx) / one armed multishot
  /// round (rx buffers are recycled continuously).
  static constexpr std::size_t kTxSlots = 64;
  /// Provided rx buffers registered with the kernel (power of two).
  static constexpr std::size_t kRxBufCount = 256;
  /// Bytes per rx buffer — the runtime BufferPool's slot geometry.
  static constexpr std::size_t kRxSlotBytes = 2048;

  static util::Result<std::unique_ptr<UringBackend>> bind(
      const Options& options);

  ~UringBackend() override;

  UringBackend(const UringBackend&) = delete;
  UringBackend& operator=(const UringBackend&) = delete;

  const Endpoint& local_endpoint() const override { return local_; }
  std::string_view backend_name() const override { return "uring"; }
  std::size_t batch_slots() const override { return kTxSlots; }

  void send(const Endpoint& to, std::span<const uint8_t> data) override;
  std::size_t send_batch(std::span<const TxPacket> packets) override;
  void set_receive_handler(ReceiveHandler handler) override;
  void set_batch_receive_handler(BatchReceiveHandler handler) override;
  void stop_receiving() override;
  TrafficStats stats() const override;

  /// Datagrams the kernel dropped at the socket receive queue
  /// (SO_RXQ_OVFL deltas, as on the portable backend).
  uint64_t rx_overflow() const { return rx_overflow_.value(); }
  /// Datagrams truncated into a 2 KiB rx buffer and dropped.
  uint64_t rx_truncated() const { return rx_truncated_.value(); }
  /// Sends that hit EAGAIN and waited for POLLOUT.
  uint64_t tx_eagain_waits() const { return tx_eagain_.value(); }
  /// Datagrams dropped on a hard send error or exhausted retry budget.
  uint64_t tx_errors() const { return tx_errors_.value(); }

 private:
  /// One io_uring instance: fd + mapped SQ/CQ rings (single-mmap
  /// layout) + SQE array.  Plain struct; UringBackend drives it.
  struct Ring {
    int fd = -1;
    void* ring_mmap = nullptr;
    std::size_t ring_bytes = 0;
    io_uring_sqe* sqes = nullptr;
    std::size_t sqe_bytes = 0;
    unsigned* sq_head = nullptr;
    unsigned* sq_tail = nullptr;
    unsigned sq_mask = 0;
    unsigned* sq_array = nullptr;
    unsigned* cq_head = nullptr;
    unsigned* cq_tail = nullptr;
    unsigned cq_mask = 0;
    io_uring_cqe* cqes = nullptr;

    util::Status init(unsigned sq_entries, unsigned cq_entries);
    void close_ring();
    io_uring_sqe* get_sqe();
    /// io_uring_enter wrapper; returns -errno on failure.
    int enter(unsigned to_submit, unsigned min_complete, unsigned flags,
              const void* arg, std::size_t argsz);
  };

  UringBackend(int fd, Endpoint local, const Options& options);
  util::Status setup(const Options& options);
  void teardown();
  void receive_loop();
  void arm_multishot();
  /// Queues a consumed rx buffer for return to the kernel (submission
  /// deferred to publish_rx_buffers()).
  void recycle_rx_buffer(unsigned bid);
  /// Hands every queued buffer back to the kernel's buffer group:
  /// sorts the pending bids, coalesces consecutive runs into single
  /// IORING_OP_PROVIDE_BUFFERS SQEs, and submits them.
  void publish_rx_buffers();
  /// Fills one PROVIDE_BUFFERS SQE covering `count` contiguous slots
  /// starting at `first_bid`.
  void fill_provide_sqe(io_uring_sqe* sqe, unsigned first_bid,
                        unsigned count);
  void count_sent(std::size_t requested, std::size_t accepted);
  /// Blocks (bounded) until the socket is writable after EAGAIN.
  void wait_writable();
  /// Submits `count` prepared tx SQEs and waits for all completions;
  /// returns datagrams the kernel accepted.  Caller holds tx_mutex_.
  std::size_t submit_tx_batch(std::span<const TxPacket> packets);

  int fd_;
  Endpoint local_;
  int pin_cpu_ = -1;

  Ring rx_ring_;
  Ring tx_ring_;

  // Provided-buffer group: the backing slab the kernel writes datagrams
  // into (bid == slot index) plus the receiver-thread-local list of
  // consumed bids awaiting re-provision.
  std::vector<uint8_t> rx_slab_;
  std::vector<unsigned> recycle_bids_;

  /// msghdr template for the multishot recvmsg: reserves name + control
  /// space in every selected buffer.  Must outlive the armed SQE.
  msghdr rx_msghdr_{};
  static constexpr std::size_t kRxNameSpace = sizeof(sockaddr_in);
  static constexpr std::size_t kRxControlSpace = 64;

  std::atomic<bool> stopping_{false};
  mutable std::mutex handler_mutex_;  // guards handler_ / batch_handler_
  ReceiveHandler handler_;
  BatchReceiveHandler batch_handler_;

  std::mutex tx_mutex_;  ///< serializes tx-ring submission state
  std::vector<sockaddr_in> tx_addrs_;
  std::vector<iovec> tx_iovs_;
  std::vector<msghdr> tx_msgs_;

  TrafficInstruments stats_;
  metrics::Counter rx_overflow_;
  metrics::Counter rx_truncated_;
  metrics::Counter tx_eagain_;
  metrics::Counter tx_errors_;
  metrics::HistogramMetric rx_batch_size_;
  metrics::HistogramMetric tx_batch_size_;
  metrics::HistogramMetric tx_flush_us_;
  uint32_t last_overflow_ = 0;  ///< receiver-thread-only cumulative mark
  std::thread receiver_;
};

}  // namespace dnscup::net

#endif  // DNSCUP_HAVE_IO_URING

// Pluggable datagram I/O backends.
//
// IoBackend is the seam between protocol code and the kernel's datagram
// machinery.  A backend owns one bound UDP socket plus whatever syscall
// strategy it serves it with:
//
//   * "portable" (UdpTransport) — blocking recvmmsg/sendmmsg on a
//     receiver thread; works on every kernel and is the fallback,
//   * "uring" (UringBackend)   — io_uring multishot receive into a
//     registered provided-buffer ring, batched submit-and-wait sends;
//     compiled when <linux/io_uring.h> is present and engaged only when
//     the running kernel accepts the ring setup.
//
// Every backend delivers the same contract: kernel bursts arrive as one
// BatchReceiveHandler call on the backend's receiver thread (spans valid
// only inside the handler — callers copy into their BufferPool slots),
// and send_batch() hands a whole response batch to the kernel in as few
// syscalls as the strategy allows.  Readiness is the backend's own
// affair: each runs a dedicated receiver thread and integrates with the
// worker's EventLoop through the wake signal the handler raises, so the
// worker loop never blocks on socket state.
//
// Selection: bind_io_backend() resolves kDefault through the
// DNSCUP_IO_BACKEND environment variable (portable when unset), tries
// the requested backend, and falls back to portable — with a logged
// warning, never an error — when the kernel or build lacks io_uring.
// Callers that must know what actually engaged read backend_name().
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "net/transport.h"
#include "util/result.h"

namespace dnscup::net {

/// One datagram in an outgoing batch; `data` is borrowed until the
/// send_batch call returns (backends that complete sends asynchronously
/// must wait for kernel completion before returning).
struct TxPacket {
  Endpoint to;
  std::span<const uint8_t> data;
};

/// One datagram in an incoming batch; `data` points into the backend's
/// receive buffers and is valid only inside the handler.
struct RxPacket {
  Endpoint from;
  std::span<const uint8_t> data;
};

enum class IoBackendKind {
  kDefault,   ///< resolve via $DNSCUP_IO_BACKEND, else portable
  kPortable,  ///< recvmmsg/sendmmsg receiver thread (UdpTransport)
  kUring,     ///< io_uring multishot receive + batched submits
};

/// "portable" / "uring" / "default"; nullopt on anything else.
std::optional<IoBackendKind> parse_io_backend_kind(std::string_view text);
const char* to_string(IoBackendKind kind);

/// kDefault -> $DNSCUP_IO_BACKEND (unset or unparsable -> portable);
/// explicit kinds pass through.
IoBackendKind resolve_io_backend_kind(IoBackendKind kind);

class IoBackend : public Transport {
 public:
  struct Options {
    uint16_t port = 0;  ///< 0 lets the OS pick (see local_endpoint())
    /// Join a SO_REUSEPORT group: several backends bind the same port
    /// and the kernel hashes query flows across them.  Binding fails
    /// with kUnsupported on kernels without it so callers can fall back
    /// to per-worker ports.
    bool reuseport = false;
    /// Socket buffer sizes in bytes; 0 keeps the OS default.
    int rcvbuf_bytes = 0;
    int sndbuf_bytes = 0;
    /// Traffic counters register here (default_registry() when null),
    /// labeled with the local endpoint and the backend name.
    metrics::MetricsRegistry* metrics = nullptr;
    /// Pin the backend's receiver thread to this CPU; -1 leaves it to
    /// the scheduler.
    int pin_cpu = -1;
  };

  /// Invoked on the receiver thread with every datagram the kernel had
  /// queued (one syscall's worth).  Replaces the per-packet handler.
  using BatchReceiveHandler = std::function<void(std::span<const RxPacket>)>;

  /// Stable identifier of the engaged strategy ("portable", "uring",
  /// "sim"); metrics carry it as the `backend` label.
  virtual std::string_view backend_name() const = 0;

  /// Datagrams one receive/send syscall (or ring submission) can carry.
  virtual std::size_t batch_slots() const = 0;

  /// Sends the whole batch with as few syscalls as the strategy allows.
  /// Returns the number of datagrams the kernel accepted; the shortfall
  /// is counted in the backend's tx error metric.
  virtual std::size_t send_batch(std::span<const TxPacket> packets) = 0;

  /// Batch intake: when set, the receiver thread delivers whole kernel
  /// bursts through this handler instead of the per-packet one.
  virtual void set_batch_receive_handler(BatchReceiveHandler handler) = 0;

  /// Joins the receiver thread; the socket stays open for send().  Used
  /// by the runtimes' drain sequence (stop intake, keep answering) and
  /// idempotent — destructors call it too.
  virtual void stop_receiving() = 0;

  /// Value snapshot of the traffic counters (atomics — no lock taken).
  virtual TrafficStats stats() const = 0;
};

/// Binds a backend of the resolved kind on 127.0.0.1.  A uring request
/// degrades to portable (with a logged warning) when io_uring is not
/// compiled in or the kernel refuses the ring; every other bind error is
/// returned as-is.
util::Result<std::unique_ptr<IoBackend>> bind_io_backend(
    IoBackendKind kind, const IoBackend::Options& options);

/// True when the io_uring backend was compiled in (the build saw
/// <linux/io_uring.h>).
bool uring_compiled();

/// ok_status() when a uring backend can actually serve on this kernel
/// (probed by setting up and tearing down a real ring); otherwise the
/// reason — callers print it as an explicit SKIP.
util::Status uring_runtime_probe();

/// Pins the calling thread to `cpu` (no-op, returning false, when
/// unsupported or cpu < 0).
bool pin_current_thread_to_cpu(int cpu);

namespace detail {
/// Opens + binds the loopback UDP socket every backend serves: applies
/// reuseport/buffer options, SO_RXQ_OVFL drop accounting and the 50 ms
/// receive timeout that bounds shutdown latency.  Returns the fd and
/// fills `local` with the bound endpoint.
util::Result<int> open_udp_socket(const IoBackend::Options& options,
                                  Endpoint* local);
}  // namespace detail

}  // namespace dnscup::net

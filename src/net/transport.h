// Datagram transport abstraction.  Protocol components (servers, resolvers,
// the DNScup notifier) talk to a Transport and never know whether packets
// travel through the deterministic simulator (SimNetwork) or real UDP
// sockets (UdpTransport) — the paper's prototype/simulation duality.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>

#include "net/endpoint.h"
#include "net/time.h"
#include "util/metrics.h"

namespace dnscup::net {

class Transport {
 public:
  /// Invoked for every datagram delivered to this transport.
  using ReceiveHandler =
      std::function<void(const Endpoint& from, std::span<const uint8_t> data)>;

  virtual ~Transport() = default;

  virtual const Endpoint& local_endpoint() const = 0;

  /// Sends one datagram.  Fire-and-forget: loss is a property of the
  /// network, not an error the sender sees (UDP semantics).
  virtual void send(const Endpoint& to, std::span<const uint8_t> data) = 0;

  /// Installs the receive callback (replacing any previous one).
  virtual void set_receive_handler(ReceiveHandler handler) = 0;
};

/// Per-transport traffic counters; the prototype bench uses max_packet_bytes
/// to verify the paper's "all message sizes are far below 512 bytes" claim.
struct TrafficStats {
  uint64_t packets_sent = 0;
  uint64_t packets_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  std::size_t max_packet_bytes = 0;
};

/// Registry-backed counterpart of TrafficStats shared by all transports:
/// transport_packets{dir=tx|rx} / transport_bytes{dir=tx|rx} counters, a
/// transport_max_packet_bytes high-water gauge and a transport_batch_slots
/// gauge, all labeled with the local endpoint and the I/O backend that
/// serves it ("portable", "uring", "sim") — a metrics snapshot names the
/// engaged backend and its batch geometry, so BENCH files and scrapes are
/// self-describing.  Detached (registry-invisible) until register_in is
/// called.  Counter/Gauge cells are relaxed atomics, so a backend may bump
/// the rx side from its receiver thread while protocol code bumps tx — no
/// lock is required around increments or snapshot().
struct TrafficInstruments {
  metrics::Counter packets_sent;
  metrics::Counter packets_received;
  metrics::Counter bytes_sent;
  metrics::Counter bytes_received;
  metrics::Gauge max_packet_bytes;
  metrics::Gauge batch_slots;

  void register_in(metrics::MetricsRegistry& registry,
                   const std::string& endpoint, const std::string& backend,
                   std::size_t batch) {
    auto labeled = [&](const char* dir) {
      return metrics::Labels{
          {"backend", backend}, {"dir", dir}, {"endpoint", endpoint}};
    };
    packets_sent = registry.counter("transport_packets", labeled("tx"));
    packets_received = registry.counter("transport_packets", labeled("rx"));
    bytes_sent = registry.counter("transport_bytes", labeled("tx"));
    bytes_received = registry.counter("transport_bytes", labeled("rx"));
    max_packet_bytes = registry.gauge(
        "transport_max_packet_bytes",
        {{"backend", backend}, {"endpoint", endpoint}});
    batch_slots = registry.gauge(
        "transport_batch_slots",
        {{"backend", backend}, {"endpoint", endpoint}});
    batch_slots.set(static_cast<double>(batch));
  }

  TrafficStats snapshot() const {
    return TrafficStats{
        .packets_sent = packets_sent,
        .packets_received = packets_received,
        .bytes_sent = bytes_sent,
        .bytes_received = bytes_received,
        .max_packet_bytes =
            static_cast<std::size_t>(max_packet_bytes.value()),
    };
  }
};

}  // namespace dnscup::net

// Datagram transport abstraction.  Protocol components (servers, resolvers,
// the DNScup notifier) talk to a Transport and never know whether packets
// travel through the deterministic simulator (SimNetwork) or real UDP
// sockets (UdpTransport) — the paper's prototype/simulation duality.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "net/endpoint.h"
#include "net/time.h"

namespace dnscup::net {

class Transport {
 public:
  /// Invoked for every datagram delivered to this transport.
  using ReceiveHandler =
      std::function<void(const Endpoint& from, std::span<const uint8_t> data)>;

  virtual ~Transport() = default;

  virtual const Endpoint& local_endpoint() const = 0;

  /// Sends one datagram.  Fire-and-forget: loss is a property of the
  /// network, not an error the sender sees (UDP semantics).
  virtual void send(const Endpoint& to, std::span<const uint8_t> data) = 0;

  /// Installs the receive callback (replacing any previous one).
  virtual void set_receive_handler(ReceiveHandler handler) = 0;
};

/// Per-transport traffic counters; the prototype bench uses max_packet_bytes
/// to verify the paper's "all message sizes are far below 512 bytes" claim.
struct TrafficStats {
  uint64_t packets_sent = 0;
  uint64_t packets_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  std::size_t max_packet_bytes = 0;
};

}  // namespace dnscup::net

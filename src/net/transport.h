// Datagram transport abstraction.  Protocol components (servers, resolvers,
// the DNScup notifier) talk to a Transport and never know whether packets
// travel through the deterministic simulator (SimNetwork) or real UDP
// sockets (UdpTransport) — the paper's prototype/simulation duality.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>

#include "net/endpoint.h"
#include "net/time.h"
#include "util/metrics.h"

namespace dnscup::net {

class Transport {
 public:
  /// Invoked for every datagram delivered to this transport.
  using ReceiveHandler =
      std::function<void(const Endpoint& from, std::span<const uint8_t> data)>;

  virtual ~Transport() = default;

  virtual const Endpoint& local_endpoint() const = 0;

  /// Sends one datagram.  Fire-and-forget: loss is a property of the
  /// network, not an error the sender sees (UDP semantics).
  virtual void send(const Endpoint& to, std::span<const uint8_t> data) = 0;

  /// Installs the receive callback (replacing any previous one).
  virtual void set_receive_handler(ReceiveHandler handler) = 0;
};

/// Per-transport traffic counters; the prototype bench uses max_packet_bytes
/// to verify the paper's "all message sizes are far below 512 bytes" claim.
struct TrafficStats {
  uint64_t packets_sent = 0;
  uint64_t packets_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  std::size_t max_packet_bytes = 0;
};

/// Registry-backed counterpart of TrafficStats shared by all transports:
/// transport_packets{dir=tx|rx} / transport_bytes{dir=tx|rx} counters, a
/// transport_max_packet_bytes high-water gauge and a transport_batch_slots
/// gauge, all labeled with the local endpoint and the I/O backend that
/// serves it ("portable", "uring", "sim") — a metrics snapshot names the
/// engaged backend and its batch geometry, so BENCH files and scrapes are
/// self-describing.  Detached (registry-invisible) until register_in is
/// called.  Counter/Gauge cells are relaxed atomics, so a backend may bump
/// the rx side from its receiver thread while protocol code bumps tx — no
/// lock is required around increments or snapshot().
struct TrafficInstruments {
  metrics::Counter packets_sent;
  metrics::Counter packets_received;
  metrics::Counter bytes_sent;
  metrics::Counter bytes_received;
  metrics::Gauge max_packet_bytes;
  metrics::Gauge batch_slots;

  void register_in(metrics::MetricsRegistry& registry,
                   const std::string& endpoint, const std::string& backend,
                   std::size_t batch) {
    auto labeled = [&](const char* dir) {
      return metrics::Labels{
          {"backend", backend}, {"dir", dir}, {"endpoint", endpoint}};
    };
    packets_sent = registry.counter("transport_packets", labeled("tx"));
    packets_received = registry.counter("transport_packets", labeled("rx"));
    bytes_sent = registry.counter("transport_bytes", labeled("tx"));
    bytes_received = registry.counter("transport_bytes", labeled("rx"));
    max_packet_bytes = registry.gauge(
        "transport_max_packet_bytes",
        {{"backend", backend}, {"endpoint", endpoint}});
    batch_slots = registry.gauge(
        "transport_batch_slots",
        {{"backend", backend}, {"endpoint", endpoint}});
    batch_slots.set(static_cast<double>(batch));
  }

  TrafficStats snapshot() const {
    return TrafficStats{
        .packets_sent = packets_sent,
        .packets_received = packets_received,
        .bytes_sent = bytes_sent,
        .bytes_received = bytes_received,
        .max_packet_bytes =
            static_cast<std::size_t>(max_packet_bytes.value()),
    };
  }
};

/// Per-channel instruments for the connection-oriented push plane
/// (src/push): connection/subscription occupancy, queued-update depth,
/// coalesced drops and paced write batches, plus a frame/update ledger.
/// Shared by the authority-side PushServer and (the applicable subset)
/// the cache-side PushClient; labeled with a role ("server"/"client")
/// and endpoint so a merged scrape separates the two ends.  Same cell
/// semantics as TrafficInstruments: relaxed atomics, safe to bump from
/// the plane's I/O thread while the protocol thread snapshots.
struct PushChannelInstruments {
  metrics::Gauge connections;        ///< open TCP connections now
  metrics::Gauge subscriptions;      ///< identities with a live channel
  metrics::Gauge queue_depth;        ///< updates queued, not yet written
  metrics::Counter accepts;          ///< push_connects{role,...}
  metrics::Counter disconnects;
  metrics::Counter frames_sent;      ///< push_frames{dir=tx}
  metrics::Counter frames_received;  ///< push_frames{dir=rx}
  metrics::Counter coalesced;        ///< push_coalesced_total
  metrics::Counter paced_batches;    ///< push_paced_batches_total
  metrics::Counter overflows;        ///< queue full -> UDP fallback
  metrics::Counter shutdown_flushed; ///< frames force-drained at stop()

  void register_in(metrics::MetricsRegistry& registry, const std::string& role,
                   const std::string& endpoint) {
    const metrics::Labels base{{"endpoint", endpoint}, {"role", role}};
    auto labeled = [&](const char* key, const char* value) {
      metrics::Labels labels = base;
      labels.emplace_back(key, value);
      return labels;
    };
    connections = registry.gauge("push_connections", base);
    subscriptions = registry.gauge("push_subscriptions", base);
    queue_depth = registry.gauge("push_queue_depth", base);
    accepts = registry.counter("push_connects_total", base);
    disconnects = registry.counter("push_disconnects_total", base);
    frames_sent = registry.counter("push_frames", labeled("dir", "tx"));
    frames_received = registry.counter("push_frames", labeled("dir", "rx"));
    coalesced = registry.counter("push_coalesced_total", base);
    paced_batches = registry.counter("push_paced_batches_total", base);
    overflows = registry.counter("push_overflow_total", base);
    shutdown_flushed = registry.counter("push_shutdown_flushed_total", base);
  }
};

}  // namespace dnscup::net

#include "net/uring_backend.h"

#ifdef DNSCUP_HAVE_IO_URING

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/assert.h"
#include "util/logging.h"

namespace dnscup::net {

namespace {

constexpr unsigned kBufGroup = 0;
constexpr uint64_t kRecvUserData = ~0ULL;
constexpr uint64_t kProvideUserData = ~0ULL - 1;
constexpr int kMaxEagainRetries = 8;
constexpr int kPollOutTimeoutMs = 10;
constexpr long kWaitTimeoutNs = 50 * 1000 * 1000;  // mirrors SO_RCVTIMEO

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_register(int fd, unsigned opcode, const void* arg,
                          unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

sockaddr_in make_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(ep.ip);
  addr.sin_port = htons(ep.port);
  return addr;
}

util::Error unsupported(const char* what, int err) {
  return util::make_error(
      util::ErrorCode::kUnsupported,
      std::string(what) + ": " + std::strerror(err));
}

}  // namespace

// ---------------------------------------------------------------------
// Ring: minimal single-mmap io_uring wrapper (no liburing in the image).

util::Status UringBackend::Ring::init(unsigned sq_entries,
                                      unsigned cq_entries) {
  io_uring_params p{};
  p.flags = IORING_SETUP_CQSIZE | IORING_SETUP_CLAMP;
  p.cq_entries = cq_entries;
  fd = sys_io_uring_setup(sq_entries, &p);
  if (fd < 0) return unsupported("io_uring_setup", errno);

  // Single-mmap layout + EXT_ARG timed waits + lossless CQ: all present
  // since 5.11, and this backend leans on each of them.
  constexpr unsigned kNeeded = IORING_FEAT_SINGLE_MMAP |
                               IORING_FEAT_NODROP | IORING_FEAT_EXT_ARG;
  if ((p.features & kNeeded) != kNeeded) {
    close_ring();
    return util::make_error(util::ErrorCode::kUnsupported,
                            "io_uring lacks SINGLE_MMAP/NODROP/EXT_ARG "
                            "(kernel too old)");
  }

  const std::size_t sq_bytes =
      p.sq_off.array + p.sq_entries * sizeof(unsigned);
  const std::size_t cq_bytes =
      p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  ring_bytes = std::max(sq_bytes, cq_bytes);
  ring_mmap = ::mmap(nullptr, ring_bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
  if (ring_mmap == MAP_FAILED) {
    ring_mmap = nullptr;
    close_ring();
    return unsupported("io_uring ring mmap", errno);
  }
  sqe_bytes = p.sq_entries * sizeof(io_uring_sqe);
  sqes = static_cast<io_uring_sqe*>(
      ::mmap(nullptr, sqe_bytes, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES));
  if (sqes == MAP_FAILED) {
    sqes = nullptr;
    close_ring();
    return unsupported("io_uring sqe mmap", errno);
  }

  auto* base = static_cast<uint8_t*>(ring_mmap);
  sq_head = reinterpret_cast<unsigned*>(base + p.sq_off.head);
  sq_tail = reinterpret_cast<unsigned*>(base + p.sq_off.tail);
  sq_mask = *reinterpret_cast<unsigned*>(base + p.sq_off.ring_mask);
  sq_array = reinterpret_cast<unsigned*>(base + p.sq_off.array);
  cq_head = reinterpret_cast<unsigned*>(base + p.cq_off.head);
  cq_tail = reinterpret_cast<unsigned*>(base + p.cq_off.tail);
  cq_mask = *reinterpret_cast<unsigned*>(base + p.cq_off.ring_mask);
  cqes = reinterpret_cast<io_uring_cqe*>(base + p.cq_off.cqes);
  return util::Status::ok_status();
}

void UringBackend::Ring::close_ring() {
  if (sqes != nullptr) ::munmap(sqes, sqe_bytes);
  if (ring_mmap != nullptr) ::munmap(ring_mmap, ring_bytes);
  if (fd >= 0) ::close(fd);
  sqes = nullptr;
  ring_mmap = nullptr;
  fd = -1;
}

io_uring_sqe* UringBackend::Ring::get_sqe() {
  // Single producer per ring (receiver thread on rx, tx_mutex_ holder on
  // tx); only the kernel-consumed head needs an acquire.
  const unsigned head = __atomic_load_n(sq_head, __ATOMIC_ACQUIRE);
  const unsigned tail = *sq_tail;
  if (tail - head > sq_mask) return nullptr;  // ring full
  io_uring_sqe* sqe = &sqes[tail & sq_mask];
  std::memset(sqe, 0, sizeof *sqe);
  sq_array[tail & sq_mask] = tail & sq_mask;
  __atomic_store_n(sq_tail, tail + 1, __ATOMIC_RELEASE);
  return sqe;
}

int UringBackend::Ring::enter(unsigned to_submit, unsigned min_complete,
                              unsigned flags, const void* arg,
                              std::size_t argsz) {
  const long r = ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete,
                           flags, arg, argsz);
  return r < 0 ? -errno : static_cast<int>(r);
}

// ---------------------------------------------------------------------
// Bind / setup / teardown.

util::Result<std::unique_ptr<UringBackend>> UringBackend::bind(
    const Options& options) {
  Endpoint local{};
  auto fd = detail::open_udp_socket(options, &local);
  if (!fd.ok()) return fd.error();
  std::unique_ptr<UringBackend> backend(
      new UringBackend(fd.value(), local, options));
  if (auto status = backend->setup(options); !status.ok()) {
    return status.error();  // backend dtor tears down what came up
  }
  backend->receiver_ = std::thread([b = backend.get()] { b->receive_loop(); });
  return backend;
}

UringBackend::UringBackend(int fd, Endpoint local, const Options& options)
    : fd_(fd), local_(local), pin_cpu_(options.pin_cpu) {
  auto& registry = metrics::resolve(options.metrics);
  stats_.register_in(registry, local_.to_string(), "uring", kTxSlots);
  // Same instrument names as the portable backend: the `backend` label
  // distinguishes them, and cross-backend sums stay meaningful.
  const metrics::Labels ep{{"backend", "uring"},
                           {"endpoint", local_.to_string()}};
  rx_overflow_ = registry.counter("udp_rx_overflow", ep);
  rx_truncated_ = registry.counter("udp_rx_truncated", ep);
  tx_eagain_ = registry.counter("udp_tx_eagain_waits", ep);
  tx_errors_ = registry.counter("udp_tx_errors", ep);
  rx_batch_size_ = registry.histogram("udp_rx_batch_size", ep);
  tx_batch_size_ = registry.histogram("udp_tx_batch_size", ep);
  tx_flush_us_ = registry.histogram("udp_tx_flush_us", ep);
  tx_addrs_.resize(kTxSlots);
  tx_iovs_.resize(kTxSlots);
  tx_msgs_.resize(kTxSlots);
}

util::Status UringBackend::setup(const Options& options) {
  (void)options;
  // rx ring: at most one armed SQE, but CQ bursts of one CQE per
  // datagram; tx ring: one SQE per datagram in a batch.
  DNSCUP_TRY(rx_ring_.init(8, 2 * kRxBufCount));
  DNSCUP_TRY(tx_ring_.init(kTxSlots, 2 * kTxSlots));

  // Provided-buffer group: one PROVIDE_BUFFERS op hands the kernel the
  // whole pool-slot-sized slab (contiguous slots, bid == slot index);
  // its inline completion tells us right here whether the kernel
  // supports buffer groups at all.
  rx_slab_.resize(kRxBufCount * kRxSlotBytes);
  recycle_bids_.reserve(kRxBufCount);
  io_uring_sqe* sqe = rx_ring_.get_sqe();
  DNSCUP_ASSERT(sqe != nullptr);  // fresh ring, SQ is empty
  fill_provide_sqe(sqe, 0, kRxBufCount);
  int r;
  while ((r = rx_ring_.enter(1, 1, IORING_ENTER_GETEVENTS, nullptr, 0)) ==
         -EINTR) {
  }
  if (r < 0) return unsupported("PROVIDE_BUFFERS submit", -r);
  {
    const unsigned head = *rx_ring_.cq_head;
    const unsigned tail = __atomic_load_n(rx_ring_.cq_tail, __ATOMIC_ACQUIRE);
    for (unsigned i = head; i != tail; ++i) {
      const io_uring_cqe& cqe = rx_ring_.cqes[i & rx_ring_.cq_mask];
      if (cqe.user_data == kProvideUserData && cqe.res < 0) {
        __atomic_store_n(rx_ring_.cq_head, tail, __ATOMIC_RELEASE);
        return unsupported("IORING_OP_PROVIDE_BUFFERS", -cqe.res);
      }
    }
    __atomic_store_n(rx_ring_.cq_head, tail, __ATOMIC_RELEASE);
  }

  // Arm the multishot receive; an unsupported combination (pre-6.0
  // kernel) rejects it with an inline error CQE we can see right here.
  arm_multishot();
  const unsigned head = *rx_ring_.cq_head;
  const unsigned tail = __atomic_load_n(rx_ring_.cq_tail, __ATOMIC_ACQUIRE);
  for (unsigned i = head; i != tail; ++i) {
    const io_uring_cqe& cqe = rx_ring_.cqes[i & rx_ring_.cq_mask];
    if (cqe.user_data == kRecvUserData && cqe.res < 0) {
      __atomic_store_n(rx_ring_.cq_head, tail, __ATOMIC_RELEASE);
      return unsupported("multishot recvmsg", -cqe.res);
    }
  }
  return util::Status::ok_status();
}

void UringBackend::teardown() {
  // The provided-buffer group dies with the ring fd; nothing to
  // unregister separately.
  rx_ring_.close_ring();
  tx_ring_.close_ring();
}

UringBackend::~UringBackend() {
  stop_receiving();
  teardown();
  ::close(fd_);
}

void UringBackend::stop_receiving() {
  stopping_.store(true);
  if (receiver_.joinable()) receiver_.join();
}

TrafficStats UringBackend::stats() const { return stats_.snapshot(); }

void UringBackend::set_receive_handler(ReceiveHandler handler) {
  std::lock_guard lock(handler_mutex_);
  handler_ = std::move(handler);
}

void UringBackend::set_batch_receive_handler(BatchReceiveHandler handler) {
  std::lock_guard lock(handler_mutex_);
  batch_handler_ = std::move(handler);
}

// ---------------------------------------------------------------------
// Receive path.

void UringBackend::arm_multishot() {
  rx_msghdr_ = msghdr{};
  // No iovec: the kernel picks a provided buffer per datagram and lays
  // out recvmsg_out header + name + control + payload inside it.
  rx_msghdr_.msg_namelen = kRxNameSpace;
  rx_msghdr_.msg_controllen = kRxControlSpace;
  io_uring_sqe* sqe = rx_ring_.get_sqe();
  DNSCUP_ASSERT(sqe != nullptr);  // rx SQ holds 8, we arm one at a time
  sqe->opcode = IORING_OP_RECVMSG;
  sqe->fd = fd_;
  sqe->addr = reinterpret_cast<uint64_t>(&rx_msghdr_);
  sqe->len = 1;
  sqe->ioprio = IORING_RECV_MULTISHOT;
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = kBufGroup;
  sqe->user_data = kRecvUserData;
  while (rx_ring_.enter(1, 0, 0, nullptr, 0) == -EINTR) {
  }
}

void UringBackend::fill_provide_sqe(io_uring_sqe* sqe, unsigned first_bid,
                                    unsigned count) {
  sqe->opcode = IORING_OP_PROVIDE_BUFFERS;
  sqe->fd = static_cast<int>(count);
  sqe->addr = reinterpret_cast<uint64_t>(
      rx_slab_.data() + std::size_t{first_bid} * kRxSlotBytes);
  sqe->len = kRxSlotBytes;
  sqe->off = first_bid;  // bids assigned sequentially from here
  sqe->buf_group = kBufGroup;
  sqe->user_data = kProvideUserData;
}

void UringBackend::recycle_rx_buffer(unsigned bid) {
  recycle_bids_.push_back(bid);
}

void UringBackend::publish_rx_buffers() {
  if (recycle_bids_.empty()) return;
  // Multishot hands buffers out in provide order, so a drained burst is
  // mostly consecutive bids: sort and collapse each run into one SQE.
  std::sort(recycle_bids_.begin(), recycle_bids_.end());
  unsigned filled = 0;
  std::size_t i = 0;
  while (i < recycle_bids_.size()) {
    const unsigned first = recycle_bids_[i];
    unsigned count = 1;
    while (i + count < recycle_bids_.size() &&
           recycle_bids_[i + count] == first + count) {
      ++count;
    }
    i += count;
    io_uring_sqe* sqe = rx_ring_.get_sqe();
    if (sqe == nullptr) {
      // SQ full (it only holds 8): flush what we queued, then retry.
      while (rx_ring_.enter(filled, 0, 0, nullptr, 0) == -EINTR) {
      }
      filled = 0;
      sqe = rx_ring_.get_sqe();
      DNSCUP_ASSERT(sqe != nullptr);
    }
    fill_provide_sqe(sqe, first, count);
    ++filled;
  }
  while (rx_ring_.enter(filled, 0, 0, nullptr, 0) == -EINTR) {
  }
  recycle_bids_.clear();
}

void UringBackend::receive_loop() {
  pin_current_thread_to_cpu(pin_cpu_);
  std::vector<RxPacket> batch;
  std::vector<unsigned> consumed_bids;
  batch.reserve(kRxBufCount);
  consumed_bids.reserve(kRxBufCount);
  while (!stopping_.load()) {
    unsigned head = *rx_ring_.cq_head;
    unsigned tail = __atomic_load_n(rx_ring_.cq_tail, __ATOMIC_ACQUIRE);
    if (head == tail) {
      // Bounded wait so shutdown is noticed: EXT_ARG carries a 50 ms
      // timeout into the GETEVENTS sleep.
      __kernel_timespec ts{};
      ts.tv_nsec = kWaitTimeoutNs;
      io_uring_getevents_arg arg{};
      arg.ts = reinterpret_cast<uint64_t>(&ts);
      const int r =
          rx_ring_.enter(0, 1, IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
                         &arg, sizeof arg);
      if (r < 0 && r != -ETIME && r != -EINTR && r != -EAGAIN &&
          r != -EBUSY) {
        break;  // ring torn down under us: fatal
      }
      tail = __atomic_load_n(rx_ring_.cq_tail, __ATOMIC_ACQUIRE);
      if (head == tail) continue;
    }

    batch.clear();
    consumed_bids.clear();
    bool rearm = false;
    for (; head != tail; ++head) {
      const io_uring_cqe& cqe = rx_ring_.cqes[head & rx_ring_.cq_mask];
      if (cqe.user_data == kProvideUserData) {
        if (cqe.res < 0) {
          // Should not happen after setup validated the op; the slots in
          // that run are gone until restart, so say so.
          DNSCUP_LOG_WARN("uring PROVIDE_BUFFERS failed (%s): rx slots lost",
                          std::strerror(-cqe.res));
        }
        continue;
      }
      if (cqe.user_data != kRecvUserData) continue;
      if ((cqe.flags & IORING_CQE_F_MORE) == 0) rearm = true;
      if (cqe.res < 0) continue;  // -ENOBUFS etc: rearm handles it
      if ((cqe.flags & IORING_CQE_F_BUFFER) == 0) continue;
      const unsigned bid = cqe.flags >> IORING_CQE_BUFFER_SHIFT;
      consumed_bids.push_back(bid);
      uint8_t* slot = rx_slab_.data() + std::size_t{bid} * kRxSlotBytes;
      if (static_cast<std::size_t>(cqe.res) < sizeof(io_uring_recvmsg_out)) {
        continue;
      }
      auto* out = reinterpret_cast<io_uring_recvmsg_out*>(slot);
#ifdef SO_RXQ_OVFL
      if (out->controllen > 0) {
        // The control area sits between name space and payload; walk it
        // with a scratch msghdr so CMSG_* macros apply.
        msghdr scratch{};
        scratch.msg_control = slot + sizeof(io_uring_recvmsg_out) +
                              kRxNameSpace;
        scratch.msg_controllen = out->controllen;
        for (cmsghdr* cmsg = CMSG_FIRSTHDR(&scratch); cmsg != nullptr;
             cmsg = CMSG_NXTHDR(&scratch, cmsg)) {
          if (cmsg->cmsg_level == SOL_SOCKET &&
              cmsg->cmsg_type == SO_RXQ_OVFL) {
            uint32_t dropped = 0;
            std::memcpy(&dropped, CMSG_DATA(cmsg), sizeof dropped);
            if (dropped > last_overflow_) {
              rx_overflow_ += dropped - last_overflow_;
            }
            last_overflow_ = dropped;
          }
        }
      }
#endif
      if ((out->flags & MSG_TRUNC) != 0) {
        ++rx_truncated_;  // datagram larger than a 2 KiB slot: drop
        continue;
      }
      const std::size_t stored =
          static_cast<std::size_t>(cqe.res) - sizeof(io_uring_recvmsg_out) -
          kRxNameSpace - kRxControlSpace;
      const std::size_t len =
          std::min<std::size_t>(out->payloadlen, stored);
      sockaddr_in from{};
      std::memcpy(&from, slot + sizeof(io_uring_recvmsg_out),
                  std::min<std::size_t>(out->namelen, sizeof from));
      ++stats_.packets_received;
      stats_.bytes_received += len;
      batch.push_back(RxPacket{
          Endpoint{ntohl(from.sin_addr.s_addr), ntohs(from.sin_port)},
          std::span<const uint8_t>(
              slot + sizeof(io_uring_recvmsg_out) + kRxNameSpace +
                  kRxControlSpace,
              len)});
    }
    __atomic_store_n(rx_ring_.cq_head, head, __ATOMIC_RELEASE);

    if (!batch.empty()) {
      rx_batch_size_.add(static_cast<double>(batch.size()));
      BatchReceiveHandler batch_handler;
      ReceiveHandler handler;
      {
        std::lock_guard lock(handler_mutex_);
        batch_handler = batch_handler_;
        handler = handler_;
      }
      if (batch_handler) {
        batch_handler(std::span<const RxPacket>(batch));
      } else if (handler) {
        for (const RxPacket& p : batch) handler(p.from, p.data);
      }
    }
    // The handler has returned: every span is dead, so the buffers can
    // go back to the kernel in one tail publish.
    for (const unsigned bid : consumed_bids) recycle_rx_buffer(bid);
    publish_rx_buffers();
    if (rearm && !stopping_.load()) arm_multishot();
  }
}

// ---------------------------------------------------------------------
// Send path.

void UringBackend::count_sent(std::size_t requested, std::size_t accepted) {
  ++stats_.packets_sent;
  stats_.bytes_sent += static_cast<uint64_t>(accepted);
  stats_.max_packet_bytes.set_max(static_cast<double>(requested));
}

void UringBackend::wait_writable() {
  pollfd p{};
  p.fd = fd_;
  p.events = POLLOUT;
  ::poll(&p, 1, kPollOutTimeoutMs);  // bounded; timeout just retries
}

std::size_t UringBackend::submit_tx_batch(std::span<const TxPacket> packets) {
  const std::size_t n = packets.size();
  DNSCUP_ASSERT(n <= kTxSlots);
  for (std::size_t i = 0; i < n; ++i) {
    tx_addrs_[i] = make_addr(packets[i].to);
    tx_iovs_[i] = {const_cast<uint8_t*>(packets[i].data.data()),
                   packets[i].data.size()};
    tx_msgs_[i] = msghdr{};
    tx_msgs_[i].msg_name = &tx_addrs_[i];
    tx_msgs_[i].msg_namelen = sizeof tx_addrs_[i];
    tx_msgs_[i].msg_iov = &tx_iovs_[i];
    tx_msgs_[i].msg_iovlen = 1;
  }

  std::size_t accepted = 0;
  // Indices still to (re)offer; starts as the whole batch, shrinks to
  // the EAGAIN stragglers on each retry round.
  std::vector<std::size_t> pending(n);
  for (std::size_t i = 0; i < n; ++i) pending[i] = i;
  std::vector<std::size_t> retry;
  int eagain_budget = kMaxEagainRetries;

  while (!pending.empty()) {
    for (const std::size_t i : pending) {
      io_uring_sqe* sqe = tx_ring_.get_sqe();
      DNSCUP_ASSERT(sqe != nullptr);  // batch chunked to the SQ size
      sqe->opcode = IORING_OP_SENDMSG;
      sqe->fd = fd_;
      sqe->addr = reinterpret_cast<uint64_t>(&tx_msgs_[i]);
      sqe->len = 1;
      sqe->user_data = static_cast<uint64_t>(i);
    }
    // One syscall submits the whole round and waits for every
    // completion: the packet spans are borrowed only until we return.
    unsigned submitted = 0;
    const auto want = static_cast<unsigned>(pending.size());
    while (submitted < want) {
      const int r = tx_ring_.enter(want - submitted, want,
                                   IORING_ENTER_GETEVENTS, nullptr, 0);
      if (r == -EINTR || r == -EAGAIN || r == -EBUSY) continue;
      if (r < 0) break;  // ring failure: CQ drain below sees what landed
      submitted += static_cast<unsigned>(r);
    }
    // Wait for the full round (enter above may return once min_complete
    // was already satisfied by an earlier partial submit).
    unsigned completed = 0;
    retry.clear();
    while (completed < want) {
      unsigned head = *tx_ring_.cq_head;
      unsigned tail = __atomic_load_n(tx_ring_.cq_tail, __ATOMIC_ACQUIRE);
      if (head == tail) {
        const int r = tx_ring_.enter(0, want - completed,
                                     IORING_ENTER_GETEVENTS, nullptr, 0);
        if (r < 0 && r != -EINTR && r != -EAGAIN && r != -EBUSY) break;
        continue;
      }
      for (; head != tail; ++head) {
        const io_uring_cqe& cqe = tx_ring_.cqes[head & tx_ring_.cq_mask];
        const auto i = static_cast<std::size_t>(cqe.user_data);
        ++completed;
        if (cqe.res >= 0) {
          count_sent(packets[i].data.size(),
                     static_cast<std::size_t>(cqe.res));
          ++accepted;
        } else if (cqe.res == -EAGAIN || cqe.res == -EWOULDBLOCK) {
          retry.push_back(i);
        } else {
          ++tx_errors_;  // hard error: drop, keep serving
        }
      }
      __atomic_store_n(tx_ring_.cq_head, head, __ATOMIC_RELEASE);
    }
    if (retry.empty()) break;
    if (eagain_budget-- <= 0) {
      tx_errors_ += retry.size();  // buffer stayed full: drop the rest
      break;
    }
    ++tx_eagain_;
    wait_writable();
    pending.swap(retry);
  }
  return accepted;
}

std::size_t UringBackend::send_batch(std::span<const TxPacket> packets) {
  if (packets.empty()) return 0;
  const auto start = std::chrono::steady_clock::now();
  std::size_t sent = 0;
  {
    std::lock_guard lock(tx_mutex_);
    for (std::size_t cursor = 0; cursor < packets.size();
         cursor += kTxSlots) {
      const std::size_t n = std::min(kTxSlots, packets.size() - cursor);
      sent += submit_tx_batch(packets.subspan(cursor, n));
    }
  }
  tx_batch_size_.add(static_cast<double>(packets.size()));
  tx_flush_us_.add(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return sent;
}

void UringBackend::send(const Endpoint& to, std::span<const uint8_t> data) {
  const TxPacket packet{to, data};
  std::lock_guard lock(tx_mutex_);
  submit_tx_batch(std::span<const TxPacket>(&packet, 1));
}

// ---------------------------------------------------------------------

util::Status uring_runtime_probe() {
  metrics::MetricsRegistry scratch;
  IoBackend::Options options;
  options.metrics = &scratch;
  auto bound = UringBackend::bind(options);
  if (!bound.ok()) return bound.error();
  bound.value()->stop_receiving();
  return util::Status::ok_status();
}

}  // namespace dnscup::net

#endif  // DNSCUP_HAVE_IO_URING

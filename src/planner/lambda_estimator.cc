#include "planner/lambda_estimator.h"

#include <algorithm>

namespace dnscup::planner {

double LambdaEstimator::update(State& state, double observed) const {
  const float x = static_cast<float>(std::max(observed, 0.0));
  if (!state.seeded()) {
    state.level = x;
    state.trend = 0.0f;
    return forecast(state);
  }
  switch (kind_) {
    case EstimatorKind::kLastWindow:
      state.level = x;
      break;
    case EstimatorKind::kEwma: {
      const float a = static_cast<float>(params_.alpha);
      state.level = a * x + (1.0f - a) * state.level;
      break;
    }
    case EstimatorKind::kHolt: {
      const float a = static_cast<float>(params_.alpha);
      const float b = static_cast<float>(params_.beta);
      const float prev_level = state.level;
      state.level = a * x + (1.0f - a) * (state.level + state.trend);
      state.trend =
          b * (state.level - prev_level) + (1.0f - b) * state.trend;
      break;
    }
  }
  return forecast(state);
}

double LambdaEstimator::forecast(const State& state) const {
  if (!state.seeded()) return 0.0;
  if (kind_ == EstimatorKind::kHolt) {
    return std::max(0.0, static_cast<double>(state.level + state.trend));
  }
  return static_cast<double>(state.level);
}

std::optional<EstimatorKind> LambdaEstimator::parse(std::string_view text) {
  if (text == "last-window") return EstimatorKind::kLastWindow;
  if (text == "ewma") return EstimatorKind::kEwma;
  if (text == "holt") return EstimatorKind::kHolt;
  return std::nullopt;
}

const char* LambdaEstimator::name(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kLastWindow:
      return "last-window";
    case EstimatorKind::kEwma:
      return "ewma";
    case EstimatorKind::kHolt:
      return "holt";
  }
  return "?";
}

}  // namespace dnscup::planner

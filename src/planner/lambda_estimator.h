// Pluggable per-pair query-rate forecasting (the λ the optimizers plan
// on).
//
// The paper's optimizers treat λ_ij as known; live, the authority only
// sees a stream of RRC reports (or RateTracker estimates) per
// (cache, record) pair, and PAPERS.md "Modeling and Predicting DNS Server
// Load" argues for planning on a *forecast* rather than the last window —
// lease lengths should track where load is going, not where it was.
//
// The estimator is a stateless policy over a tiny per-pair State embedded
// in the demand-table slot (8 bytes: level + trend), so switching
// estimators costs no memory and the 10M-pair table stays 32 B/slot:
//
//   last-window  level = x_t                       (the pre-planner status quo)
//   ewma         level = α·x_t + (1-α)·level       (smooths report noise)
//   holt         double-exponential smoothing      (tracks ramps: forecast
//                level + trend extrapolates one window ahead)
#pragma once

#include <optional>
#include <string_view>

namespace dnscup::planner {

enum class EstimatorKind { kLastWindow, kEwma, kHolt };

struct EstimatorParams {
  double alpha = 0.3;  ///< level smoothing (ewma, holt)
  double beta = 0.1;   ///< trend smoothing (holt)
};

class LambdaEstimator {
 public:
  /// Per-pair forecasting state.  level < 0 marks "unseeded" (valid
  /// because observed rates are never negative).
  struct State {
    float level = -1.0f;
    float trend = 0.0f;

    bool seeded() const { return level >= 0.0f; }
  };

  explicit LambdaEstimator(EstimatorKind kind, EstimatorParams params = {})
      : kind_(kind), params_(params) {}

  /// Folds one observed rate into `state` and returns the new forecast.
  double update(State& state, double observed) const;

  /// Forecast for the next window from the current state (0 when
  /// unseeded).  Clamped at 0: a steep negative Holt trend must not
  /// produce a negative demand rate.
  double forecast(const State& state) const;

  EstimatorKind kind() const { return kind_; }
  const EstimatorParams& params() const { return params_; }

  static std::optional<EstimatorKind> parse(std::string_view text);
  static const char* name(EstimatorKind kind);

 private:
  EstimatorKind kind_;
  EstimatorParams params_;
};

}  // namespace dnscup::planner

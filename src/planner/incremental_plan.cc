#include "planner/incremental_plan.h"

#include <limits>

#include "core/lease_math.h"
#include "util/assert.h"

namespace dnscup::planner {

namespace {

constexpr uint32_t kNoId = std::numeric_limits<uint32_t>::max();

/// Per-update bound on the deprivation sweep (entries examined); keeps a
/// single update O(log n) while replan() mops up whatever the bounded
/// sweep could not reach.
constexpr int kSweepSteps = 32;

void mark(std::vector<uint32_t>* dirty, uint32_t id) {
  if (dirty != nullptr && id != kNoId) dirty->push_back(id);
}

}  // namespace

// ---------------------------------------------------------------------------
// IncrementalSlp

IncrementalSlp::IncrementalSlp(std::size_t max_ids, double storage_budget)
    : budget_(storage_budget), entries_(max_ids) {
  DNSCUP_ASSERT(storage_budget >= 0.0);
  frontier_ = order_.end();
}

uint32_t IncrementalSlp::boundary_id() const {
  return frontier_ == order_.end() ? kNoId : frontier_->id;
}

void IncrementalSlp::update(uint32_t id, double rate, double max_lease,
                            std::vector<uint32_t>* dirty) {
  DNSCUP_ASSERT(id < entries_.size());
  // The boundary's truncated length depends on the used-storage total, so
  // it is dirty whenever anything changes.
  mark(dirty, boundary_id());
  mark(dirty, id);

  Entry& e = entries_[id];
  if (e.present) {
    auto it = order_.find(OrderKey{e.rate, id});
    DNSCUP_ASSERT(it != order_.end());
    if (e.granted) {
      used_ -= core::lease_probability(e.max_lease, e.rate);
      e.granted = false;
      --granted_;
    }
    if (it == frontier_) {
      frontier_ = order_.erase(it);
    } else {
      order_.erase(it);
    }
    e.present = false;
  }

  if (rate > 0.0 && max_lease > 0.0) {
    e.rate = rate;
    e.max_lease = max_lease;
    e.present = true;
    auto [it, inserted] = order_.insert(OrderKey{rate, id});
    DNSCUP_ASSERT(inserted);
    // Landing inside [begin, frontier_) makes the new entry part of the
    // granted prefix positionally; grant it and let fix_frontier retreat
    // if that overshoots the budget.
    if (frontier_ == order_.end() || Cmp{}(*it, *frontier_)) {
      e.granted = true;
      ++granted_;
      used_ += core::lease_probability(max_lease, rate);
    }
  }

  fix_frontier(dirty);
  mark(dirty, boundary_id());
}

void IncrementalSlp::fix_frontier(std::vector<uint32_t>* dirty) {
  // Retreat: shed the prefix tail (smallest λ granted) while over budget.
  while (used_ > budget_ && frontier_ != order_.begin()) {
    --frontier_;
    Entry& e = entries_[frontier_->id];
    e.granted = false;
    --granted_;
    used_ -= core::lease_probability(e.max_lease, e.rate);
    mark(dirty, frontier_->id);
  }
  // Advance: grant full leases while they fit — the batch greedy's
  // `used + full <= budget` admission, applied from the frontier on.
  while (frontier_ != order_.end()) {
    Entry& e = entries_[frontier_->id];
    const double p = core::lease_probability(e.max_lease, e.rate);
    if (used_ + p > budget_) break;
    e.granted = true;
    ++granted_;
    used_ += p;
    mark(dirty, frontier_->id);
    ++frontier_;
  }
  // Truncate the boundary onto the remaining budget (batch's last-grant
  // truncation).  remaining < P(L, λ) < 1 because the advance loop
  // stopped here.
  trunc_len_ = 0.0;
  if (frontier_ != order_.end()) {
    const double remaining = budget_ - used_;
    if (remaining > 0.0) {
      trunc_len_ =
          core::lease_length_for_probability(remaining, frontier_->rate);
    }
  }
}

double IncrementalSlp::lease_for(uint32_t id) const {
  const Entry& e = entries_[id];
  if (!e.present) return 0.0;
  if (e.granted) return e.max_lease;
  if (frontier_ != order_.end() && frontier_->id == id) return trunc_len_;
  return 0.0;
}

void IncrementalSlp::set_budget(double budget,
                                std::vector<uint32_t>* dirty) {
  DNSCUP_ASSERT(budget >= 0.0);
  mark(dirty, boundary_id());
  budget_ = budget;
  fix_frontier(dirty);
  mark(dirty, boundary_id());
}

std::vector<core::DemandEntry> IncrementalSlp::export_demands(
    std::vector<uint32_t>* ids) const {
  std::vector<core::DemandEntry> demands;
  demands.reserve(order_.size());
  if (ids != nullptr) {
    ids->clear();
    ids->reserve(order_.size());
  }
  for (uint32_t id = 0; id < entries_.size(); ++id) {
    const Entry& e = entries_[id];
    if (!e.present) continue;
    demands.push_back(core::DemandEntry{id, 0, e.rate, e.max_lease});
    if (ids != nullptr) ids->push_back(id);
  }
  return demands;
}

void IncrementalSlp::replan() {
  std::vector<uint32_t> ids;
  const auto demands = export_demands(&ids);
  const core::LeasePlan plan =
      core::plan_storage_constrained(demands, budget_);

  used_ = 0.0;
  granted_ = 0;
  uint32_t truncated = kNoId;
  double truncated_len = 0.0;
  for (std::size_t k = 0; k < ids.size(); ++k) {
    Entry& e = entries_[ids[k]];
    const double len = plan.lengths[k];
    e.granted = len > 0.0 && len == e.max_lease;
    if (e.granted) {
      used_ += core::lease_probability(e.max_lease, e.rate);
      ++granted_;
    } else if (len > 0.0) {
      truncated = ids[k];
      truncated_len = len;
    }
  }
  // The batch truncates exactly the first not-fully-granted entry in its
  // sort order, which is this set's order — so the walk lands on it.
  frontier_ = order_.begin();
  while (frontier_ != order_.end() && entries_[frontier_->id].granted) {
    ++frontier_;
  }
  trunc_len_ = 0.0;
  if (frontier_ != order_.end() && frontier_->id == truncated) {
    trunc_len_ = truncated_len;
  }
}

// ---------------------------------------------------------------------------
// IncrementalDeprivation

IncrementalDeprivation::IncrementalDeprivation(std::size_t max_ids,
                                               double message_budget)
    : budget_(message_budget), entries_(max_ids) {
  DNSCUP_ASSERT(message_budget >= 0.0);
}

void IncrementalDeprivation::update(uint32_t id, double rate,
                                    double max_lease,
                                    std::vector<uint32_t>* dirty) {
  DNSCUP_ASSERT(id < entries_.size());
  Entry& e = entries_[id];
  if (e.present) {
    traffic_ -= e.deprived
                    ? e.rate
                    : core::renewal_rate(e.max_lease, e.rate);
    order_.erase(OrderKey{e.rate, id});
    if (e.deprived) deprived_.erase(OrderKey{e.rate, id});
    e.present = false;
    e.deprived = false;
    mark(dirty, id);
  }
  if (rate > 0.0 && max_lease > 0.0) {
    e.rate = rate;
    e.max_lease = max_lease;
    e.present = true;
    order_.insert(OrderKey{rate, id});
    // Leased is the traffic minimum for any entry; start there.
    traffic_ += core::renewal_rate(max_lease, rate);
    mark(dirty, id);
    try_deprive(id, dirty);
  }
  rebalance(dirty);
}

void IncrementalDeprivation::try_deprive(uint32_t id,
                                         std::vector<uint32_t>* dirty) {
  Entry& e = entries_[id];
  if (!e.present || e.deprived) return;
  const double added =
      e.rate - core::renewal_rate(e.max_lease, e.rate);
  if (traffic_ + added > budget_) return;
  e.deprived = true;
  traffic_ += added;
  deprived_.insert(OrderKey{e.rate, id});
  mark(dirty, id);
}

void IncrementalDeprivation::rebalance(std::vector<uint32_t>* dirty) {
  // Over budget (a deprived pair's rate grew, or the budget shrank):
  // re-grant leases largest-λ-deprived first — undoing the greedy's
  // deprivations in reverse priority.  When deprived_ drains and traffic
  // still exceeds budget, the plan is all-leased: the minimal achievable
  // traffic, matching plan_comm_constrained's infeasible-budget answer.
  while (traffic_ > budget_ && !deprived_.empty()) {
    auto it = std::prev(deprived_.end());
    Entry& e = entries_[it->id];
    traffic_ -= e.rate;
    traffic_ += core::renewal_rate(e.max_lease, e.rate);
    e.deprived = false;
    mark(dirty, it->id);
    deprived_.erase(it);
  }
  // Bounded deprivation sweep from the smallest-λ end; whatever it
  // cannot reach this round, replan() recovers.
  int steps = kSweepSteps;
  for (auto it = order_.begin(); it != order_.end() && steps > 0;
       ++it, --steps) {
    Entry& e = entries_[it->id];
    if (e.deprived) continue;
    const double added =
        e.rate - core::renewal_rate(e.max_lease, e.rate);
    if (traffic_ + added > budget_) continue;
    e.deprived = true;
    traffic_ += added;
    deprived_.insert(OrderKey{it->rate, it->id});
    mark(dirty, it->id);
  }
}

double IncrementalDeprivation::lease_for(uint32_t id) const {
  const Entry& e = entries_[id];
  if (!e.present || e.deprived) return 0.0;
  return e.max_lease;
}

void IncrementalDeprivation::set_budget(double budget,
                                        std::vector<uint32_t>* dirty) {
  DNSCUP_ASSERT(budget >= 0.0);
  budget_ = budget;
  rebalance(dirty);
}

std::vector<core::DemandEntry> IncrementalDeprivation::export_demands(
    std::vector<uint32_t>* ids) const {
  std::vector<core::DemandEntry> demands;
  demands.reserve(order_.size());
  if (ids != nullptr) {
    ids->clear();
    ids->reserve(order_.size());
  }
  for (uint32_t id = 0; id < entries_.size(); ++id) {
    const Entry& e = entries_[id];
    if (!e.present) continue;
    demands.push_back(core::DemandEntry{id, 0, e.rate, e.max_lease});
    if (ids != nullptr) ids->push_back(id);
  }
  return demands;
}

void IncrementalDeprivation::replan() {
  std::vector<uint32_t> ids;
  const auto demands = export_demands(&ids);
  const core::LeasePlan plan = core::plan_comm_constrained(demands, budget_);

  deprived_.clear();
  traffic_ = 0.0;
  for (std::size_t k = 0; k < ids.size(); ++k) {
    Entry& e = entries_[ids[k]];
    e.deprived = plan.lengths[k] <= 0.0;
    if (e.deprived) {
      traffic_ += e.rate;
      deprived_.insert(OrderKey{e.rate, ids[k]});
    } else {
      traffic_ += core::renewal_rate(e.max_lease, e.rate);
    }
  }
}

}  // namespace dnscup::planner

// Online lease-planning subsystem (the live form of paper §4.2).
//
// One planner thread owns the sharded demand table and the incremental
// optimizers; worker threads touch the planner through exactly two
// wait-free-for-the-worker paths, so the query hot path never blocks on
// planning:
//
//   observe    worker → planner: a 16-byte Observation enqueued into the
//              worker's own BoundedMpscQueue (try_push — overflow drops
//              and counts, like every other cross-thread feed in the
//              runtime);
//   assignment worker ← planner: a lock-free probe of the demand table's
//              published `planned_bits`.
//
// The planner thread drains all queues, folds each observation through
// the LambdaEstimator into the slot's state, applies the forecast to the
// incremental optimizer (O(log n) frontier maintenance), and publishes
// the changed assignments.  Every replan_interval it additionally runs
// the full batch planner per shard — the drift backstop that makes the
// published plan byte-for-byte the offline optimizer's output again.
//
// Budgets are split evenly across planner shards (like the runtime's
// per-worker policy budgets), so shard planning stays independent.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/policy.h"
#include "planner/demand_table.h"
#include "planner/incremental_plan.h"
#include "planner/lambda_estimator.h"
#include "runtime/mpsc_queue.h"
#include "util/metrics.h"

namespace dnscup::planner {

class LeasePlanner {
 public:
  enum class Mode {
    kStorage,  ///< SLP: cap expected live leases (§4.2.1)
    kComm,     ///< deprivation: cap authority-bound traffic (§4.2.2)
  };

  struct Config {
    Mode mode = Mode::kStorage;
    double storage_budget = 100000;  ///< expected live leases (kStorage)
    double message_budget = 1e6;     ///< messages/second (kComm)
    EstimatorKind estimator = EstimatorKind::kEwma;
    EstimatorParams estimator_params;
    /// Full batch replan cadence (the drift backstop); <= 0 disables.
    net::Duration replan_interval = net::seconds(30);
    int shards = 4;
    /// Total pair capacity, split across shards.
    std::size_t capacity = 1 << 21;
    /// Producer count: one observation queue per worker.
    int workers = 1;
    std::size_t queue_capacity = 8192;
    /// Planner-thread wakeup cadence when no observation arrives.
    net::Duration poll_interval = net::milliseconds(20);
  };

  static std::unique_ptr<LeasePlanner> start(Config config);
  ~LeasePlanner();

  void stop();

  /// The worker's seam into the planner (valid for the planner's
  /// lifetime; workers must stop using it before stop() — the runtime
  /// guarantees that by joining workers first).
  core::LeaseAssignmentSource* handle_for_worker(int worker);

  const Config& config() const { return config_; }

  /// Pairs currently in the demand table, across shards.
  std::size_t pairs() const;
  /// Observations the planner thread has applied (test synchronization).
  uint64_t applied() const {
    return applied_.load(std::memory_order_acquire);
  }
  /// Batch replans completed (test synchronization).
  uint64_t replans() const {
    return replans_.load(std::memory_order_acquire);
  }
  /// Forces a full replan on the next planner-thread iteration.
  void replan_now() {
    force_replan_.store(true, std::memory_order_release);
    wake_.wake();
  }

  /// Snapshot of the planner's registry (planner_* instruments).  Safe
  /// against the planner thread: histogram writes and snapshots share a
  /// mutex; counters/gauges are relaxed atomics.
  metrics::Snapshot metrics(int64_t timestamp_us);

 private:
  struct Observation {
    uint64_t key = 0;
    float rate = 0.0f;
    float max_lease_s = 0.0f;
  };

  struct Shard {
    explicit Shard(std::size_t capacity) : table(capacity) {}
    DemandShard table;
    std::unique_ptr<IncrementalPlanner> plan;
  };

  class WorkerHandle final : public core::LeaseAssignmentSource {
   public:
    WorkerHandle(LeasePlanner* planner,
                 runtime::BoundedMpscQueue<Observation>* queue)
        : planner_(planner), queue_(queue) {}

    Assignment assignment(const net::Endpoint& holder,
                          const dns::Name& name,
                          dns::RRType type) override;
    void observe(const net::Endpoint& holder, const dns::Name& name,
                 dns::RRType type, double rate_qps,
                 double max_lease_s) override;

   private:
    LeasePlanner* planner_;
    runtime::BoundedMpscQueue<Observation>* queue_;
  };

  explicit LeasePlanner(Config config);

  int shard_of(uint64_t key) const {
    // High bits: the low bits pick the probe start inside the shard.
    return static_cast<int>((key >> 56) % static_cast<uint64_t>(
                                shards_.size()));
  }
  core::LeaseAssignmentSource::Assignment lookup(uint64_t key) const;

  void run();
  void drain_and_apply();
  void apply(const Observation& o, std::vector<uint32_t>* dirty);
  /// Writes the current assignment for `id` into its slot; returns true
  /// when the published value changed.
  bool publish(Shard& shard, uint32_t id);
  void maybe_replan();
  void refresh_gauges();

  Config config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  LambdaEstimator estimator_;
  runtime::WakeSignal wake_;
  std::vector<std::unique_ptr<runtime::BoundedMpscQueue<Observation>>>
      queues_;
  std::vector<std::unique_ptr<WorkerHandle>> handles_;
  std::deque<Observation> batch_;  ///< drain scratch (planner thread)
  std::vector<uint32_t> dirty_;    ///< update scratch (planner thread)

  metrics::MetricsRegistry registry_;
  metrics::Gauge pairs_gauge_;
  metrics::Gauge capacity_gauge_;
  metrics::Gauge planned_gauge_;
  metrics::Gauge headroom_gauge_;
  metrics::Counter observations_;
  metrics::Counter dropped_;
  metrics::Counter table_full_;
  metrics::Counter assignments_changed_;
  metrics::HistogramMetric update_latency_us_;
  /// Planner-thread private: sampled-timing phase for update_latency_us_.
  uint64_t timing_sample_ = 0;
  metrics::HistogramMetric replan_latency_us_;
  metrics::HistogramMetric estimator_abs_error_;
  /// Guards the (single-threaded-by-design) histograms between the
  /// planner thread's adds and metrics() snapshots.
  std::mutex stats_mutex_;

  std::atomic<uint64_t> applied_{0};
  std::atomic<uint64_t> replans_{0};
  std::atomic<bool> force_replan_{false};
  std::atomic<bool> stop_{false};
  std::chrono::steady_clock::time_point last_replan_;
  std::thread thread_;
};

}  // namespace dnscup::planner

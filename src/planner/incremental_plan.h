// Incremental versions of the two greedy lease optimizers
// (core/dynamic_lease.h, paper §4.2), maintaining the λ-ordered grant
// frontier under single-pair updates instead of re-sorting the world.
//
// Entries are addressed by a dense id (the demand-table slot index); each
// planner keeps an ordered set of (rate, id) keys using exactly the batch
// planners' comparison — rate order with ascending-id tie-break — so the
// incremental order is the order plan_storage_constrained /
// plan_comm_constrained would sort the same entries into when exported in
// ascending-id order.  An update is an O(log n) set reinsertion plus a
// frontier walk whose length is the number of assignments the update
// actually flips.
//
//  * IncrementalSlp (storage-constrained, §4.2.1) is *exact*: the greedy
//    grant set is the maximal prefix of the λ-descending order whose full
//    lease storage fits the budget, plus one truncated boundary entry —
//    a prefix invariant that single-pair updates repair locally (retreat
//    while over budget, advance while the next full lease fits).
//
//  * IncrementalDeprivation (communication-constrained, §4.2.2) is an
//    approximation: the batch greedy's skip-and-continue scan is path
//    dependent, so the incremental form deprives what it can locally
//    (the updated entry plus a bounded sweep from the smallest-λ end)
//    and re-grants largest-λ-deprived-first when traffic exceeds budget.
//
// Both expose replan(), which literally runs the batch planner over the
// current entries and adopts its output — the periodic drift backstop:
// immediately after replan() the assignment is byte-for-byte what the
// offline planner computes, which is what the equivalence tests certify.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "core/dynamic_lease.h"

namespace dnscup::planner {

/// Common interface the LeasePlanner drives; implementations below.
class IncrementalPlanner {
 public:
  virtual ~IncrementalPlanner() = default;

  /// Upserts entry `id` with a new forecast rate / maximal lease, fixing
  /// the plan around it.  rate <= 0 or max_lease <= 0 removes the entry.
  /// Every id whose assigned length may have changed (always including
  /// `id` itself and the truncation boundary) is appended to `dirty`.
  virtual void update(uint32_t id, double rate, double max_lease,
                      std::vector<uint32_t>* dirty) = 0;

  /// Assigned lease length in seconds (0 = unleased/deprived or absent).
  virtual double lease_for(uint32_t id) const = 0;

  /// Full batch recompute (sort + greedy) adopting the offline planner's
  /// output verbatim.
  virtual void replan() = 0;

  virtual void set_budget(double budget, std::vector<uint32_t>* dirty) = 0;
  virtual double budget() const = 0;
  /// Consumed budget: storage (expected live leases) for SLP, message
  /// rate for deprivation.
  virtual double cost_used() const = 0;
  virtual std::size_t entries() const = 0;
  /// Entries currently assigned a positive lease.
  virtual std::size_t granted() const = 0;
  /// Present entries in ascending id order, as the batch planners would
  /// receive them (tests and replan share this export).
  virtual std::vector<core::DemandEntry> export_demands(
      std::vector<uint32_t>* ids = nullptr) const = 0;
};

/// Storage-constrained dynamic lease (§4.2.1), incremental and exact.
class IncrementalSlp final : public IncrementalPlanner {
 public:
  /// `max_ids` bounds the id space (demand-table slot count).
  IncrementalSlp(std::size_t max_ids, double storage_budget);

  void update(uint32_t id, double rate, double max_lease,
              std::vector<uint32_t>* dirty) override;
  double lease_for(uint32_t id) const override;
  void replan() override;
  void set_budget(double budget, std::vector<uint32_t>* dirty) override;
  double budget() const override { return budget_; }
  double cost_used() const override { return used_; }
  std::size_t entries() const override { return order_.size(); }
  std::size_t granted() const override { return granted_; }
  std::vector<core::DemandEntry> export_demands(
      std::vector<uint32_t>* ids) const override;

 private:
  struct OrderKey {
    double rate;
    uint32_t id;
  };
  /// λ descending, id ascending — plan_storage_constrained's sort order.
  struct Cmp {
    bool operator()(const OrderKey& a, const OrderKey& b) const {
      if (a.rate != b.rate) return a.rate > b.rate;
      return a.id < b.id;
    }
  };
  struct Entry {
    double rate = 0.0;
    double max_lease = 0.0;
    bool present = false;
    bool granted = false;
  };

  uint32_t boundary_id() const;
  /// Restores the maximal-prefix invariant and recomputes the boundary
  /// truncation.
  void fix_frontier(std::vector<uint32_t>* dirty);

  double budget_;
  double used_ = 0.0;        ///< Σ P over fully granted entries
  double trunc_len_ = 0.0;   ///< boundary entry's truncated length
  std::size_t granted_ = 0;  ///< fully granted count
  std::vector<Entry> entries_;
  std::set<OrderKey, Cmp> order_;
  /// First not-fully-granted entry; the granted set is exactly
  /// [order_.begin(), frontier_).
  std::set<OrderKey, Cmp>::iterator frontier_;
};

/// Communication-constrained dynamic lease (§4.2.2), incremental
/// approximation with an exact replan() backstop.
class IncrementalDeprivation final : public IncrementalPlanner {
 public:
  IncrementalDeprivation(std::size_t max_ids, double message_budget);

  void update(uint32_t id, double rate, double max_lease,
              std::vector<uint32_t>* dirty) override;
  double lease_for(uint32_t id) const override;
  void replan() override;
  void set_budget(double budget, std::vector<uint32_t>* dirty) override;
  double budget() const override { return budget_; }
  double cost_used() const override { return traffic_; }
  std::size_t entries() const override { return order_.size(); }
  std::size_t granted() const override {
    return order_.size() - deprived_.size();
  }
  std::vector<core::DemandEntry> export_demands(
      std::vector<uint32_t>* ids) const override;

 private:
  struct OrderKey {
    double rate;
    uint32_t id;
  };
  /// λ ascending, id ascending — plan_comm_constrained's deprivation
  /// order.
  struct Cmp {
    bool operator()(const OrderKey& a, const OrderKey& b) const {
      if (a.rate != b.rate) return a.rate < b.rate;
      return a.id < b.id;
    }
  };
  struct Entry {
    double rate = 0.0;
    double max_lease = 0.0;
    bool present = false;
    bool deprived = false;
  };

  /// Deprives `id` when the added polling traffic fits the budget.
  void try_deprive(uint32_t id, std::vector<uint32_t>* dirty);
  /// Re-grants largest-λ deprived entries while over budget, then runs a
  /// bounded deprivation sweep from the smallest-λ end.
  void rebalance(std::vector<uint32_t>* dirty);

  double budget_;
  double traffic_ = 0.0;  ///< Σ renewals (leased) + Σ λ (deprived)
  std::vector<Entry> entries_;
  std::set<OrderKey, Cmp> order_;     ///< all present entries
  std::set<OrderKey, Cmp> deprived_;  ///< the deprived subset
};

}  // namespace dnscup::planner

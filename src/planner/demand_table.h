// Sharded demand table: the planner's view of every live
// (cache, record) pair, sized for 10M+ pairs.
//
// Memory layout is one arena of 32-byte slots per shard (open-addressed,
// linear probing, power-of-two sized, insert-only).  The concurrency
// contract is single-writer / multi-reader with no locks:
//
//   * the planner thread is the only writer: it upserts slots, runs the
//     estimator over the slot's state, and publishes the assigned lease
//     length into `planned_bits`;
//   * worker threads only ever read two atomic fields — `key` (acquire,
//     to locate a slot) and `planned_bits` (the assignment probe on the
//     grant path).  The estimator fields between them are planner-private,
//     so there is nothing to tear.
//
// Insert-only keeps reads coherent without versioning: a probe chain can
// never be broken by a deletion, and a slot's key never changes once
// published (release store after the payload fields are filled).  Pair
// turnover is handled one level up: the incremental planners assign
// length 0 to pairs whose forecast demand decays to zero, and the table
// is sized (capacity / shards, ~85% max load) so the steady-state pair
// population fits; when a shard fills, new pairs are rejected and counted
// — the authority falls back to its non-planner policy for them.
//
// The pair key is a 64-bit splitmix of (holder endpoint, name hash,
// rrtype).  A collision merges two pairs' demand — harmless for planning
// (the protocol's correctness never depends on the table) and at 10M
// pairs the expected number of 64-bit collisions is ~0.000003.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>

#include "dns/name.h"
#include "dns/rdata.h"
#include "net/endpoint.h"
#include "planner/lambda_estimator.h"

namespace dnscup::planner {

/// Sentinel planned_bits value: pair present but not yet planned (readers
/// must fall back to their own policy).  An all-ones float pattern is a
/// NaN, so it can never alias a real assigned length.
inline constexpr uint32_t kUnplannedBits = 0xFFFFFFFFu;

uint64_t pair_key(const net::Endpoint& holder, std::size_t name_hash,
                  dns::RRType type);

inline uint64_t pair_key(const net::Endpoint& holder, const dns::Name& name,
                         dns::RRType type) {
  return pair_key(holder, name.hash(), type);
}

class DemandShard {
 public:
  struct Slot {
    /// 0 = empty.  Written once (release) after the payload fields.
    std::atomic<uint64_t> key{0};
    /// Last observed rate (q/s) — planner-thread private.
    float observed = 0.0f;
    /// Estimator state — planner-thread private.
    LambdaEstimator::State est;
    /// Maximal lease L_i in seconds — planner-thread private.
    float max_lease_s = 0.0f;
    /// bit_cast of the assigned lease length in seconds, or
    /// kUnplannedBits.  Read by worker threads on the grant path.
    std::atomic<uint32_t> planned_bits{kUnplannedBits};
  };
  static_assert(sizeof(Slot) == 32);

  /// Sizes the arena at the smallest power of two holding `capacity`
  /// entries under ~85% load (minimum 64 slots).
  explicit DemandShard(std::size_t capacity);

  /// Writer (planner thread) only.  Returns the pair's slot, inserting an
  /// empty one when unseen; null when the shard is at capacity
  /// (`inserted` untouched in that case).
  Slot* upsert(uint64_t key, bool* inserted);

  /// Lock-free reader probe; null when the pair is unknown.
  const Slot* find(uint64_t key) const;

  /// Dense per-shard pair id — the slot's arena index.  Stable for the
  /// table's lifetime (insert-only), which is what lets the incremental
  /// planners use it as their entry handle.
  uint32_t index_of(const Slot* slot) const {
    return static_cast<uint32_t>(slot - slots_.get());
  }
  Slot* slot_at(uint32_t id) { return &slots_[id]; }
  const Slot* slot_at(uint32_t id) const { return &slots_[id]; }

  std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return cap_; }
  std::size_t slot_count() const { return mask_ + 1; }

 private:
  std::unique_ptr<Slot[]> slots_;
  uint64_t mask_ = 0;
  std::size_t cap_ = 0;
  /// Relaxed: occupancy telemetry for readers; exact for the writer.
  std::atomic<std::size_t> size_{0};
};

}  // namespace dnscup::planner

#include "planner/lease_planner.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/assert.h"

namespace dnscup::planner {

namespace {

float planned_from_bits(uint32_t bits) {
  return std::bit_cast<float>(bits);
}

uint32_t bits_from_planned(float lease_s) {
  return std::bit_cast<uint32_t>(lease_s);
}

}  // namespace

LeasePlanner::LeasePlanner(Config config)
    : config_(config),
      estimator_(config.estimator, config.estimator_params) {
  if (config_.shards < 1) config_.shards = 1;
  if (config_.workers < 1) config_.workers = 1;
  if (config_.capacity < 1024) config_.capacity = 1024;

  const std::size_t per_shard =
      (config_.capacity + config_.shards - 1) / config_.shards;
  const double budget = config_.mode == Mode::kStorage
                            ? config_.storage_budget
                            : config_.message_budget;
  const double shard_budget = budget / config_.shards;
  shards_.reserve(config_.shards);
  for (int s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>(per_shard);
    const std::size_t slots = shard->table.slot_count();
    if (config_.mode == Mode::kStorage) {
      shard->plan = std::make_unique<IncrementalSlp>(slots, shard_budget);
    } else {
      shard->plan =
          std::make_unique<IncrementalDeprivation>(slots, shard_budget);
    }
    shards_.push_back(std::move(shard));
  }

  for (int w = 0; w < config_.workers; ++w) {
    queues_.push_back(std::make_unique<runtime::BoundedMpscQueue<Observation>>(
        config_.queue_capacity, &wake_));
    handles_.push_back(
        std::make_unique<WorkerHandle>(this, queues_.back().get()));
  }

  pairs_gauge_ = registry_.gauge("planner_pairs");
  capacity_gauge_ = registry_.gauge("planner_capacity");
  capacity_gauge_.set(static_cast<double>(
      static_cast<std::size_t>(config_.shards) * per_shard));
  planned_gauge_ = registry_.gauge("planner_granted_pairs");
  headroom_gauge_ = registry_.gauge("planner_budget_headroom");
  headroom_gauge_.set(budget);
  observations_ = registry_.counter("planner_observations");
  dropped_ = registry_.counter("planner_observations_dropped");
  table_full_ = registry_.counter("planner_table_full");
  assignments_changed_ = registry_.counter("planner_assignments_changed");
  update_latency_us_ = registry_.histogram("planner_update_latency_us");
  replan_latency_us_ = registry_.histogram("planner_replan_latency_us");
  estimator_abs_error_ = registry_.histogram("planner_estimator_abs_error");
}

std::unique_ptr<LeasePlanner> LeasePlanner::start(Config config) {
  auto planner = std::unique_ptr<LeasePlanner>(new LeasePlanner(config));
  planner->last_replan_ = std::chrono::steady_clock::now();
  planner->thread_ = std::thread([p = planner.get()] { p->run(); });
  return planner;
}

LeasePlanner::~LeasePlanner() { stop(); }

void LeasePlanner::stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  wake_.wake();
  if (thread_.joinable()) thread_.join();
}

core::LeaseAssignmentSource* LeasePlanner::handle_for_worker(int worker) {
  DNSCUP_ASSERT(worker >= 0 &&
                worker < static_cast<int>(handles_.size()));
  return handles_[static_cast<std::size_t>(worker)].get();
}

std::size_t LeasePlanner::pairs() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->table.size();
  return total;
}

core::LeaseAssignmentSource::Assignment LeasePlanner::lookup(
    uint64_t key) const {
  const Shard& shard = *shards_[static_cast<std::size_t>(shard_of(key))];
  const DemandShard::Slot* slot = shard.table.find(key);
  if (slot == nullptr) return {};
  const uint32_t bits = slot->planned_bits.load(std::memory_order_relaxed);
  if (bits == kUnplannedBits) return {};
  return {true, static_cast<double>(planned_from_bits(bits))};
}

core::LeaseAssignmentSource::Assignment
LeasePlanner::WorkerHandle::assignment(const net::Endpoint& holder,
                                       const dns::Name& name,
                                       dns::RRType type) {
  return planner_->lookup(pair_key(holder, name, type));
}

void LeasePlanner::WorkerHandle::observe(const net::Endpoint& holder,
                                         const dns::Name& name,
                                         dns::RRType type, double rate_qps,
                                         double max_lease_s) {
  Observation o;
  o.key = pair_key(holder, name, type);
  o.rate = static_cast<float>(rate_qps);
  o.max_lease_s = static_cast<float>(max_lease_s);
  if (queue_->try_push(o)) {
    planner_->observations_.inc();
  } else {
    planner_->dropped_.inc();
  }
}

void LeasePlanner::run() {
  const auto poll = std::chrono::microseconds(
      std::max<net::Duration>(config_.poll_interval, net::milliseconds(1)));
  while (!stop_.load(std::memory_order_acquire)) {
    wake_.wait_for(poll);
    drain_and_apply();
    maybe_replan();
    refresh_gauges();
  }
  // Final drain so tests (and a clean shutdown) never strand queued
  // observations.
  drain_and_apply();
  refresh_gauges();
}

void LeasePlanner::drain_and_apply() {
  std::size_t applied_this_round = 0;
  for (auto& queue : queues_) {
    queue->drain(batch_);
    if (batch_.empty()) continue;
    std::lock_guard lock(stats_mutex_);
    for (const Observation& o : batch_) {
      // Sampled timing (1 in 64): two clock reads per observation would
      // dominate the drain at serve-path observation rates.
      const bool timed = (timing_sample_++ & 63u) == 0;
      const auto t0 = timed ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
      apply(o, &dirty_);
      if (timed) {
        const auto dt = std::chrono::steady_clock::now() - t0;
        update_latency_us_.add(
            std::chrono::duration<double, std::micro>(dt).count());
      }
      ++applied_this_round;
    }
  }
  if (applied_this_round > 0) {
    applied_.fetch_add(applied_this_round, std::memory_order_acq_rel);
  }
}

void LeasePlanner::apply(const Observation& o,
                         std::vector<uint32_t>* dirty) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_of(o.key))];
  bool inserted = false;
  DemandShard::Slot* slot = shard.table.upsert(o.key, &inserted);
  if (slot == nullptr) {
    table_full_.inc();
    return;
  }
  if (inserted) {
    slot->est = {};
  } else if (slot->est.seeded()) {
    estimator_abs_error_.add(
        std::abs(estimator_.forecast(slot->est) -
                 static_cast<double>(o.rate)));
  }
  slot->observed = o.rate;
  slot->max_lease_s = o.max_lease_s;
  const double forecast =
      estimator_.update(slot->est, static_cast<double>(o.rate));

  dirty->clear();
  const uint32_t id = shard.table.index_of(slot);
  // A zero forecast removes the pair from the optimization (lease 0);
  // the slot stays, and the next positive observation re-plans it.
  shard.plan->update(id, forecast,
                     static_cast<double>(o.max_lease_s), dirty);
  bool self_published = false;
  for (const uint32_t d : *dirty) {
    if (publish(shard, d)) assignments_changed_.inc();
    self_published |= d == id;
  }
  // The pair must read as "planned" from its first processed observation
  // even if its assignment stayed at the default.
  if (!self_published) publish(shard, id);
}

bool LeasePlanner::publish(Shard& shard, uint32_t id) {
  DemandShard::Slot* slot = shard.table.slot_at(id);
  if (slot->key.load(std::memory_order_relaxed) == 0) return false;
  const uint32_t bits = bits_from_planned(
      static_cast<float>(shard.plan->lease_for(id)));
  const uint32_t prev = slot->planned_bits.load(std::memory_order_relaxed);
  if (prev == bits) return false;
  slot->planned_bits.store(bits, std::memory_order_relaxed);
  return prev != kUnplannedBits;
}

void LeasePlanner::maybe_replan() {
  const bool forced =
      force_replan_.exchange(false, std::memory_order_acq_rel);
  if (config_.replan_interval <= 0 && !forced) return;
  const auto now = std::chrono::steady_clock::now();
  if (!forced &&
      now - last_replan_ <
          std::chrono::microseconds(config_.replan_interval)) {
    return;
  }
  last_replan_ = now;

  const auto t0 = std::chrono::steady_clock::now();
  uint64_t changed = 0;
  {
    std::lock_guard lock(stats_mutex_);
    for (auto& shard : shards_) {
      shard->plan->replan();
      // Re-publish every present pair: the batch plan is authoritative
      // for all of them, not just recently-updated ids.
      const std::size_t slots = shard->table.slot_count();
      for (uint32_t id = 0; id < slots; ++id) {
        if (publish(*shard, id)) ++changed;
      }
    }
    const auto dt = std::chrono::steady_clock::now() - t0;
    replan_latency_us_.add(
        std::chrono::duration<double, std::micro>(dt).count());
  }
  assignments_changed_.inc(changed);
  replans_.fetch_add(1, std::memory_order_acq_rel);
}

void LeasePlanner::refresh_gauges() {
  pairs_gauge_.set(static_cast<double>(pairs()));
  std::size_t granted = 0;
  double headroom = 0.0;
  for (const auto& shard : shards_) {
    granted += shard->plan->granted();
    headroom += shard->plan->budget() - shard->plan->cost_used();
  }
  planned_gauge_.set(static_cast<double>(granted));
  headroom_gauge_.set(headroom);
}

metrics::Snapshot LeasePlanner::metrics(int64_t timestamp_us) {
  std::lock_guard lock(stats_mutex_);
  return registry_.snapshot(timestamp_us);
}

}  // namespace dnscup::planner

#include "planner/demand_table.h"

#include "util/hash.h"

namespace dnscup::planner {

namespace {

/// splitmix64 finalizer (util/hash.h): full-avalanche mix so linear
/// probing sees a uniform key distribution regardless of the inputs'
/// structure.
uint64_t mix(uint64_t x) { return util::splitmix64_mix(x); }

}  // namespace

uint64_t pair_key(const net::Endpoint& holder, std::size_t name_hash,
                  dns::RRType type) {
  const uint64_t endpoint =
      (static_cast<uint64_t>(holder.ip) << 16) | holder.port;
  uint64_t key = mix(mix(endpoint) ^ static_cast<uint64_t>(name_hash) ^
                     (static_cast<uint64_t>(type) * 0x9E3779B97F4A7C15ull));
  // 0 is the empty-slot sentinel; remap the (astronomically unlikely)
  // real key 0.
  return key == 0 ? 1 : key;
}

DemandShard::DemandShard(std::size_t capacity) {
  cap_ = capacity < 16 ? 16 : capacity;
  // ~85% max load; the probe chain length stays short and there is
  // always at least one empty slot to terminate reader probes.
  std::size_t slots = std::bit_ceil(cap_ + cap_ / 6 + 1);
  if (slots < 64) slots = 64;
  slots_ = std::make_unique<Slot[]>(slots);
  mask_ = slots - 1;
}

DemandShard::Slot* DemandShard::upsert(uint64_t key, bool* inserted) {
  uint64_t i = key & mask_;
  for (;;) {
    Slot& slot = slots_[i];
    const uint64_t k = slot.key.load(std::memory_order_relaxed);
    if (k == key) {
      if (inserted != nullptr) *inserted = false;
      return &slot;
    }
    if (k == 0) {
      if (size_.load(std::memory_order_relaxed) >= cap_) return nullptr;
      // Publish after the payload defaults are in place: a racing reader
      // that observes the key must also observe planned_bits ==
      // kUnplannedBits (its construction default — never written between
      // construction and here), so the release pairs with readers'
      // acquire on `key`.
      size_.fetch_add(1, std::memory_order_relaxed);
      slot.key.store(key, std::memory_order_release);
      if (inserted != nullptr) *inserted = true;
      return &slot;
    }
    i = (i + 1) & mask_;
  }
}

const DemandShard::Slot* DemandShard::find(uint64_t key) const {
  uint64_t i = key & mask_;
  for (;;) {
    const Slot& slot = slots_[i];
    const uint64_t k = slot.key.load(std::memory_order_acquire);
    if (k == key) return &slot;
    if (k == 0) return nullptr;  // insert-only: chains never break
    i = (i + 1) & mask_;
  }
}

}  // namespace dnscup::planner

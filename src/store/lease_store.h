// LeaseStore: the durable lease-state store of the DNScup authority.
//
// Implements core::StateJournal over a CRC-framed, segment-rotating
// write-ahead log plus periodic compacting snapshots (see wal.h and
// snapshot.h for the on-disk formats).  Opening the store performs crash
// recovery:
//
//   1. load the newest snapshot whose CRC verifies (falling back to older
//      snapshots when the newest is corrupt);
//   2. replay the WAL tail — every record above the snapshot's LSN — onto
//      that state, truncating torn trailing records;
//   3. hand the surviving lease set and zone serials back to the caller
//      and start a fresh WAL segment for new appends.
//
// Durability knobs: FsyncPolicy controls how often appended records are
// fsynced (every record / every N records / never), snapshots compact the
// log and unlink covered segments.  An I/O failure latches the store into
// a degraded read-only state (healthy() == false) rather than crashing
// the authority: in-memory protocol state stays correct, durability is
// reported lost through metrics and the status API.
//
// All store operations publish through the metrics registry:
// store_append_latency_us / store_fsync_latency_us histograms,
// store_records{type=...} counters, store_wal_segments / store_wal_bytes
// gauges, store_snapshots_written, and the recovery family
// (store_recovery_duration_us, store_replayed_records,
// store_torn_records, store_recovered_leases).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/persistence.h"
#include "core/track_file.h"
#include "store/snapshot.h"
#include "store/storage.h"
#include "store/wal.h"
#include "util/metrics.h"
#include "util/result.h"

namespace dnscup::store {

/// When appended WAL records reach stable storage.
enum class FsyncPolicy {
  kNever,     ///< leave flushing to the OS (fastest, weakest)
  kInterval,  ///< fsync every Config::fsync_interval appends
  kAlways,    ///< fsync after every record (strongest, default)
};

util::Result<FsyncPolicy> fsync_policy_from_string(std::string_view text);
const char* to_string(FsyncPolicy policy);

class LeaseStore final : public core::StateJournal {
 public:
  struct Config {
    std::string dir;                      ///< state directory (required)
    FsyncPolicy fsync = FsyncPolicy::kAlways;
    uint32_t fsync_interval = 64;         ///< appends per fsync (kInterval)
    uint64_t segment_bytes = 1 << 20;     ///< WAL rotation threshold
    /// maybe_snapshot() compacts once this many records accumulated since
    /// the last snapshot.
    uint64_t snapshot_every_records = 4096;
    /// Registry for store_* instruments (default_registry() when null).
    metrics::MetricsRegistry* metrics = nullptr;
  };

  /// Opens the store and runs crash recovery; `recovered` (required)
  /// receives the surviving state.  The storage backend must outlive the
  /// store.
  static util::Result<std::unique_ptr<LeaseStore>> open(
      Storage* storage, Config config, core::RecoveredState* recovered);

  // StateJournal -----------------------------------------------------------
  void record_grant(const core::Lease& lease, bool renewal) override;
  void record_revoke(const net::Endpoint& holder, const dns::Name& name,
                     dns::RRType type) override;
  void record_prune(net::SimTime now) override;
  void record_zone_serial(const dns::Name& origin, uint32_t serial) override;

  // Snapshots --------------------------------------------------------------
  /// Writes a snapshot of `track` (all tuples, expired included) and the
  /// known zone serials, then unlinks covered WAL segments and stale
  /// snapshots.
  util::Status write_snapshot(const core::TrackFile& track, net::SimTime now);
  /// write_snapshot, but only once snapshot_every_records appends have
  /// accumulated; cheap to call on every change event.
  util::Status maybe_snapshot(const core::TrackFile& track, net::SimTime now);

  /// Forces appended records to stable storage regardless of policy.
  util::Status sync();

  /// False once an I/O failure latched the store degraded: appends are
  /// dropped (in-memory state stays authoritative, durability is lost).
  bool healthy() const { return healthy_; }
  uint64_t records_since_snapshot() const { return records_since_snapshot_; }
  uint64_t next_lsn() const { return wal_->next_lsn(); }

 private:
  LeaseStore(Storage* storage, Config config);

  void append(const WalRecord& record);
  void refresh_wal_gauges();

  Storage* storage_;
  Config config_;
  std::unique_ptr<WalWriter> wal_;
  std::map<dns::Name, uint32_t> zone_serials_;
  uint64_t snapshot_lsn_ = 0;           ///< last snapshot's covered LSN
  uint64_t records_since_snapshot_ = 0;
  uint64_t appends_since_sync_ = 0;
  bool healthy_ = true;

  struct Instruments {
    metrics::HistogramMetric append_latency_us;
    metrics::HistogramMetric fsync_latency_us;
    metrics::Counter records_grant;
    metrics::Counter records_renew;
    metrics::Counter records_revoke;
    metrics::Counter records_prune;
    metrics::Counter records_zone_serial;
    metrics::Counter io_errors;
    metrics::Counter snapshots_written;
    metrics::Gauge wal_segments;
    metrics::Gauge wal_bytes;
    metrics::Gauge recovery_duration_us;
    metrics::Counter replayed_records;
    metrics::Counter torn_records;
    metrics::Gauge recovered_leases;
  } stats_;
};

}  // namespace dnscup::store

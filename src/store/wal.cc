#include "store/wal.h"

#include <charconv>
#include <cstdio>

#include "dns/wire.h"
#include "util/assert.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace dnscup::store {

namespace {

constexpr uint8_t kSegmentMagic[8] = {'D', 'C', 'U', 'P',
                                      'W', 'A', 'L', 0x01};
constexpr std::size_t kSegmentHeaderBytes = 16;
constexpr std::size_t kFrameHeaderBytes = 8;

void put_u64(dns::ByteWriter& writer, uint64_t v) {
  writer.u32(static_cast<uint32_t>(v >> 32));
  writer.u32(static_cast<uint32_t>(v));
}

util::Result<uint64_t> get_u64(dns::ByteReader& reader) {
  DNSCUP_ASSIGN_OR_RETURN(uint32_t hi, reader.u32());
  DNSCUP_ASSIGN_OR_RETURN(uint32_t lo, reader.u32());
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

void put_name(dns::ByteWriter& writer, const dns::Name& name) {
  const std::string text = name.to_string();
  DNSCUP_ASSERT(text.size() <= UINT16_MAX);
  writer.u16(static_cast<uint16_t>(text.size()));
  writer.bytes(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(text.data()), text.size()));
}

util::Result<dns::Name> get_name(dns::ByteReader& reader) {
  DNSCUP_ASSIGN_OR_RETURN(uint16_t len, reader.u16());
  DNSCUP_ASSIGN_OR_RETURN(std::span<const uint8_t> raw, reader.bytes(len));
  return dns::Name::parse(
      std::string_view(reinterpret_cast<const char*>(raw.data()), raw.size()));
}

void put_lease_key(dns::ByteWriter& writer, const core::Lease& lease) {
  writer.u32(lease.holder.ip);
  writer.u16(lease.holder.port);
  writer.u16(static_cast<uint16_t>(lease.type));
  put_name(writer, lease.name);
}

util::Status get_lease_key(dns::ByteReader& reader, core::Lease& lease) {
  DNSCUP_ASSIGN_OR_RETURN(lease.holder.ip, reader.u32());
  DNSCUP_ASSIGN_OR_RETURN(lease.holder.port, reader.u16());
  uint16_t type = 0;
  DNSCUP_ASSIGN_OR_RETURN(type, reader.u16());
  lease.type = static_cast<dns::RRType>(type);
  DNSCUP_ASSIGN_OR_RETURN(lease.name, get_name(reader));
  return util::Status();
}

}  // namespace

const char* to_string(WalRecordType type) {
  switch (type) {
    case WalRecordType::kGrant: return "grant";
    case WalRecordType::kRenew: return "renew";
    case WalRecordType::kRevoke: return "revoke";
    case WalRecordType::kPrune: return "prune";
    case WalRecordType::kZoneSerial: return "zone-serial";
  }
  return "unknown";
}

std::vector<uint8_t> encode_wal_record(const WalRecord& record) {
  dns::ByteWriter writer;
  writer.u8(static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kGrant:
    case WalRecordType::kRenew:
      put_lease_key(writer, record.lease);
      put_u64(writer, static_cast<uint64_t>(record.lease.granted_at));
      put_u64(writer, static_cast<uint64_t>(record.lease.length));
      break;
    case WalRecordType::kRevoke:
      put_lease_key(writer, record.lease);
      break;
    case WalRecordType::kPrune:
      put_u64(writer, static_cast<uint64_t>(record.prune_now));
      break;
    case WalRecordType::kZoneSerial:
      writer.u32(record.serial);
      put_name(writer, record.origin);
      break;
  }
  return writer.take();
}

util::Result<WalRecord> decode_wal_record(std::span<const uint8_t> payload) {
  dns::ByteReader reader(payload);
  WalRecord record;
  DNSCUP_ASSIGN_OR_RETURN(uint8_t raw_type, reader.u8());
  record.type = static_cast<WalRecordType>(raw_type);
  switch (record.type) {
    case WalRecordType::kGrant:
    case WalRecordType::kRenew: {
      DNSCUP_TRY(get_lease_key(reader, record.lease));
      DNSCUP_ASSIGN_OR_RETURN(uint64_t granted, get_u64(reader));
      DNSCUP_ASSIGN_OR_RETURN(uint64_t length, get_u64(reader));
      record.lease.granted_at = static_cast<net::SimTime>(granted);
      record.lease.length = static_cast<net::Duration>(length);
      break;
    }
    case WalRecordType::kRevoke: {
      DNSCUP_TRY(get_lease_key(reader, record.lease));
      break;
    }
    case WalRecordType::kPrune: {
      DNSCUP_ASSIGN_OR_RETURN(uint64_t now, get_u64(reader));
      record.prune_now = static_cast<net::SimTime>(now);
      break;
    }
    case WalRecordType::kZoneSerial: {
      DNSCUP_ASSIGN_OR_RETURN(record.serial, reader.u32());
      DNSCUP_ASSIGN_OR_RETURN(record.origin, get_name(reader));
      break;
    }
    default:
      return util::make_error(util::ErrorCode::kMalformed,
                              "unknown WAL record type");
  }
  if (!reader.at_end()) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "trailing bytes in WAL record");
  }
  return record;
}

std::string wal_segment_name(uint64_t first_lsn) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "wal-%016llx.log",
                static_cast<unsigned long long>(first_lsn));
  return buf;
}

util::Result<std::vector<std::pair<uint64_t, std::string>>> list_wal_segments(
    Storage* storage, const std::string& dir) {
  DNSCUP_ASSIGN_OR_RETURN(std::vector<std::string> names, storage->list(dir));
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : names) {
    if (name.size() != 4 + 16 + 4 || name.rfind("wal-", 0) != 0 ||
        name.compare(name.size() - 4, 4, ".log") != 0) {
      continue;
    }
    uint64_t first_lsn = 0;
    const char* begin = name.data() + 4;
    const auto [ptr, ec] = std::from_chars(begin, begin + 16, first_lsn, 16);
    if (ec != std::errc() || ptr != begin + 16) continue;
    segments.emplace_back(first_lsn, name);
  }
  // `names` is sorted and the hex field is fixed-width, so `segments` is
  // already ordered by first_lsn.
  return segments;
}

// ---- WalWriter ------------------------------------------------------------

util::Result<std::unique_ptr<WalWriter>> WalWriter::open(
    Storage* storage, const std::string& dir, uint64_t next_lsn,
    WalOptions options) {
  DNSCUP_ASSERT(next_lsn >= 1);
  auto writer = std::unique_ptr<WalWriter>(
      new WalWriter(storage, dir, next_lsn, options));
  DNSCUP_TRY(writer->open_segment());
  return writer;
}

util::Status WalWriter::open_segment() {
  segment_path_ = dir_ + "/" + wal_segment_name(next_lsn_);
  DNSCUP_ASSIGN_OR_RETURN(file_, storage_->open_append(segment_path_));
  if (file_->size() != 0) {
    return util::make_error(util::ErrorCode::kExists,
                            "WAL segment already exists: " + segment_path_);
  }
  dns::ByteWriter header;
  header.bytes(kSegmentMagic);
  put_u64(header, next_lsn_);
  return file_->append(header.data());
}

util::Status WalWriter::append(const WalRecord& record) {
  if (file_->size() >= options_.segment_bytes) {
    DNSCUP_TRY(file_->sync());
    DNSCUP_TRY(open_segment());
  }
  const std::vector<uint8_t> payload = encode_wal_record(record);
  dns::ByteWriter frame;
  frame.u32(static_cast<uint32_t>(payload.size()));
  frame.u32(util::crc32(payload));
  frame.bytes(payload);
  // One append call per frame: a short write tears at most this record.
  DNSCUP_TRY(file_->append(frame.data()));
  ++next_lsn_;
  return util::Status();
}

util::Status WalWriter::sync() { return file_->sync(); }

util::Status WalWriter::rotate() {
  if (file_->size() <= kSegmentHeaderBytes) return util::Status();
  DNSCUP_TRY(file_->sync());
  return open_segment();
}

uint64_t WalWriter::active_segment_bytes() const { return file_->size(); }

// ---- Replay ---------------------------------------------------------------

namespace {

/// Reads the frames of one segment, calling `fn` for records above
/// `after_lsn`.  Returns the byte offset where a tear was found, or the
/// file size if the segment is clean.
struct SegmentScan {
  uint64_t valid_end = 0;   ///< offset of the first invalid byte
  uint64_t records = 0;     ///< valid records in the segment
  uint64_t replayed = 0;
  uint64_t skipped = 0;
  bool torn = false;
};

SegmentScan scan_segment(
    std::span<const uint8_t> data, uint64_t first_lsn, uint64_t after_lsn,
    const std::function<void(uint64_t lsn, const WalRecord&)>& fn) {
  SegmentScan scan;
  std::size_t pos = kSegmentHeaderBytes;
  while (pos < data.size()) {
    if (pos + kFrameHeaderBytes > data.size()) break;
    dns::ByteReader header(data.subspan(pos, kFrameHeaderBytes));
    const uint32_t len = header.u32().value();
    const uint32_t crc = header.u32().value();
    if (pos + kFrameHeaderBytes + len > data.size()) break;
    const auto payload = data.subspan(pos + kFrameHeaderBytes, len);
    if (util::crc32(payload) != crc) break;
    auto record = decode_wal_record(payload);
    if (!record.ok()) break;
    const uint64_t lsn = first_lsn + scan.records;
    ++scan.records;
    if (lsn > after_lsn) {
      fn(lsn, record.value());
      ++scan.replayed;
    } else {
      ++scan.skipped;
    }
    pos += kFrameHeaderBytes + len;
  }
  scan.valid_end = pos;
  scan.torn = pos < data.size();
  return scan;
}

}  // namespace

util::Result<WalReplayStats> replay_wal(
    Storage* storage, const std::string& dir, uint64_t after_lsn,
    const std::function<void(uint64_t lsn, const WalRecord&)>& fn) {
  DNSCUP_ASSIGN_OR_RETURN(auto segments, list_wal_segments(storage, dir));
  WalReplayStats stats;
  stats.next_lsn = after_lsn + 1;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& [first_lsn, name] = segments[i];
    const std::string path = dir + "/" + name;
    DNSCUP_ASSIGN_OR_RETURN(std::vector<uint8_t> data, storage->read(path));
    ++stats.segments;

    // Header check: a segment created but torn before its header landed is
    // dropped whole; a header that disagrees with the file name means the
    // log is not trustworthy.
    bool header_ok = data.size() >= kSegmentHeaderBytes &&
                     std::equal(kSegmentMagic, kSegmentMagic + 8, data.data());
    if (header_ok) {
      dns::ByteReader reader(
          std::span<const uint8_t>(data).subspan(8, 8));
      header_ok = get_u64(reader).value() == first_lsn;
    }
    if (!header_ok) {
      if (i + 1 != segments.size()) {
        return util::make_error(util::ErrorCode::kMalformed,
                                "corrupt WAL segment header: " + path);
      }
      ++stats.torn;
      DNSCUP_TRY(storage->remove(path));
      break;
    }

    // A segment starting past everything seen so far means records are
    // missing in between — that is loss, not a tear, so fail loudly.
    if (first_lsn > stats.next_lsn) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "gap in WAL before " + path);
    }

    const SegmentScan scan = scan_segment(data, first_lsn, after_lsn, fn);
    stats.replayed += scan.replayed;
    stats.skipped += scan.skipped;
    const uint64_t end_lsn = first_lsn + scan.records;
    if (end_lsn > stats.next_lsn) stats.next_lsn = end_lsn;

    if (scan.torn) {
      // Everything from the tear on is unusable: truncate this segment and
      // unlink any later ones (their records would leave a gap).  A segment
      // with no surviving records is removed outright so the next writer
      // can reopen its LSN.
      ++stats.torn;
      DNSCUP_LOG_WARN("wal: torn record in %s at offset %llu; truncating",
                      path.c_str(),
                      static_cast<unsigned long long>(scan.valid_end));
      if (scan.records == 0) {
        DNSCUP_TRY(storage->remove(path));
      } else {
        DNSCUP_TRY(storage->truncate(path, scan.valid_end));
      }
      for (std::size_t j = i + 1; j < segments.size(); ++j) {
        DNSCUP_TRY(storage->remove(dir + "/" + segments[j].second));
        ++stats.segments_dropped;
      }
      break;
    }
    if (i + 1 == segments.size() && scan.records == 0) {
      // Header-only active segment (crash right after rotation): remove it
      // so the next writer can recreate the same LSN cleanly.
      DNSCUP_TRY(storage->remove(path));
    }
  }
  return stats;
}

}  // namespace dnscup::store

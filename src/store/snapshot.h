// Compacting snapshots of the authority's durable state: the full lease
// table (the TrackFile, expired-but-unpruned tuples included) plus the
// last known serial of every zone.
//
// File layout (big-endian, dns::ByteWriter):
//
//     "DCUPSNP\x01"
//     u64 last_lsn       — the WAL position this snapshot covers
//     u64 as_of          — sim time at capture (informational)
//     u32 zone_count     { u32 serial, u16 origin_len, origin }*
//     u32 lease_count    { u32 ip, u16 port, u16 rrtype,
//                          u64 granted_at, u64 length,
//                          u16 name_len, name }*
//     u32 crc32          — over everything after the magic
//
// Snapshots are written with Storage::write_atomic, so a crash leaves the
// previous snapshot intact; recovery picks the newest snapshot whose CRC
// verifies and falls back to older ones.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/track_file.h"
#include "store/storage.h"
#include "util/result.h"

namespace dnscup::store {

struct SnapshotData {
  uint64_t last_lsn = 0;
  net::SimTime as_of = 0;
  std::vector<core::Lease> leases;
  std::map<dns::Name, uint32_t> zone_serials;
};

std::vector<uint8_t> encode_snapshot(const SnapshotData& snapshot);
util::Result<SnapshotData> decode_snapshot(std::span<const uint8_t> data);

/// Basename of the snapshot covering the WAL through `last_lsn`.
std::string snapshot_file_name(uint64_t last_lsn);

/// (last_lsn, basename) pairs of the snapshot-*.snap files in `dir`,
/// sorted ascending by last_lsn.
util::Result<std::vector<std::pair<uint64_t, std::string>>> list_snapshots(
    Storage* storage, const std::string& dir);

}  // namespace dnscup::store

#include "store/lease_store.h"

#include <chrono>
#include <tuple>

#include "util/assert.h"
#include "util/logging.h"

namespace dnscup::store {

namespace {

int64_t wall_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

using LeaseKey = std::tuple<net::Endpoint, dns::Name, dns::RRType>;

LeaseKey key_of(const core::Lease& lease) {
  return {lease.holder, lease.name, lease.type};
}

}  // namespace

util::Result<FsyncPolicy> fsync_policy_from_string(std::string_view text) {
  if (text == "always") return FsyncPolicy::kAlways;
  if (text == "interval") return FsyncPolicy::kInterval;
  if (text == "never") return FsyncPolicy::kNever;
  return util::make_error(util::ErrorCode::kInvalidArgument,
                          "unknown fsync policy: " + std::string(text));
}

const char* to_string(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever: return "never";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kAlways: return "always";
  }
  return "unknown";
}

LeaseStore::LeaseStore(Storage* storage, Config config)
    : storage_(storage), config_(std::move(config)) {
  auto& registry = metrics::resolve(config_.metrics);
  auto typed = [&](const char* type) {
    return metrics::Labels{{"type", type}};
  };
  stats_.append_latency_us = registry.histogram(
      "store_append_latency_us", {}, metrics::HistogramOptions{0.0, 50'000.0, 20});
  stats_.fsync_latency_us = registry.histogram(
      "store_fsync_latency_us", {}, metrics::HistogramOptions{0.0, 50'000.0, 20});
  stats_.records_grant = registry.counter("store_records", typed("grant"));
  stats_.records_renew = registry.counter("store_records", typed("renew"));
  stats_.records_revoke = registry.counter("store_records", typed("revoke"));
  stats_.records_prune = registry.counter("store_records", typed("prune"));
  stats_.records_zone_serial =
      registry.counter("store_records", typed("zone-serial"));
  stats_.io_errors = registry.counter("store_io_errors");
  stats_.snapshots_written = registry.counter("store_snapshots_written");
  stats_.wal_segments = registry.gauge("store_wal_segments");
  stats_.wal_bytes = registry.gauge("store_wal_bytes");
  stats_.recovery_duration_us = registry.gauge("store_recovery_duration_us");
  stats_.replayed_records = registry.counter("store_replayed_records");
  stats_.torn_records = registry.counter("store_torn_records");
  stats_.recovered_leases = registry.gauge("store_recovered_leases");
}

util::Result<std::unique_ptr<LeaseStore>> LeaseStore::open(
    Storage* storage, Config config, core::RecoveredState* recovered) {
  DNSCUP_ASSERT(storage != nullptr && recovered != nullptr);
  DNSCUP_ASSERT(!config.dir.empty());
  const int64_t started = wall_us();
  DNSCUP_TRY(storage->create_dir(config.dir));
  auto store =
      std::unique_ptr<LeaseStore>(new LeaseStore(storage, std::move(config)));
  const Config& cfg = store->config_;

  // 1. Newest snapshot whose CRC verifies; corrupt ones are skipped (and
  // counted) so a torn snapshot write degrades to the previous one.
  SnapshotData base;
  DNSCUP_ASSIGN_OR_RETURN(auto snapshots,
                          list_snapshots(storage, cfg.dir));
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    const std::string path = cfg.dir + "/" + it->second;
    auto bytes = storage->read(path);
    if (bytes.ok()) {
      auto decoded = decode_snapshot(bytes.value());
      if (decoded.ok()) {
        base = std::move(decoded).value();
        break;
      }
      DNSCUP_LOG_WARN("store: corrupt snapshot %s (%s); falling back",
                      path.c_str(), decoded.error().to_string().c_str());
    }
    ++store->stats_.io_errors;
  }

  std::map<LeaseKey, core::Lease> leases;
  for (const core::Lease& lease : base.leases) leases[key_of(lease)] = lease;
  store->zone_serials_ = std::move(base.zone_serials);
  store->snapshot_lsn_ = base.last_lsn;

  // 2. Replay the WAL tail above the snapshot.
  auto replayed = replay_wal(
      storage, cfg.dir, base.last_lsn,
      [&](uint64_t, const WalRecord& record) {
        switch (record.type) {
          case WalRecordType::kGrant:
          case WalRecordType::kRenew:
            leases[key_of(record.lease)] = record.lease;
            break;
          case WalRecordType::kRevoke:
            leases.erase(key_of(record.lease));
            break;
          case WalRecordType::kPrune:
            for (auto it = leases.begin(); it != leases.end();) {
              it = it->second.valid(record.prune_now) ? std::next(it)
                                                      : leases.erase(it);
            }
            break;
          case WalRecordType::kZoneSerial:
            store->zone_serials_[record.origin] = record.serial;
            break;
        }
      });
  DNSCUP_TRY(replayed);
  const WalReplayStats& wal_stats = replayed.value();

  // 3. Fresh segment for new appends.
  DNSCUP_ASSIGN_OR_RETURN(
      store->wal_, WalWriter::open(storage, cfg.dir, wal_stats.next_lsn,
                                   WalOptions{cfg.segment_bytes}));
  store->records_since_snapshot_ =
      wal_stats.next_lsn - 1 - store->snapshot_lsn_;

  recovered->leases.clear();
  recovered->leases.reserve(leases.size());
  for (auto& [key, lease] : leases) recovered->leases.push_back(lease);
  recovered->zone_serials = store->zone_serials_;
  recovered->snapshot_lsn = store->snapshot_lsn_;
  recovered->replayed_records = wal_stats.replayed;
  recovered->torn_records = wal_stats.torn;
  recovered->duration_us = wall_us() - started;

  store->stats_.recovery_duration_us.set(
      static_cast<double>(recovered->duration_us));
  store->stats_.replayed_records += wal_stats.replayed;
  store->stats_.torn_records += wal_stats.torn;
  store->stats_.recovered_leases.set(
      static_cast<double>(recovered->leases.size()));
  store->refresh_wal_gauges();
  return store;
}

void LeaseStore::append(const WalRecord& record) {
  if (!healthy_) return;
  const int64_t start = wall_us();
  util::Status status = wal_->append(record);
  stats_.append_latency_us.add(static_cast<double>(wall_us() - start));
  if (!status.ok()) {
    DNSCUP_LOG_WARN("store: WAL append failed (%s); degrading to in-memory",
                    status.error().to_string().c_str());
    ++stats_.io_errors;
    healthy_ = false;
    return;
  }
  ++records_since_snapshot_;
  stats_.wal_bytes.set(static_cast<double>(wal_->active_segment_bytes()));

  bool want_sync = config_.fsync == FsyncPolicy::kAlways;
  if (config_.fsync == FsyncPolicy::kInterval &&
      ++appends_since_sync_ >= config_.fsync_interval) {
    want_sync = true;
  }
  if (want_sync) {
    appends_since_sync_ = 0;
    util::Status synced = sync();
    (void)synced;  // sync() already latched degraded state on failure
  }
}

util::Status LeaseStore::sync() {
  if (!healthy_) {
    return util::make_error(util::ErrorCode::kIo, "store degraded");
  }
  const int64_t start = wall_us();
  util::Status status = wal_->sync();
  stats_.fsync_latency_us.add(static_cast<double>(wall_us() - start));
  if (!status.ok()) {
    DNSCUP_LOG_WARN("store: fsync failed (%s); degrading to in-memory",
                    status.error().to_string().c_str());
    ++stats_.io_errors;
    healthy_ = false;
  }
  return status;
}

void LeaseStore::record_grant(const core::Lease& lease, bool renewal) {
  WalRecord record;
  record.type = renewal ? WalRecordType::kRenew : WalRecordType::kGrant;
  record.lease = lease;
  append(record);
  ++(renewal ? stats_.records_renew : stats_.records_grant);
}

void LeaseStore::record_revoke(const net::Endpoint& holder,
                               const dns::Name& name, dns::RRType type) {
  WalRecord record;
  record.type = WalRecordType::kRevoke;
  record.lease.holder = holder;
  record.lease.name = name;
  record.lease.type = type;
  append(record);
  ++stats_.records_revoke;
}

void LeaseStore::record_prune(net::SimTime now) {
  WalRecord record;
  record.type = WalRecordType::kPrune;
  record.prune_now = now;
  append(record);
  ++stats_.records_prune;
}

void LeaseStore::record_zone_serial(const dns::Name& origin, uint32_t serial) {
  zone_serials_[origin] = serial;
  WalRecord record;
  record.type = WalRecordType::kZoneSerial;
  record.origin = origin;
  record.serial = serial;
  append(record);
  ++stats_.records_zone_serial;
}

util::Status LeaseStore::write_snapshot(const core::TrackFile& track,
                                        net::SimTime now) {
  if (!healthy_) {
    return util::make_error(util::ErrorCode::kIo, "store degraded");
  }
  SnapshotData snapshot;
  snapshot.last_lsn = wal_->next_lsn() - 1;
  snapshot.as_of = now;
  snapshot.zone_serials = zone_serials_;
  track.for_each([&](const core::Lease& lease) {
    snapshot.leases.push_back(lease);
  });

  const std::vector<uint8_t> bytes = encode_snapshot(snapshot);
  const std::string path =
      config_.dir + "/" + snapshot_file_name(snapshot.last_lsn);
  util::Status written = storage_->write_atomic(path, bytes);
  if (!written.ok()) {
    DNSCUP_LOG_WARN("store: snapshot write failed (%s)",
                    written.error().to_string().c_str());
    ++stats_.io_errors;
    healthy_ = false;
    return written;
  }

  // Seal the active segment so every record <= last_lsn lives in a
  // now-covered segment, then unlink covered segments and old snapshots.
  DNSCUP_TRY(wal_->rotate());
  DNSCUP_ASSIGN_OR_RETURN(auto segments,
                          list_wal_segments(storage_, config_.dir));
  const std::string active = wal_->active_segment();
  for (const auto& [first_lsn, name] : segments) {
    const std::string segment_path = config_.dir + "/" + name;
    if (first_lsn <= snapshot.last_lsn && segment_path != active) {
      DNSCUP_TRY(storage_->remove(segment_path));
    }
  }
  DNSCUP_ASSIGN_OR_RETURN(auto snapshots,
                          list_snapshots(storage_, config_.dir));
  for (const auto& [last_lsn, name] : snapshots) {
    if (last_lsn < snapshot.last_lsn) {
      DNSCUP_TRY(storage_->remove(config_.dir + "/" + name));
    }
  }

  snapshot_lsn_ = snapshot.last_lsn;
  records_since_snapshot_ = 0;
  ++stats_.snapshots_written;
  refresh_wal_gauges();
  return util::Status();
}

util::Status LeaseStore::maybe_snapshot(const core::TrackFile& track,
                                        net::SimTime now) {
  if (records_since_snapshot_ < config_.snapshot_every_records) {
    return util::Status();
  }
  return write_snapshot(track, now);
}

void LeaseStore::refresh_wal_gauges() {
  auto segments = list_wal_segments(storage_, config_.dir);
  if (segments.ok()) {
    stats_.wal_segments.set(static_cast<double>(segments.value().size()));
  }
  stats_.wal_bytes.set(static_cast<double>(wal_->active_segment_bytes()));
}

}  // namespace dnscup::store

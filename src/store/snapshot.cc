#include "store/snapshot.h"

#include <charconv>
#include <cstdio>

#include "dns/wire.h"
#include "util/crc32.h"

namespace dnscup::store {

namespace {

constexpr uint8_t kSnapshotMagic[8] = {'D', 'C', 'U', 'P',
                                       'S', 'N', 'P', 0x01};

void put_u64(dns::ByteWriter& writer, uint64_t v) {
  writer.u32(static_cast<uint32_t>(v >> 32));
  writer.u32(static_cast<uint32_t>(v));
}

util::Result<uint64_t> get_u64(dns::ByteReader& reader) {
  DNSCUP_ASSIGN_OR_RETURN(uint32_t hi, reader.u32());
  DNSCUP_ASSIGN_OR_RETURN(uint32_t lo, reader.u32());
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

void put_name(dns::ByteWriter& writer, const dns::Name& name) {
  const std::string text = name.to_string();
  writer.u16(static_cast<uint16_t>(text.size()));
  writer.bytes(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(text.data()), text.size()));
}

util::Result<dns::Name> get_name(dns::ByteReader& reader) {
  DNSCUP_ASSIGN_OR_RETURN(uint16_t len, reader.u16());
  DNSCUP_ASSIGN_OR_RETURN(std::span<const uint8_t> raw, reader.bytes(len));
  return dns::Name::parse(
      std::string_view(reinterpret_cast<const char*>(raw.data()), raw.size()));
}

}  // namespace

std::vector<uint8_t> encode_snapshot(const SnapshotData& snapshot) {
  dns::ByteWriter body;
  put_u64(body, snapshot.last_lsn);
  put_u64(body, static_cast<uint64_t>(snapshot.as_of));
  body.u32(static_cast<uint32_t>(snapshot.zone_serials.size()));
  for (const auto& [origin, serial] : snapshot.zone_serials) {
    body.u32(serial);
    put_name(body, origin);
  }
  body.u32(static_cast<uint32_t>(snapshot.leases.size()));
  for (const core::Lease& lease : snapshot.leases) {
    body.u32(lease.holder.ip);
    body.u16(lease.holder.port);
    body.u16(static_cast<uint16_t>(lease.type));
    put_u64(body, static_cast<uint64_t>(lease.granted_at));
    put_u64(body, static_cast<uint64_t>(lease.length));
    put_name(body, lease.name);
  }

  dns::ByteWriter file;
  file.bytes(kSnapshotMagic);
  file.bytes(body.data());
  file.u32(util::crc32(body.data()));
  return file.take();
}

util::Result<SnapshotData> decode_snapshot(std::span<const uint8_t> data) {
  if (data.size() < sizeof kSnapshotMagic + 4 ||
      !std::equal(kSnapshotMagic, kSnapshotMagic + 8, data.data())) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "bad snapshot magic");
  }
  const auto body = data.subspan(8, data.size() - 12);
  dns::ByteReader crc_reader(data.subspan(data.size() - 4));
  if (util::crc32(body) != crc_reader.u32().value()) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "snapshot CRC mismatch");
  }

  dns::ByteReader reader(body);
  SnapshotData snapshot;
  DNSCUP_ASSIGN_OR_RETURN(snapshot.last_lsn, get_u64(reader));
  DNSCUP_ASSIGN_OR_RETURN(uint64_t as_of, get_u64(reader));
  snapshot.as_of = static_cast<net::SimTime>(as_of);
  DNSCUP_ASSIGN_OR_RETURN(uint32_t zone_count, reader.u32());
  for (uint32_t i = 0; i < zone_count; ++i) {
    uint32_t serial = 0;
    DNSCUP_ASSIGN_OR_RETURN(serial, reader.u32());
    DNSCUP_ASSIGN_OR_RETURN(dns::Name origin, get_name(reader));
    snapshot.zone_serials.emplace(std::move(origin), serial);
  }
  DNSCUP_ASSIGN_OR_RETURN(uint32_t lease_count, reader.u32());
  snapshot.leases.reserve(lease_count);
  for (uint32_t i = 0; i < lease_count; ++i) {
    core::Lease lease;
    DNSCUP_ASSIGN_OR_RETURN(lease.holder.ip, reader.u32());
    DNSCUP_ASSIGN_OR_RETURN(lease.holder.port, reader.u16());
    uint16_t type = 0;
    DNSCUP_ASSIGN_OR_RETURN(type, reader.u16());
    lease.type = static_cast<dns::RRType>(type);
    DNSCUP_ASSIGN_OR_RETURN(uint64_t granted, get_u64(reader));
    DNSCUP_ASSIGN_OR_RETURN(uint64_t length, get_u64(reader));
    lease.granted_at = static_cast<net::SimTime>(granted);
    lease.length = static_cast<net::Duration>(length);
    DNSCUP_ASSIGN_OR_RETURN(lease.name, get_name(reader));
    snapshot.leases.push_back(std::move(lease));
  }
  if (!reader.at_end()) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "trailing bytes in snapshot");
  }
  return snapshot;
}

std::string snapshot_file_name(uint64_t last_lsn) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "snapshot-%016llx.snap",
                static_cast<unsigned long long>(last_lsn));
  return buf;
}

util::Result<std::vector<std::pair<uint64_t, std::string>>> list_snapshots(
    Storage* storage, const std::string& dir) {
  DNSCUP_ASSIGN_OR_RETURN(std::vector<std::string> names, storage->list(dir));
  std::vector<std::pair<uint64_t, std::string>> snapshots;
  for (const std::string& name : names) {
    if (name.size() != 9 + 16 + 5 || name.rfind("snapshot-", 0) != 0 ||
        name.compare(name.size() - 5, 5, ".snap") != 0) {
      continue;
    }
    uint64_t last_lsn = 0;
    const char* begin = name.data() + 9;
    const auto [ptr, ec] = std::from_chars(begin, begin + 16, last_lsn, 16);
    if (ec != std::errc() || ptr != begin + 16) continue;
    snapshots.emplace_back(last_lsn, name);
  }
  return snapshots;
}

}  // namespace dnscup::store

// Write-ahead log for lease-state mutations (grant / renew / revoke /
// prune) and zone-serial changes.
//
// Layout: a directory of append-only segments named wal-%016x.log, where
// the hex field is the LSN (1-based, monotonically increasing record
// sequence number) of the segment's first record.  Each segment starts
// with an 16-byte header
//
//     "DCUPWAL\x01"  u64 first_lsn
//
// followed by CRC-framed records:
//
//     u32 payload_len | u32 crc32(payload) | payload
//
// Payloads are big-endian (dns::ByteWriter) and carry one WalRecord.
// Appends only ever touch the newest segment; rotation closes it (with a
// final sync) and opens a fresh segment named by the next LSN, so
// compaction can unlink whole covered segments.
//
// Recovery replays segments in LSN order and stops at the first frame
// that fails its length or CRC check: that frame and everything after it
// are torn (a crash mid-append) or corrupt, and are truncated/unlinked so
// the log is clean for the next writer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/track_file.h"
#include "store/storage.h"
#include "util/result.h"

namespace dnscup::store {

enum class WalRecordType : uint8_t {
  kGrant = 1,
  kRenew = 2,
  kRevoke = 3,
  kPrune = 4,
  kZoneSerial = 5,
};

const char* to_string(WalRecordType type);

struct WalRecord {
  WalRecordType type = WalRecordType::kGrant;
  /// kGrant/kRenew: the full lease.  kRevoke: holder/name/type only.
  core::Lease lease;
  /// kPrune: the prune instant (replay drops leases expired at this time).
  net::SimTime prune_now = 0;
  /// kZoneSerial: the zone and its serial after a change.
  dns::Name origin;
  uint32_t serial = 0;
};

/// Record payload codec (framing is the writer/replayer's job).
std::vector<uint8_t> encode_wal_record(const WalRecord& record);
util::Result<WalRecord> decode_wal_record(std::span<const uint8_t> payload);

struct WalOptions {
  /// Rotation threshold: a new segment opens once the current one reaches
  /// this size.
  uint64_t segment_bytes = 1 << 20;
};

/// Appender over the newest segment.  Callers decide when to sync();
/// rotation syncs the outgoing segment before the new one opens.
class WalWriter {
 public:
  /// Starts a fresh segment at `next_lsn` (recovery never appends into an
  /// old segment — a clean boundary beats reopening a repaired file).
  static util::Result<std::unique_ptr<WalWriter>> open(
      Storage* storage, const std::string& dir, uint64_t next_lsn,
      WalOptions options);

  /// Appends one record (framing + rotation); on success the record owns
  /// LSN next_lsn()-1.
  util::Status append(const WalRecord& record);
  util::Status sync();

  /// Seals the active segment (sync + fresh segment at next_lsn) so
  /// compaction can unlink it.  No-op while the active segment is empty.
  util::Status rotate();

  uint64_t next_lsn() const { return next_lsn_; }
  /// Path of the segment currently being appended to.
  const std::string& active_segment() const { return segment_path_; }
  uint64_t active_segment_bytes() const;

 private:
  WalWriter(Storage* storage, std::string dir, uint64_t next_lsn,
            WalOptions options)
      : storage_(storage),
        dir_(std::move(dir)),
        next_lsn_(next_lsn),
        options_(options) {}

  util::Status open_segment();

  Storage* storage_;
  std::string dir_;
  uint64_t next_lsn_;
  WalOptions options_;
  std::unique_ptr<AppendFile> file_;
  std::string segment_path_;
};

struct WalReplayStats {
  uint64_t replayed = 0;       ///< records delivered to the callback
  uint64_t skipped = 0;        ///< records at or below `after_lsn`
  uint64_t torn = 0;           ///< invalid frames dropped at the tail
  uint64_t segments = 0;       ///< segments visited
  uint64_t segments_dropped = 0;  ///< later segments unlinked after a tear
  uint64_t next_lsn = 1;       ///< where a new writer should continue
};

/// Replays every record with LSN > `after_lsn` through `fn` in order.
/// Invalid frames end the log: the segment is truncated at the tear and
/// any later segments are unlinked (their ordering can no longer be
/// trusted).  Segment files with unreadable headers fail recovery.
util::Result<WalReplayStats> replay_wal(
    Storage* storage, const std::string& dir, uint64_t after_lsn,
    const std::function<void(uint64_t lsn, const WalRecord&)>& fn);

/// Segment bookkeeping for compaction: (first_lsn, basename) pairs of the
/// wal-*.log files in `dir`, sorted by first_lsn.
util::Result<std::vector<std::pair<uint64_t, std::string>>> list_wal_segments(
    Storage* storage, const std::string& dir);

/// Basename of the segment whose first record is `first_lsn`.
std::string wal_segment_name(uint64_t first_lsn);

}  // namespace dnscup::store

#include "store/storage.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/assert.h"

namespace dnscup::store {

namespace {

util::Error errno_error(const std::string& what, const std::string& path) {
  return util::make_error(util::ErrorCode::kIo,
                          what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

// ---- PosixStorage ---------------------------------------------------------

namespace {

class PosixAppendFile final : public AppendFile {
 public:
  PosixAppendFile(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}
  ~PosixAppendFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  util::Status append(std::span<const uint8_t> data) override {
    std::size_t done = 0;
    while (done < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return errno_error("write", path_);
      }
      done += static_cast<std::size_t>(n);
      size_ += static_cast<uint64_t>(n);
    }
    return util::Status();
  }

  util::Status sync() override {
    if (::fsync(fd_) != 0) return errno_error("fsync", path_);
    return util::Status();
  }

  uint64_t size() const override { return size_; }

 private:
  int fd_;
  uint64_t size_;
  std::string path_;
};

util::Status fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return errno_error("open dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return errno_error("fsync dir", dir);
  return util::Status();
}

}  // namespace

util::Status PosixStorage::create_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return util::Status();
  }
  return errno_error("mkdir", path);
}

util::Result<std::vector<std::string>> PosixStorage::list(
    const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return errno_error("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st{};
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

util::Result<std::vector<uint8_t>> PosixStorage::read(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return errno_error("open", path);
  std::vector<uint8_t> data;
  uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return errno_error("read", path);
    }
    if (n == 0) break;
    data.insert(data.end(), buf, buf + n);
  }
  ::close(fd);
  return data;
}

util::Status PosixStorage::write_atomic(const std::string& path,
                                        std::span<const uint8_t> data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errno_error("open", tmp);
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return errno_error("write", tmp);
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return errno_error("fsync", tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return errno_error("rename", tmp);
  }
  return fsync_parent_dir(path);
}

util::Result<std::unique_ptr<AppendFile>> PosixStorage::open_append(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return errno_error("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return errno_error("fstat", path);
  }
  return std::unique_ptr<AppendFile>(std::make_unique<PosixAppendFile>(
      fd, static_cast<uint64_t>(st.st_size), path));
}

util::Status PosixStorage::truncate(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return errno_error("truncate", path);
  }
  return util::Status();
}

util::Status PosixStorage::remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return errno_error("unlink", path);
  return util::Status();
}

// ---- MemStorage -----------------------------------------------------------

namespace {

/// Points into MemStorage's map; std::map nodes are address-stable, so the
/// reference survives later inserts.
class MemAppendFile final : public AppendFile {
 public:
  explicit MemAppendFile(std::vector<uint8_t>* contents)
      : contents_(contents) {}

  util::Status append(std::span<const uint8_t> data) override {
    contents_->insert(contents_->end(), data.begin(), data.end());
    return util::Status();
  }
  util::Status sync() override { return util::Status(); }
  uint64_t size() const override { return contents_->size(); }

 private:
  std::vector<uint8_t>* contents_;
};

}  // namespace

util::Status MemStorage::create_dir(const std::string&) {
  return util::Status();
}

util::Result<std::vector<std::string>> MemStorage::list(
    const std::string& dir) {
  const std::string prefix = dir + "/";
  std::vector<std::string> names;
  for (const auto& [path, contents] : files_) {
    if (path.rfind(prefix, 0) != 0) continue;
    const std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;  // map iteration order is already sorted
}

util::Result<std::vector<uint8_t>> MemStorage::read(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return util::make_error(util::ErrorCode::kNotFound, path);
  }
  return it->second;
}

util::Status MemStorage::write_atomic(const std::string& path,
                                      std::span<const uint8_t> data) {
  files_[path].assign(data.begin(), data.end());
  return util::Status();
}

util::Result<std::unique_ptr<AppendFile>> MemStorage::open_append(
    const std::string& path) {
  return std::unique_ptr<AppendFile>(
      std::make_unique<MemAppendFile>(&files_[path]));
}

util::Status MemStorage::truncate(const std::string& path, uint64_t size) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return util::make_error(util::ErrorCode::kNotFound, path);
  }
  if (size < it->second.size()) it->second.resize(size);
  return util::Status();
}

util::Status MemStorage::remove(const std::string& path) {
  if (files_.erase(path) == 0) {
    return util::make_error(util::ErrorCode::kNotFound, path);
  }
  return util::Status();
}

// ---- FaultInjectingStorage ------------------------------------------------

// Namespace scope (not anonymous) so the friend declaration in storage.h
// matches.
class FaultInjectingAppendFile final : public AppendFile {
 public:
  FaultInjectingAppendFile(std::unique_ptr<AppendFile> inner,
                           FaultInjectingStorage* owner)
      : inner_(std::move(inner)), owner_(owner) {}

  util::Status append(std::span<const uint8_t> data) override;
  util::Status sync() override;
  uint64_t size() const override { return inner_->size(); }

 private:
  std::unique_ptr<AppendFile> inner_;
  FaultInjectingStorage* owner_;
};

util::Status FaultInjectingStorage::check_alive() const {
  if (crashed_) {
    return util::make_error(util::ErrorCode::kIo, "storage crashed");
  }
  return util::Status();
}

util::Status FaultInjectingStorage::create_dir(const std::string& path) {
  DNSCUP_TRY(check_alive());
  return inner_->create_dir(path);
}

util::Result<std::vector<std::string>> FaultInjectingStorage::list(
    const std::string& dir) {
  return inner_->list(dir);
}

util::Result<std::vector<uint8_t>> FaultInjectingStorage::read(
    const std::string& path) {
  auto data = inner_->read(path);
  if (!data.ok()) return data;
  std::vector<uint8_t> bytes = std::move(data).value();
  for (const auto& flip : plan_.flips) {
    if (flip.path == path && flip.offset < bytes.size()) {
      bytes[flip.offset] ^= flip.mask;
    }
  }
  return bytes;
}

util::Status FaultInjectingStorage::write_atomic(
    const std::string& path, std::span<const uint8_t> data) {
  DNSCUP_TRY(check_alive());
  if (appended_bytes_ + data.size() > plan_.crash_after_bytes) {
    // Atomic replace either happens or doesn't: a crash mid-write leaves
    // the old file, so nothing partial lands — but the budget is spent.
    crashed_ = true;
    return util::make_error(util::ErrorCode::kIo, "simulated crash");
  }
  appended_bytes_ += data.size();
  return inner_->write_atomic(path, data);
}

util::Result<std::unique_ptr<AppendFile>> FaultInjectingStorage::open_append(
    const std::string& path) {
  DNSCUP_TRY(check_alive());
  auto inner = inner_->open_append(path);
  if (!inner.ok()) return inner.error();
  return std::unique_ptr<AppendFile>(std::make_unique<FaultInjectingAppendFile>(
      std::move(inner).value(), this));
}

util::Status FaultInjectingStorage::truncate(const std::string& path,
                                             uint64_t size) {
  DNSCUP_TRY(check_alive());
  return inner_->truncate(path, size);
}

util::Status FaultInjectingStorage::remove(const std::string& path) {
  DNSCUP_TRY(check_alive());
  return inner_->remove(path);
}

util::Status FaultInjectingAppendFile::append(std::span<const uint8_t> data) {
  DNSCUP_TRY(owner_->check_alive());
  const uint64_t budget = owner_->plan_.crash_after_bytes;
  if (owner_->appended_bytes_ + data.size() > budget) {
    // Short write: persist only the bytes that fit, then die.
    const uint64_t fits = budget - owner_->appended_bytes_;
    owner_->appended_bytes_ = budget;
    owner_->crashed_ = true;
    (void)inner_->append(data.first(static_cast<std::size_t>(fits)));
    return util::make_error(util::ErrorCode::kIo, "simulated crash");
  }
  owner_->appended_bytes_ += data.size();
  return inner_->append(data);
}

util::Status FaultInjectingAppendFile::sync() {
  DNSCUP_TRY(owner_->check_alive());
  if (owner_->sync_calls_ >= owner_->plan_.fail_sync_after) {
    return util::make_error(util::ErrorCode::kIo, "simulated fsync failure");
  }
  ++owner_->sync_calls_;
  return inner_->sync();
}

}  // namespace dnscup::store

// Storage: the byte-level backend of the durable lease-state store.
//
// The write-ahead log and snapshot layers never touch the filesystem
// directly; they go through this interface, which has three
// implementations:
//
//   PosixStorage          — real files (dnscupd's --state-dir);
//   MemStorage            — an in-process file map, copyable so tests can
//                           freeze the exact bytes "on disk" at any point;
//   FaultInjectingStorage — wraps another Storage and injects short
//                           writes, a crash at an arbitrary byte offset,
//                           failing fsyncs and read-side bit flips, the
//                           failure modes crash-recovery must survive.
//
// All operations report failures via util::Status/Result; none throw.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/result.h"

namespace dnscup::store {

/// An open append-only file (one WAL segment).
class AppendFile {
 public:
  virtual ~AppendFile() = default;
  virtual util::Status append(std::span<const uint8_t> data) = 0;
  /// Flushes written bytes to stable storage (fsync for PosixStorage).
  virtual util::Status sync() = 0;
  virtual uint64_t size() const = 0;
};

class Storage {
 public:
  virtual ~Storage() = default;

  /// Creates `path` (one level); succeeds if it already exists.
  virtual util::Status create_dir(const std::string& path) = 0;
  /// Sorted basenames of the regular files directly inside `dir`.
  virtual util::Result<std::vector<std::string>> list(
      const std::string& dir) = 0;
  virtual util::Result<std::vector<uint8_t>> read(const std::string& path) = 0;
  /// Durable whole-file replace: write to a temporary sibling, flush,
  /// rename over `path`.  A crash leaves either the old or the new file.
  virtual util::Status write_atomic(const std::string& path,
                                    std::span<const uint8_t> data) = 0;
  virtual util::Result<std::unique_ptr<AppendFile>> open_append(
      const std::string& path) = 0;
  /// Shrinks `path` to `size` bytes (recovery chops torn WAL tails).
  virtual util::Status truncate(const std::string& path, uint64_t size) = 0;
  virtual util::Status remove(const std::string& path) = 0;
};

/// Real files under a directory tree.
class PosixStorage final : public Storage {
 public:
  util::Status create_dir(const std::string& path) override;
  util::Result<std::vector<std::string>> list(const std::string& dir) override;
  util::Result<std::vector<uint8_t>> read(const std::string& path) override;
  util::Status write_atomic(const std::string& path,
                            std::span<const uint8_t> data) override;
  util::Result<std::unique_ptr<AppendFile>> open_append(
      const std::string& path) override;
  util::Status truncate(const std::string& path, uint64_t size) override;
  util::Status remove(const std::string& path) override;
};

/// In-process storage: a map from path to contents.  Copy-constructing a
/// MemStorage freezes the simulated on-disk state, which is how the
/// recovery tests model "the machine died here".
class MemStorage final : public Storage {
 public:
  MemStorage() = default;
  MemStorage(const MemStorage& other) : files_(other.files_) {}

  util::Status create_dir(const std::string& path) override;
  util::Result<std::vector<std::string>> list(const std::string& dir) override;
  util::Result<std::vector<uint8_t>> read(const std::string& path) override;
  util::Status write_atomic(const std::string& path,
                            std::span<const uint8_t> data) override;
  util::Result<std::unique_ptr<AppendFile>> open_append(
      const std::string& path) override;
  util::Status truncate(const std::string& path, uint64_t size) override;
  util::Status remove(const std::string& path) override;

  /// Direct access for tests (corrupting bytes, inspecting segments).
  std::map<std::string, std::vector<uint8_t>>& files() { return files_; }

 private:
  std::map<std::string, std::vector<uint8_t>> files_;
};

/// Failure plan for FaultInjectingStorage.
struct FaultPlan {
  /// Total appended bytes (across all files, headers included) after which
  /// the storage "crashes": the final append is written only up to the
  /// limit (a short write) and every later mutation fails with kIo.
  uint64_t crash_after_bytes = UINT64_MAX;
  /// sync() calls start failing after this many successes.
  uint64_t fail_sync_after = UINT64_MAX;

  struct BitFlip {
    std::string path;   ///< exact path the flip applies to
    uint64_t offset = 0;
    uint8_t mask = 0x01;
  };
  /// Applied to read() results — models latent media corruption.
  std::vector<BitFlip> flips;
};

class FaultInjectingStorage final : public Storage {
 public:
  FaultInjectingStorage(Storage* inner, FaultPlan plan)
      : inner_(inner), plan_(std::move(plan)) {}

  util::Status create_dir(const std::string& path) override;
  util::Result<std::vector<std::string>> list(const std::string& dir) override;
  util::Result<std::vector<uint8_t>> read(const std::string& path) override;
  util::Status write_atomic(const std::string& path,
                            std::span<const uint8_t> data) override;
  util::Result<std::unique_ptr<AppendFile>> open_append(
      const std::string& path) override;
  util::Status truncate(const std::string& path, uint64_t size) override;
  util::Status remove(const std::string& path) override;

  bool crashed() const { return crashed_; }
  uint64_t appended_bytes() const { return appended_bytes_; }
  uint64_t sync_calls() const { return sync_calls_; }

 private:
  friend class FaultInjectingAppendFile;

  util::Status check_alive() const;

  Storage* inner_;
  FaultPlan plan_;
  bool crashed_ = false;
  uint64_t appended_bytes_ = 0;
  uint64_t sync_calls_ = 0;
};

}  // namespace dnscup::store
